#!/usr/bin/env python3
"""Write a brand-new guest workload and evaluate predictors on it.

Shows the full substrate end-to-end on a program that is *not* one of the
eight built-in benchmarks: a virtual-machine-style state machine whose
transitions are function-pointer calls (CALLR), i.e. the C++-style virtual
dispatch the paper's §5 points to as future work ("For object oriented
programs ... tagged caches should provide even greater performance
benefits").

Usage::

    python examples/custom_workload.py
"""

import random

from repro.guest import ProgramBuilder, run_program
from repro.predictors import (
    EngineConfig,
    HistoryConfig,
    HistorySource,
    TargetCacheConfig,
    simulate,
)
from repro.predictors.history import PathFilter
from repro.predictors.target_cache import TaggedIndexing
from repro.trace import Trace, branch_mix, target_profile


N_STATES = 8


def build_state_machine(seed=3, n_sites=3):
    """Objects cycle through states; each state's 'step' method is called
    through a per-state function-pointer table from several call sites."""
    rng = random.Random(seed)
    b = ProgramBuilder()
    b.jmp("main")

    # state methods: variable length, each advances the state register
    methods = [f"state_{i}" for i in range(N_STATES)]
    # a single-cycle successor permutation; with 3 call sites per loop
    # iteration, each site sees every state in turn (cycle length 8 and
    # site count 3 are coprime), so every call site is megamorphic
    successors = [(i + 3) % N_STATES for i in range(N_STATES)]
    for i, name in enumerate(methods):
        b.label(name)
        for _ in range(1 + (i * 7) % 6):
            b.addi(20, 20, i + 1)
        b.li(12, successors[i])  # next state
        b.ret()
    table = b.data_table(methods)

    b.label("main")
    b.li(12, 0)  # current state
    b.label("loop")
    for site in range(n_sites):
        # n_sites distinct indirect-call sites, as in real OO code
        b.shli(1, 12, 2)
        b.li(2, table)
        b.add(1, 1, 2)
        b.load(3, 1)
        b.callr(3)
        b.addi(21, 21, 1)
        b.andi(21, 21, 0xFFFF)
    b.jmp("loop")
    return b.build(entry="main")


def main() -> None:
    program = build_state_machine()
    trace = Trace.from_raw(run_program(program, max_instructions=150_000))
    trace.validate()

    mix = branch_mix(trace)
    profile = target_profile(trace)
    print("custom OO-style workload:")
    print(f"  {mix.instructions} instructions, "
          f"{mix.indirect_jumps} indirect calls "
          f"({mix.indirect_fraction:.1%}), "
          f"{profile.static_jumps} static call sites, "
          f"up to {profile.max_targets()} receivers per site")

    configurations = [
        ("BTB only", EngineConfig()),
        # 1 bit per target is too coarse here: the tightly packed method
        # addresses alternate in bit 2 with exactly the state parity, so
        # the history collapses to two values (the paper's Table 5/6
        # bit-selection hazard in miniature)
        ("tagless, path ind-jmp 9x1 bit", EngineConfig(
            target_cache=TargetCacheConfig(kind="tagless"),
            history=HistoryConfig(source=HistorySource.PATH_GLOBAL, bits=9,
                                  path_filter=PathFilter.IND_JMP))),
        # 3 bits per target distinguishes all 8 methods: the last three
        # receivers uniquely determine the next one
        ("tagless, path ind-jmp 3x3 bits", EngineConfig(
            target_cache=TargetCacheConfig(kind="tagless"),
            history=HistoryConfig(source=HistorySource.PATH_GLOBAL, bits=9,
                                  bits_per_target=3,
                                  path_filter=PathFilter.IND_JMP))),
        ("tagged 256e 4-way xor, 3x3-bit path", EngineConfig(
            target_cache=TargetCacheConfig(
                kind="tagged", entries=256, assoc=4,
                indexing=TaggedIndexing.HISTORY_XOR),
            history=HistoryConfig(source=HistorySource.PATH_GLOBAL, bits=9,
                                  bits_per_target=3,
                                  path_filter=PathFilter.IND_JMP))),
    ]
    print(f"\n{'configuration':40s} {'indirect mispredict':>20s}")
    for label, config in configurations:
        stats = simulate(trace, config)
        print(f"{label:40s} {stats.indirect_mispred_rate:>19.2%}")

    print("\nthe state sequence is deterministic, so a history that can "
          "tell the receivers apart (3 bits/target) drives mispredictions "
          "to ~zero while the BTB misses every state change — the paper's "
          "§5 OO prediction, plus its Table 6 bit-budget tradeoff.")


if __name__ == "__main__":
    main()
