#!/usr/bin/env python3
"""Sweep the target-cache design space on one workload.

Explores the axes of the paper's §4 on a chosen benchmark: tagless index
schemes, tagged associativity and indexing, history type and length — and
prints a ranked summary, ending with the cost-equalised tagless-512 vs
tagged-256 comparison of Figures 12/13.

Usage::

    python examples/design_space.py [benchmark] [trace_length]
"""

import sys

from repro.predictors import EngineConfig, HistoryConfig, HistorySource, simulate
from repro.predictors.history import PathFilter
from repro.predictors.target_cache import TaggedIndexing, TargetCacheConfig
from repro.workloads import get_trace, workload_names


def tagless(scheme, history_bits=9, address_bits=0, source=HistorySource.PATTERN,
            path_filter=PathFilter.CONTROL):
    return EngineConfig(
        target_cache=TargetCacheConfig(kind="tagless", scheme=scheme,
                                       history_bits=history_bits,
                                       address_bits=address_bits),
        history=HistoryConfig(source=source, bits=max(history_bits, 9),
                              path_filter=path_filter),
    )


def tagged(assoc, indexing=TaggedIndexing.HISTORY_XOR, history_bits=9):
    return EngineConfig(
        target_cache=TargetCacheConfig(kind="tagged", entries=256,
                                       assoc=assoc, indexing=indexing,
                                       history_bits=history_bits),
        history=HistoryConfig(source=HistorySource.PATTERN, bits=history_bits),
    )


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    trace_length = int(sys.argv[2]) if len(sys.argv) > 2 else 200_000
    if benchmark not in workload_names():
        raise SystemExit(f"unknown benchmark {benchmark!r}; "
                         f"choose from {', '.join(workload_names())}")

    print(f"sweeping the target-cache design space on {benchmark} "
          f"({trace_length} instructions)...")
    trace = get_trace(benchmark, n_instructions=trace_length)

    design_points = {
        "BTB only": EngineConfig(),
        "tagless GAg(9)": tagless("gag"),
        "tagless GAs(8,1)": tagless("gas", 8, 1),
        "tagless gshare(9)": tagless("gshare"),
        "tagless gshare(9) path-control": tagless(
            "gshare", source=HistorySource.PATH_GLOBAL,
            path_filter=PathFilter.CONTROL),
        "tagless gshare(9) path-indjmp": tagless(
            "gshare", source=HistorySource.PATH_GLOBAL,
            path_filter=PathFilter.IND_JMP),
        "tagged 1-way addr": tagged(1, TaggedIndexing.ADDRESS),
        "tagged 1-way xor": tagged(1),
        "tagged 4-way xor": tagged(4),
        "tagged 16-way xor": tagged(16),
        "tagged 16-way xor, 16-bit history": tagged(16, history_bits=16),
        "oracle": EngineConfig(target_cache=TargetCacheConfig(kind="oracle")),
    }

    results = {}
    for label, config in design_points.items():
        results[label] = simulate(trace, config).indirect_mispred_rate

    print(f"\n{'design point':40s} {'indirect mispredict':>20s}")
    for label, rate in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"{label:40s} {rate:>19.2%}")

    best = min((rate, label) for label, rate in results.items()
               if label not in ("oracle", "BTB only"))
    base = results["BTB only"]
    print(f"\nbest realisable design: {best[1]} "
          f"({best[0]:.2%}, a {(base - best[0]) / base:.0%} reduction "
          f"over the BTB)")


if __name__ == "__main__":
    main()
