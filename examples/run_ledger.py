#!/usr/bin/env python3
"""Record and summarise a run ledger for a small parallel sweep.

Demonstrates the `repro.obs` observability subsystem as a library: install
a :class:`LedgerSink`, run a two-worker sweep over a slice of the tagged
target-cache design space, shut the sink down (which merges the per-process
shard files into one JSONL ledger), then read the ledger back and print the
``repro report`` summary — per-phase wall-clock, result-cache hit rate,
pool utilization, and the slowest cells.

The same ledger falls out of any CLI run via ``REPRO_OBS=1 repro all``;
see docs/OBSERVABILITY.md for the event schema and guarantees.

Usage::

    python examples/run_ledger.py [trace_length]
"""

import sys
import tempfile
from pathlib import Path

from repro.obs import (
    LedgerSink,
    format_summary,
    install,
    read_ledger,
    shutdown,
    summarize,
)
from repro.predictors import EngineConfig, TargetCacheConfig
from repro.runner import SweepCell, run_cells


def main() -> None:
    trace_length = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    cells = [
        SweepCell(benchmark, EngineConfig(
            target_cache=TargetCacheConfig(kind="tagged", entries=entries,
                                           assoc=assoc),
        ))
        for benchmark in ("perl", "gcc")
        for entries in (256, 512)
        for assoc in (1, 4)
    ]

    with tempfile.TemporaryDirectory() as tmp:
        ledger = Path(tmp) / "run_ledger.jsonl"
        install(LedgerSink(ledger))
        try:
            stats = run_cells(cells, jobs=2, trace_length=trace_length)
        finally:
            shutdown()  # flush, merge worker shards, restore the null sink

        records = read_ledger(ledger)
        print(f"sweep: {len(cells)} cells, 2 workers, "
              f"{trace_length:,}-instruction traces")
        best = min(zip(cells, stats),
                   key=lambda pair: pair[1].indirect_mispred_rate)
        print(f"best cell: {best[0].benchmark} "
              f"{best[0].config.target_cache.entries}-entry "
              f"{best[0].config.target_cache.assoc}-way "
              f"({best[1].indirect_mispred_rate:.1%} indirect mispredictions)")
        print()
        print(format_summary(summarize(records, top=3)))


if __name__ == "__main__":
    main()
