#!/usr/bin/env python3
"""Register a third-party target predictor and run it through the stack.

The predictor registry (:mod:`repro.predictors.registry`) is the extension
point the registry refactor promised: a new predictor kind is ONE
``register`` call in your own module — no edits to the engine, the stream
kernel, the sweep runner, the result cache, or the CLI.  This example
proves it end to end:

1. define ``IdealTaglessCache`` — a tagless target cache with *unbounded*
   interference-free storage (every ``(pc, history)`` pair gets its own
   entry), an upper bound for how much of the tagless design's loss is
   interference rather than history quality;
2. register it under the kind ``"ideal_tagless"`` with traits, a
   parameterised label, and spec examples;
3. drive it from a declarative ``repro sweep --spec`` JSON file — through
   ``ExperimentContext.predictions``, a two-worker process pool, the
   persistent result cache, and a run ledger — next to a built-in preset
   and the registered paper configuration it idealises;
4. run the same sweep again to show the warm result cache short-circuits
   both the plugin cells and the built-in ones;
5. summarise the ledger with the ``repro report`` machinery.

Usage::

    python examples/plugin_predictor.py [trace_length]
"""

import json
import sys
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro import cli
from repro.predictors import PredictorTraits, register
from repro.predictors.target_cache import TargetCacheConfig, TargetPredictor


class IdealTaglessCache(TargetPredictor):
    """A tagless target cache with one private entry per (pc, history).

    The real tagless organisation (paper §3.2, Figure 10) hashes every
    jump into 2**history_bits shared entries; this idealisation keeps the
    same index *information* but removes all interference, so the gap
    between the two isolates the cost of sharing entries.
    """

    def __init__(self, history_bits: int) -> None:
        self._mask = (1 << history_bits) - 1
        self._table: Dict[Tuple[int, int], int] = {}

    def predict(self, pc: int, history: int) -> Optional[int]:
        return self._table.get((pc, history & self._mask))

    def update(self, pc: int, history: int, target: int) -> None:
        self._table[(pc, history & self._mask)] = target

    def reset(self) -> None:
        self._table.clear()


# Module scope: importing this file makes the kind available everywhere in
# the process — including forked pool workers.  (Make the plugin an
# importable module and list it under "plugins" in the spec file to also
# support spawn-based platforms; "__main__" cannot be re-imported.)
register(
    "ideal_tagless",
    factory=lambda config: IdealTaglessCache(config.history_bits),
    traits=PredictorTraits(
        description="tagless index information without interference "
                    "(unbounded one-entry-per-pair storage)",
        spec_fields=("history_bits",),
    ),
    provides=(IdealTaglessCache,),
    label=lambda config: f"ideal-tagless(h{config.history_bits})",
    spec_examples=(
        TargetCacheConfig(kind="ideal_tagless"),
        TargetCacheConfig(kind="ideal_tagless", history_bits=12),
    ),
)


def main() -> None:
    trace_length = sys.argv[1] if len(sys.argv) > 1 else "40000"
    with tempfile.TemporaryDirectory() as scratch:
        spec_file = Path(scratch) / "sweep.json"
        ledger = Path(scratch) / "ledger.jsonl"
        spec_file.write_text(json.dumps({
            "benchmarks": ["perl"],
            "cells": [
                {"preset": "tagless-gshare9"},
                {"engine": {
                    "target_cache": {"kind": "ideal_tagless",
                                     "history_bits": 9},
                    "history": {"source": "pattern", "bits": 9},
                }},
                {"preset": "oracle"},
            ],
        }, indent=2))
        # Keep this demo's cached results (and its ledger) out of the
        # user's real cache directory.
        import os
        os.environ["REPRO_RESULT_CACHE"] = str(Path(scratch) / "results")

        argv = ["sweep", "--spec", str(spec_file),
                "--trace-length", trace_length, "--jobs", "2"]
        print("--- cold sweep (simulates via the 2-worker pool) ---")
        assert cli.main(argv + ["--obs-ledger", str(ledger)]) == 0
        print()
        print("--- warm sweep (every cell from the result cache) ---")
        assert cli.main(argv) == 0
        print()
        print("--- ledger summary of the cold run ---")
        assert cli.main(["report", str(ledger)]) == 0


if __name__ == "__main__":
    main()
