#!/usr/bin/env python3
"""Trace a workload through both timing models and compare.

Demonstrates the two HPS-like timing models on real workload traces: the
fast one-pass dataflow scheduler used in the paper-table sweeps, and the
cycle-stepped core used to validate it.  Prints cycles, IPC, and the
execution-time reduction the target cache buys on each benchmark.

Usage::

    python examples/pipeline_speedup.py [trace_length]
"""

import sys
import time

from repro.pipeline import (
    MachineConfig,
    memory_penalties,
    run_cycle_core,
    run_timing,
)
from repro.predictors import (
    EngineConfig,
    HistoryConfig,
    HistorySource,
    TargetCacheConfig,
    simulate,
)
from repro.workloads import get_trace


def main() -> None:
    trace_length = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    machine = MachineConfig()
    tc_config = EngineConfig(
        target_cache=TargetCacheConfig(kind="tagless", scheme="gshare",
                                       history_bits=9),
        history=HistoryConfig(source=HistorySource.PATTERN, bits=9),
    )

    print(f"machine: width {machine.fetch_width}, window {machine.window}, "
          f"frontend depth {machine.frontend_depth}, "
          f"{machine.dcache.size_bytes // 1024}KB dcache, "
          f"{machine.memory_latency}-cycle memory")
    print(f"{'benchmark':10s} {'model':12s} {'base cycles':>12s} "
          f"{'TC cycles':>12s} {'base IPC':>9s} {'reduction':>10s} "
          f"{'sim time':>9s}")

    for benchmark in ("perl", "gcc", "xlisp"):
        trace = get_trace(benchmark, n_instructions=trace_length)
        penalties = memory_penalties(trace, machine)
        base = simulate(trace, EngineConfig(), collect_mask=True)
        with_tc = simulate(trace, tc_config, collect_mask=True)

        start = time.time()
        fast_base = run_timing(trace, machine, base.mispredict_mask, penalties)
        fast_tc = run_timing(trace, machine, with_tc.mispredict_mask,
                             penalties)
        fast_elapsed = time.time() - start
        reduction = 1 - fast_tc.cycles / fast_base.cycles
        print(f"{benchmark:10s} {'one-pass':12s} {fast_base.cycles:>12,} "
              f"{fast_tc.cycles:>12,} {fast_base.ipc:>9.2f} "
              f"{reduction:>9.1%} {fast_elapsed:>8.2f}s")

        start = time.time()
        step_base = run_cycle_core(trace, machine, base.mispredict_mask,
                                   penalties)
        step_tc = run_cycle_core(trace, machine, with_tc.mispredict_mask,
                                 penalties)
        step_elapsed = time.time() - start
        reduction = 1 - step_tc / step_base
        ipc = len(trace) / step_base
        print(f"{benchmark:10s} {'cycle-step':12s} {step_base:>12,} "
              f"{step_tc:>12,} {ipc:>9.2f} {reduction:>9.1%} "
              f"{step_elapsed:>8.2f}s")


if __name__ == "__main__":
    main()
