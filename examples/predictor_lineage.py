#!/usr/bin/env python3
"""Trace the lineage from the 1997 target cache to ITTAGE, with error bars.

Runs one benchmark through each generation of indirect-branch predictor —
BTB, the paper's target cache, the cascaded filter, and ITTAGE-lite — and
reports misprediction rates with bootstrap confidence intervals, so you can
see both the historical progression and how much of it is signal.

Usage::

    python examples/predictor_lineage.py [benchmark] [trace_length]
"""

import sys

from repro.experiments.configs import (
    pattern_history,
    path_scheme_history,
    tagless_engine,
)
from repro.metrics import rate_confidence
from repro.predictors import EngineConfig, HistoryConfig, HistorySource
from repro.predictors.history import PathFilter
from repro.predictors.target_cache import TargetCacheConfig
from repro.workloads import get_trace, workload_names


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "perl"
    trace_length = int(sys.argv[2]) if len(sys.argv) > 2 else 200_000
    if benchmark not in workload_names(include_oo=True):
        raise SystemExit(
            f"unknown benchmark {benchmark!r}; choose from "
            f"{', '.join(workload_names(include_oo=True))}"
        )

    print(f"predictor lineage on {benchmark} ({trace_length} instructions), "
          f"95% bootstrap confidence intervals over 16 trace segments\n")
    trace = get_trace(benchmark, n_instructions=trace_length)

    history = (path_scheme_history("ind jmp", bits=10, bits_per_target=2)
               if benchmark in ("perl", "m88ksim", "richards", "deltablue")
               else pattern_history(9))
    generations = [
        ("1993  BTB (last target)", EngineConfig()),
        ("1994  BTB + 2-bit update", EngineConfig()),  # patched below
        ("1997  target cache (this paper)",
         tagless_engine(history=history)),
        ("1998  cascaded filter", EngineConfig(
            target_cache=TargetCacheConfig(kind="cascaded", entries=256,
                                           assoc=4),
            history=history)),
        ("2011  ITTAGE-lite", EngineConfig(
            target_cache=TargetCacheConfig(kind="ittage", entries=128),
            history=HistoryConfig(source=HistorySource.PATH_GLOBAL, bits=48,
                                  path_filter=PathFilter.CONTROL))),
    ]
    from repro.predictors.btb import UpdateStrategy
    generations[1] = (generations[1][0],
                      EngineConfig(btb_strategy=UpdateStrategy.TWO_BIT))

    print(f"{'generation':36s} {'indirect mispredict (95% CI)':>34s}")
    for label, config in generations:
        ci = rate_confidence(trace, config, n_segments=16)
        bar = "#" * max(1, round(60 * ci.estimate))
        print(f"{label:36s} {ci.estimate:7.2%} "
              f"[{ci.low:6.2%}, {ci.high:6.2%}]  {bar}")

    print("\neach generation re-uses the previous one's insight: history "
          "disambiguates dynamic contexts (1997), monomorphic jumps don't "
          "need history (1998), and different jumps need different history "
          "lengths (2011).")


if __name__ == "__main__":
    main()
