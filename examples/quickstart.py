#!/usr/bin/env python3
"""Quickstart: measure how a target cache fixes indirect-jump prediction.

Runs the perl-like interpreter workload through three predictor
configurations — BTB only (the paper's baseline), BTB + tagless target
cache, and a perfect oracle — and reports misprediction rates and the
simulated execution-time reduction.

Usage::

    python examples/quickstart.py [trace_length]
"""

import sys

from repro.pipeline import MachineConfig, memory_penalties, run_timing
from repro.predictors import (
    EngineConfig,
    HistoryConfig,
    HistorySource,
    TargetCacheConfig,
    simulate,
)
from repro.predictors.history import PathFilter
from repro.workloads import get_trace


def main() -> None:
    trace_length = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    print(f"generating a {trace_length}-instruction perl-like trace...")
    trace = get_trace("perl", n_instructions=trace_length)
    machine = MachineConfig()
    penalties = memory_penalties(trace, machine)

    configurations = [
        ("BTB only (baseline)", EngineConfig()),
        ("+ tagless target cache, pattern history", EngineConfig(
            target_cache=TargetCacheConfig(kind="tagless", scheme="gshare",
                                           history_bits=9),
            history=HistoryConfig(source=HistorySource.PATTERN, bits=9),
        )),
        ("+ tagless target cache, ind-jmp path history", EngineConfig(
            target_cache=TargetCacheConfig(kind="tagless", scheme="gshare",
                                           history_bits=9),
            history=HistoryConfig(source=HistorySource.PATH_GLOBAL, bits=9,
                                  path_filter=PathFilter.IND_JMP),
        )),
        ("oracle (upper bound)", EngineConfig(
            target_cache=TargetCacheConfig(kind="oracle"),
        )),
    ]

    base_cycles = None
    print(f"{'configuration':48s} {'ind mispred':>12s} {'cycles':>10s} "
          f"{'exec reduction':>15s}")
    for label, config in configurations:
        stats = simulate(trace, config, collect_mask=True)
        timing = run_timing(trace, machine, stats.mispredict_mask, penalties)
        if base_cycles is None:
            base_cycles = timing.cycles
        reduction = (base_cycles - timing.cycles) / base_cycles
        print(f"{label:48s} {stats.indirect_mispred_rate:>11.1%} "
              f"{timing.cycles:>10,} {reduction:>14.1%}")


if __name__ == "__main__":
    main()
