#!/usr/bin/env python3
"""Build your own interpreter workload and watch the path history learn it.

This example reproduces the paper's §4.2.3 perl observation from scratch:
it assembles a small bytecode interpreter with the guest program builder,
traces it, and shows how prediction accuracy depends on *which* history
indexes the target cache — and on how periodic the interpreted script is.

Usage::

    python examples/interpreter_dispatch.py
"""

import random

from repro.guest import ProgramBuilder, run_program
from repro.predictors import (
    EngineConfig,
    HistoryConfig,
    HistorySource,
    TargetCacheConfig,
    simulate,
)
from repro.predictors.history import PathFilter
from repro.trace import Trace


def build_interpreter(script, n_handlers=12, seed=7):
    """Assemble a dispatch-loop interpreter for a fixed token script."""
    rng = random.Random(seed)
    b = ProgramBuilder()
    b.jmp("main")
    handlers = [f"h{i}" for i in range(n_handlers)]
    table = b.data_table(handlers)
    script_base = b.data_table(script)
    for i, name in enumerate(handlers):
        b.label(name)
        # variable-length bodies so target-address bits are informative
        for _ in range(1 + i % 5):
            b.addi(20, 20, i + 1)
        b.jmp("cont")
    b.label("main")
    b.li(10, 0)
    b.li(11, len(script))
    b.label("loop")
    b.shli(1, 10, 2)
    b.li(2, script_base)
    b.add(1, 1, 2)
    b.load(3, 1)
    b.shli(1, 3, 2)
    b.li(2, table)
    b.add(1, 1, 2)
    b.load(4, 1)
    b.jr(4)
    b.label("cont")
    b.addi(10, 10, 1)
    b.blt(10, 11, "loop")
    b.li(10, 0)
    b.jmp("loop")
    return b.build(entry="main")


def measure(trace, history):
    config = EngineConfig(
        target_cache=TargetCacheConfig(kind="tagless", scheme="gshare",
                                       history_bits=9),
        history=history,
    )
    return simulate(trace, config).indirect_mispred_rate


def main() -> None:
    rng = random.Random(42)
    periodic_script = [rng.randrange(12) for _ in range(40)]

    print("periodic script (the paper's perl case):")
    program = build_interpreter(periodic_script)
    trace = Trace.from_raw(run_program(program, max_instructions=120_000))
    btb = simulate(trace, EngineConfig()).indirect_mispred_rate
    print(f"  BTB only:                    {btb:6.1%}")
    for label, history in [
        ("ind-jmp path history (9x1b)", HistoryConfig(
            source=HistorySource.PATH_GLOBAL, bits=9,
            path_filter=PathFilter.IND_JMP)),
        ("ind-jmp path, 3 bits/target", HistoryConfig(
            source=HistorySource.PATH_GLOBAL, bits=9, bits_per_target=3,
            path_filter=PathFilter.IND_JMP)),
        ("per-address path history", HistoryConfig(
            source=HistorySource.PATH_PER_ADDRESS, bits=9)),
        ("pattern history", HistoryConfig(
            source=HistorySource.PATTERN, bits=9)),
    ]:
        print(f"  target cache, {label:28s} {measure(trace, history):6.1%}")

    print("\nsame interpreter, fresh random tokens every iteration "
          "(no repeating script -> nothing for history to learn):")
    # emulate aperiodicity by concatenating many distinct scripts
    long_random_script = [rng.randrange(12) for _ in range(4000)]
    program = build_interpreter(long_random_script)
    trace = Trace.from_raw(run_program(program, max_instructions=120_000))
    btb = simulate(trace, EngineConfig()).indirect_mispred_rate
    path = measure(trace, HistoryConfig(
        source=HistorySource.PATH_GLOBAL, bits=9,
        path_filter=PathFilter.IND_JMP))
    print(f"  BTB only:                    {btb:6.1%}")
    print(f"  target cache, path history:  {path:6.1%}")
    print("\ntakeaway: the target cache's win comes from *recurring* "
          "control-flow contexts; the paper's looping perl script is the "
          "ideal case.")


if __name__ == "__main__":
    main()
