"""Machine-readable performance baseline: ``repro bench``.

Runs the same scenario the speed guards assert on — a one-signature
target-cache sweep, reference :func:`~repro.predictors.engine.simulate_many`
versus the stream-factored kernel of :mod:`repro.predictors.streams` — and
writes the measurements to ``BENCH_sweep.json`` so the performance
trajectory of the sweep engine is recorded per commit (CI uploads the file
as an artifact).  Timing uses min-of-rounds, like the guards, so scheduler
noise cannot masquerade as a regression.

The JSON payload is versioned via its ``schema`` field; consumers should
ignore unknown keys.  ``BENCH_sweep.json`` always holds the *latest* run;
:func:`append_history` additionally appends each payload as one JSONL line
to ``BENCH_history.jsonl``, so the trajectory across runs survives the
overwrite (``repro report --compare OLD NEW`` diffs any two payloads).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Callable, Dict, List

import numpy as np

from repro.guest.lowering import lowering_names
from repro.obs import get_sink
from repro.predictors import (
    EngineConfig,
    HistoryConfig,
    HistorySource,
    PredictionStats,
    TargetCacheConfig,
    build_streams,
    decode_branches,
    simulate_many,
    simulate_streamed,
    simulate_vector,
    stream_signature,
)
from repro.workloads import get_trace

#: Bump when the payload layout changes incompatibly.
SCHEMA_VERSION = 1

DEFAULT_WORKLOAD = "perl"
DEFAULT_N_CONFIGS = 12
DEFAULT_ROUNDS = 3

#: Server-slice scenario: a btb2 L2-geometry sweep on a capacity-bound
#: workload (the ``repro server_btb`` shape).  btb2 rows are routed on
#: BTB-missed rows too, so this times the backstop path of the stream
#: kernel — the one the SPEC-like default workload never exercises.
SERVER_WORKLOAD = "webserver_like"
SERVER_L2_ENTRIES = (0, 2048, 4096, 8192)

#: Lowering-slice scenario: the interpreter workload whose dispatch shape
#: the switch lowerings reshape most (the ``repro switch_lowering`` core).
LOWERING_WORKLOAD = "perl"


def default_trace_length() -> int:
    """Default instruction count, overridable like the speed guards."""
    return int(os.environ.get("REPRO_BENCH_TRACE_LENGTH", "100000"))


def sweep_configs(n_configs: int = DEFAULT_N_CONFIGS) -> List[EngineConfig]:
    """A tagged-target-cache sweep sharing one stream signature.

    Mirrors the paper's Table 7/8 shape (geometry sweep of the tagged
    cache); every cell projects onto the same
    :class:`~repro.predictors.streams.StreamConfig`, which is the scenario
    the stream kernel amortises.
    """
    configs = []
    entries = 128
    assoc_cycle = (1, 2, 4)
    while len(configs) < n_configs:
        for assoc in assoc_cycle:
            if len(configs) >= n_configs:
                break
            configs.append(
                EngineConfig(
                    target_cache=TargetCacheConfig(
                        kind="tagged", entries=entries, assoc=assoc
                    )
                )
            )
        entries *= 2
    return configs


def vector_sweep_configs() -> List[EngineConfig]:
    """The paper's Table 4 cells: tagless schemes over pattern history.

    Every cell is vectorizable and shares one stream signature with the
    tagged sweep of :func:`sweep_configs`, so the per-tier breakdown
    (engine vs streamed vs vector) measures pure kernel cost on identical
    streams.
    """
    pattern = HistoryConfig(source=HistorySource.PATTERN, bits=9)
    return [
        EngineConfig(
            target_cache=TargetCacheConfig(
                kind="tagless", scheme=scheme,
                history_bits=history_bits, address_bits=address_bits,
            ),
            history=pattern,
        )
        for scheme, history_bits, address_bits in (
            ("gag", 9, 0), ("gas", 8, 1), ("gas", 7, 2), ("gshare", 9, 0),
        )
    ]


def server_sweep_configs() -> List[EngineConfig]:
    """The ``repro server_btb`` cells: a two-level-BTB L2 geometry sweep."""
    return [
        EngineConfig(
            target_cache=TargetCacheConfig(
                kind="btb2", entries=64, assoc=4,
                l2_entries=l2_entries, l2_assoc=8,
            )
        )
        for l2_entries in SERVER_L2_ENTRIES
    ]


def _min_time(func: Callable[[], object], rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _mpki(stats: PredictionStats) -> float:
    """Branch mispredictions per 1000 instructions, all branch kinds.

    The lowering slice compares programs whose dispatch is *shaped*
    differently, so per-kind or per-branch rates shift their denominator
    across rows; MPKI keeps it fixed (see the switch_lowering experiment).
    """
    if not stats.instructions:
        return 0.0
    return 1000.0 * stats.branch_mispredictions / stats.instructions


def run_bench(workload: str = DEFAULT_WORKLOAD,
              trace_length: int | None = None, seed: int = 1997,
              n_configs: int = DEFAULT_N_CONFIGS,
              rounds: int = DEFAULT_ROUNDS,
              use_trace_cache: bool = True) -> Dict[str, Any]:
    """Measure cold vs warm sweep throughput; return the JSON payload."""
    if trace_length is None:
        trace_length = default_trace_length()
    trace = get_trace(workload, n_instructions=trace_length, seed=seed,
                      use_cache=use_trace_cache)
    decoded = decode_branches(trace)
    configs = sweep_configs(n_configs)
    signature = stream_signature(configs[0])

    # Spans sit *outside* the measured closures: the ledger records how
    # long each bench phase took without perturbing the measurements.
    sink = get_sink()
    with sink.span("bench.reference", workload=workload, rounds=rounds):
        reference_total = _min_time(
            lambda: simulate_many(trace, configs), rounds
        )
    with sink.span("bench.build", workload=workload, rounds=rounds):
        build_time = _min_time(
            lambda: build_streams(decoded, signature), rounds
        )
    streams = build_streams(decoded, signature)
    with sink.span("bench.warm", workload=workload, rounds=rounds):
        warm_total = _min_time(
            lambda: [simulate_streamed(streams, config) for config in configs],
            rounds,
        )

    # Per-tier breakdown on the Table 4 cells (all vectorizable; same
    # stream signature as the tagged sweep, so the streams are shared).
    # Each tier is run once untimed first so memoised per-stream state
    # (history variants, columnar views) is warm, as in a real sweep.
    tier_configs = vector_sweep_configs()
    n_tiers = len(tier_configs)
    with sink.span("bench.tiers", workload=workload, rounds=rounds):
        tier_engine = _min_time(
            lambda: simulate_many(trace, tier_configs), rounds
        )
        for config in tier_configs:
            simulate_streamed(streams, config)
            simulate_vector(streams, config)
        tier_streams = _min_time(
            lambda: [simulate_streamed(streams, config)
                     for config in tier_configs],
            rounds,
        )
        tier_vector = _min_time(
            lambda: [simulate_vector(streams, config)
                     for config in tier_configs],
            rounds,
        )

    # Server slice: the btb2 sweep on a capacity-bound trace.  The
    # backstop trait routes BTB-missed rows through the predictor, so the
    # stream-kernel subset is much larger here than on the SPEC-like
    # default workload — this times that path and records the capacity
    # recovery the sweep exists for.
    server_trace = get_trace(SERVER_WORKLOAD, n_instructions=trace_length,
                             seed=seed, use_cache=use_trace_cache)
    server_decoded = decode_branches(server_trace)
    server_configs = server_sweep_configs()
    server_signature = stream_signature(server_configs[0])
    with sink.span("bench.server", workload=SERVER_WORKLOAD, rounds=rounds):
        server_build = _min_time(
            lambda: build_streams(server_decoded, server_signature), rounds
        )
        server_streams = build_streams(server_decoded, server_signature)
        server_warm = _min_time(
            lambda: [simulate_streamed(server_streams, config)
                     for config in server_configs],
            rounds,
        )
    server_base = simulate_streamed(server_streams,
                                    EngineConfig()).indirect_mispred_rate
    server_best = simulate_streamed(server_streams,
                                    server_configs[-1]).indirect_mispred_rate
    n_server = len(server_configs)

    # Lowering slice: the same interpreter under every registered switch
    # lowering.  Dispatch shape changes which branch kinds exist at all —
    # if_tree has no indirect jumps left for a target cache to help with —
    # so this slice records the warm sweep cost per lowering plus the MPKI
    # exchange rate the switch_lowering experiment studies in full.
    lowering_configs = vector_sweep_configs()
    n_lowering = len(lowering_configs)
    per_lowering: Dict[str, Dict[str, float]] = {}
    for lowering in lowering_names():
        lowered_name = (LOWERING_WORKLOAD if lowering == "jump_table"
                        else f"{LOWERING_WORKLOAD}@{lowering}")
        lowered_trace = get_trace(lowered_name, n_instructions=trace_length,
                                  seed=seed, use_cache=use_trace_cache)
        lowered_decoded = decode_branches(lowered_trace)
        with sink.span("bench.lowering", lowering=lowering, rounds=rounds):
            lowered_build = _min_time(
                lambda: build_streams(lowered_decoded, signature), rounds
            )
            lowered_streams = build_streams(lowered_decoded, signature)
            lowered_warm = _min_time(
                lambda: [simulate_streamed(lowered_streams, config)
                         for config in lowering_configs],
                rounds,
            )
        per_k = 1000.0 / len(lowered_trace)
        per_lowering[lowering] = {
            "build_s": lowered_build,
            "streams_per_cell_s": lowered_warm / n_lowering,
            "indirect_per_kinstr": per_k * float(
                np.count_nonzero(lowered_trace.is_indirect_jump)
            ),
            "conditional_per_kinstr": per_k * float(
                np.count_nonzero(lowered_trace.is_conditional)
            ),
            "baseline_mpki": _mpki(
                simulate_streamed(lowered_streams, EngineConfig())
            ),
            "tagless_mpki": min(
                _mpki(simulate_streamed(lowered_streams, config))
                for config in lowering_configs
            ),
        }
    jt = per_lowering["jump_table"]
    lowering_recovered = (
        (jt["baseline_mpki"] - jt["tagless_mpki"]) / jt["baseline_mpki"]
        if jt["baseline_mpki"] else 0.0
    )

    n = len(configs)
    payload: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "params": {
            "workload": workload,
            "trace_length": trace_length,
            "seed": seed,
            "n_configs": n,
            "rounds": rounds,
        },
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "trace": {
            "instructions": trace_length,
            "branches": streams.n_branches,
            "target_cache_subset": streams.subset_size,
            "subset_fraction": (
                streams.subset_size / streams.n_branches
                if streams.n_branches else 0.0
            ),
        },
        "reference": {
            "total_s": reference_total,
            "per_cell_s": reference_total / n,
            "cells_per_s": n / reference_total,
        },
        "stream_kernel": {
            "build_s": build_time,
            "warm_total_s": warm_total,
            "warm_per_cell_s": warm_total / n,
            "warm_cells_per_s": n / warm_total,
        },
        "speedup": {
            "per_cell": reference_total / warm_total,
            "including_build": reference_total / (build_time + warm_total),
        },
        # Per-tier cell timings on the Table 4 (tagless) cells: the same
        # cells through all three execution tiers, warm, shared streams.
        "tiers": {
            "n_configs": n_tiers,
            "configs": "table4-tagless",
            "engine_per_cell_s": tier_engine / n_tiers,
            "streams_per_cell_s": tier_streams / n_tiers,
            "vector_per_cell_s": tier_vector / n_tiers,
            "speedup": {
                "vector_vs_streams": tier_streams / tier_vector,
                "vector_vs_engine": tier_engine / tier_vector,
            },
        },
        # Server slice: btb2 (backstop) cells on a capacity-bound trace.
        "server": {
            "workload": SERVER_WORKLOAD,
            "n_configs": n_server,
            "configs": "btb2-l2-sweep",
            "build_s": server_build,
            "streams_per_cell_s": server_warm / n_server,
            "subset_fraction": (
                server_streams.subset_size / server_streams.n_branches
                if server_streams.n_branches else 0.0
            ),
            "baseline_indirect_mispred": server_base,
            "btb2_indirect_mispred": server_best,
            "recovered": (
                (server_base - server_best) / server_base
                if server_base else 0.0
            ),
        },
        # Lowering slice: one row per registered switch lowering of the
        # interpreter workload, tagless cells, warm, shared signature.
        "lowering": {
            "workload": LOWERING_WORKLOAD,
            "n_configs": n_lowering,
            "configs": "table4-tagless",
            "per_lowering": per_lowering,
            "recovered": lowering_recovered,
        },
    }
    return payload


def write_bench(payload: Dict[str, Any], path: Path) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def append_history(payload: Dict[str, Any], path: Path) -> None:
    """Append ``payload`` as one JSONL line to the bench history file.

    ``BENCH_sweep.json`` is overwritten per run (consumers always see the
    latest payload); the history file keeps every run, newest last, so the
    performance trajectory is recoverable after the fact.
    """
    line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def format_summary(payload: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a bench payload."""
    params = payload["params"]
    reference = payload["reference"]
    kernel = payload["stream_kernel"]
    speedup = payload["speedup"]
    lines = [
        f"bench: {params['workload']} x {params['n_configs']} cells, "
        f"{params['trace_length']} instructions "
        f"(min of {params['rounds']} rounds)",
        f"  reference simulate_many: {reference['total_s']:.3f}s "
        f"({reference['per_cell_s'] * 1e3:.1f} ms/cell)",
        f"  stream build:            {kernel['build_s']:.3f}s",
        f"  warm stream sweep:       {kernel['warm_total_s']:.3f}s "
        f"({kernel['warm_per_cell_s'] * 1e3:.1f} ms/cell)",
        f"  speedup: {speedup['per_cell']:.1f}x per cell, "
        f"{speedup['including_build']:.1f}x including build",
    ]
    tiers = payload.get("tiers")
    if tiers:  # older payloads predate the per-tier breakdown
        tier_speedup = tiers["speedup"]
        lines += [
            f"  tiers ({tiers['configs']}, {tiers['n_configs']} cells, "
            "warm ms/cell): "
            f"engine {tiers['engine_per_cell_s'] * 1e3:.2f}, "
            f"streams {tiers['streams_per_cell_s'] * 1e3:.2f}, "
            f"vector {tiers['vector_per_cell_s'] * 1e3:.3f}",
            f"  vector speedup: {tier_speedup['vector_vs_streams']:.1f}x "
            f"vs streams, {tier_speedup['vector_vs_engine']:.1f}x vs engine",
        ]
    server = payload.get("server")
    if server:  # older payloads predate the server slice
        lines += [
            f"  server slice ({server['workload']}, {server['n_configs']} "
            f"btb2 cells): {server['streams_per_cell_s'] * 1e3:.1f} ms/cell, "
            f"indirect mispred {server['baseline_indirect_mispred']:.1%} -> "
            f"{server['btb2_indirect_mispred']:.1%} "
            f"({server['recovered']:.0%} recovered)",
        ]
    lowering = payload.get("lowering")
    if lowering:  # older payloads predate the lowering slice
        mix = ", ".join(
            f"{name} {entry['baseline_mpki']:.1f}->{entry['tagless_mpki']:.1f}"
            for name, entry in sorted(lowering["per_lowering"].items())
        )
        lines += [
            f"  lowering slice ({lowering['workload']}, "
            f"{lowering['n_configs']} tagless cells each, "
            f"MPKI btb->tagless): {mix} "
            f"({lowering['recovered']:.0%} of jump_table recovered)",
        ]
    return "\n".join(lines)
