"""Machine-readable performance baseline: ``repro bench``.

Runs the same scenario the speed guards assert on — a one-signature
target-cache sweep, reference :func:`~repro.predictors.engine.simulate_many`
versus the stream-factored kernel of :mod:`repro.predictors.streams` — and
writes the measurements to ``BENCH_sweep.json`` so the performance
trajectory of the sweep engine is recorded per commit (CI uploads the file
as an artifact).  Timing uses min-of-rounds, like the guards, so scheduler
noise cannot masquerade as a regression.

The JSON payload is versioned via its ``schema`` field; consumers should
ignore unknown keys.  ``BENCH_sweep.json`` always holds the *latest* run;
:func:`append_history` additionally appends each payload as one JSONL line
to ``BENCH_history.jsonl``, so the trajectory across runs survives the
overwrite (``repro report --compare OLD NEW`` diffs any two payloads).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Callable, Dict, List

import numpy as np

from repro.obs import get_sink
from repro.predictors import (
    EngineConfig,
    HistoryConfig,
    HistorySource,
    TargetCacheConfig,
    build_streams,
    decode_branches,
    simulate_many,
    simulate_streamed,
    simulate_vector,
    stream_signature,
)
from repro.workloads import get_trace

#: Bump when the payload layout changes incompatibly.
SCHEMA_VERSION = 1

DEFAULT_WORKLOAD = "perl"
DEFAULT_N_CONFIGS = 12
DEFAULT_ROUNDS = 3


def default_trace_length() -> int:
    """Default instruction count, overridable like the speed guards."""
    return int(os.environ.get("REPRO_BENCH_TRACE_LENGTH", "100000"))


def sweep_configs(n_configs: int = DEFAULT_N_CONFIGS) -> List[EngineConfig]:
    """A tagged-target-cache sweep sharing one stream signature.

    Mirrors the paper's Table 7/8 shape (geometry sweep of the tagged
    cache); every cell projects onto the same
    :class:`~repro.predictors.streams.StreamConfig`, which is the scenario
    the stream kernel amortises.
    """
    configs = []
    entries = 128
    assoc_cycle = (1, 2, 4)
    while len(configs) < n_configs:
        for assoc in assoc_cycle:
            if len(configs) >= n_configs:
                break
            configs.append(
                EngineConfig(
                    target_cache=TargetCacheConfig(
                        kind="tagged", entries=entries, assoc=assoc
                    )
                )
            )
        entries *= 2
    return configs


def vector_sweep_configs() -> List[EngineConfig]:
    """The paper's Table 4 cells: tagless schemes over pattern history.

    Every cell is vectorizable and shares one stream signature with the
    tagged sweep of :func:`sweep_configs`, so the per-tier breakdown
    (engine vs streamed vs vector) measures pure kernel cost on identical
    streams.
    """
    pattern = HistoryConfig(source=HistorySource.PATTERN, bits=9)
    return [
        EngineConfig(
            target_cache=TargetCacheConfig(
                kind="tagless", scheme=scheme,
                history_bits=history_bits, address_bits=address_bits,
            ),
            history=pattern,
        )
        for scheme, history_bits, address_bits in (
            ("gag", 9, 0), ("gas", 8, 1), ("gas", 7, 2), ("gshare", 9, 0),
        )
    ]


def _min_time(func: Callable[[], object], rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def run_bench(workload: str = DEFAULT_WORKLOAD,
              trace_length: int | None = None, seed: int = 1997,
              n_configs: int = DEFAULT_N_CONFIGS,
              rounds: int = DEFAULT_ROUNDS,
              use_trace_cache: bool = True) -> Dict[str, Any]:
    """Measure cold vs warm sweep throughput; return the JSON payload."""
    if trace_length is None:
        trace_length = default_trace_length()
    trace = get_trace(workload, n_instructions=trace_length, seed=seed,
                      use_cache=use_trace_cache)
    decoded = decode_branches(trace)
    configs = sweep_configs(n_configs)
    signature = stream_signature(configs[0])

    # Spans sit *outside* the measured closures: the ledger records how
    # long each bench phase took without perturbing the measurements.
    sink = get_sink()
    with sink.span("bench.reference", workload=workload, rounds=rounds):
        reference_total = _min_time(
            lambda: simulate_many(trace, configs), rounds
        )
    with sink.span("bench.build", workload=workload, rounds=rounds):
        build_time = _min_time(
            lambda: build_streams(decoded, signature), rounds
        )
    streams = build_streams(decoded, signature)
    with sink.span("bench.warm", workload=workload, rounds=rounds):
        warm_total = _min_time(
            lambda: [simulate_streamed(streams, config) for config in configs],
            rounds,
        )

    # Per-tier breakdown on the Table 4 cells (all vectorizable; same
    # stream signature as the tagged sweep, so the streams are shared).
    # Each tier is run once untimed first so memoised per-stream state
    # (history variants, columnar views) is warm, as in a real sweep.
    tier_configs = vector_sweep_configs()
    n_tiers = len(tier_configs)
    with sink.span("bench.tiers", workload=workload, rounds=rounds):
        tier_engine = _min_time(
            lambda: simulate_many(trace, tier_configs), rounds
        )
        for config in tier_configs:
            simulate_streamed(streams, config)
            simulate_vector(streams, config)
        tier_streams = _min_time(
            lambda: [simulate_streamed(streams, config)
                     for config in tier_configs],
            rounds,
        )
        tier_vector = _min_time(
            lambda: [simulate_vector(streams, config)
                     for config in tier_configs],
            rounds,
        )

    n = len(configs)
    payload: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "params": {
            "workload": workload,
            "trace_length": trace_length,
            "seed": seed,
            "n_configs": n,
            "rounds": rounds,
        },
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "trace": {
            "instructions": trace_length,
            "branches": streams.n_branches,
            "target_cache_subset": streams.subset_size,
            "subset_fraction": (
                streams.subset_size / streams.n_branches
                if streams.n_branches else 0.0
            ),
        },
        "reference": {
            "total_s": reference_total,
            "per_cell_s": reference_total / n,
            "cells_per_s": n / reference_total,
        },
        "stream_kernel": {
            "build_s": build_time,
            "warm_total_s": warm_total,
            "warm_per_cell_s": warm_total / n,
            "warm_cells_per_s": n / warm_total,
        },
        "speedup": {
            "per_cell": reference_total / warm_total,
            "including_build": reference_total / (build_time + warm_total),
        },
        # Per-tier cell timings on the Table 4 (tagless) cells: the same
        # cells through all three execution tiers, warm, shared streams.
        "tiers": {
            "n_configs": n_tiers,
            "configs": "table4-tagless",
            "engine_per_cell_s": tier_engine / n_tiers,
            "streams_per_cell_s": tier_streams / n_tiers,
            "vector_per_cell_s": tier_vector / n_tiers,
            "speedup": {
                "vector_vs_streams": tier_streams / tier_vector,
                "vector_vs_engine": tier_engine / tier_vector,
            },
        },
    }
    return payload


def write_bench(payload: Dict[str, Any], path: Path) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def append_history(payload: Dict[str, Any], path: Path) -> None:
    """Append ``payload`` as one JSONL line to the bench history file.

    ``BENCH_sweep.json`` is overwritten per run (consumers always see the
    latest payload); the history file keeps every run, newest last, so the
    performance trajectory is recoverable after the fact.
    """
    line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def format_summary(payload: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a bench payload."""
    params = payload["params"]
    reference = payload["reference"]
    kernel = payload["stream_kernel"]
    speedup = payload["speedup"]
    lines = [
        f"bench: {params['workload']} x {params['n_configs']} cells, "
        f"{params['trace_length']} instructions "
        f"(min of {params['rounds']} rounds)",
        f"  reference simulate_many: {reference['total_s']:.3f}s "
        f"({reference['per_cell_s'] * 1e3:.1f} ms/cell)",
        f"  stream build:            {kernel['build_s']:.3f}s",
        f"  warm stream sweep:       {kernel['warm_total_s']:.3f}s "
        f"({kernel['warm_per_cell_s'] * 1e3:.1f} ms/cell)",
        f"  speedup: {speedup['per_cell']:.1f}x per cell, "
        f"{speedup['including_build']:.1f}x including build",
    ]
    tiers = payload.get("tiers")
    if tiers:  # older payloads predate the per-tier breakdown
        tier_speedup = tiers["speedup"]
        lines += [
            f"  tiers ({tiers['configs']}, {tiers['n_configs']} cells, "
            "warm ms/cell): "
            f"engine {tiers['engine_per_cell_s'] * 1e3:.2f}, "
            f"streams {tiers['streams_per_cell_s'] * 1e3:.2f}, "
            f"vector {tiers['vector_per_cell_s'] * 1e3:.3f}",
            f"  vector speedup: {tier_speedup['vector_vs_streams']:.1f}x "
            f"vs streams, {tier_speedup['vector_vs_engine']:.1f}x vs engine",
        ]
    return "\n".join(lines)
