"""Functional simulator for the TVM guest ISA.

The VM executes a :class:`~repro.guest.isa.GuestProgram` and records one
trace entry per retired instruction.  The entry carries everything the
prediction and timing experiments consume:

* ``pc`` and the instruction's timing class and branch kind;
* for branches: the ``taken`` outcome and the *computed target* (for a
  conditional branch this is the static taken-target regardless of outcome,
  matching what a BTB stores; for indirect branches it is the dynamically
  computed destination the target cache must predict);
* register dependences (up to two sources, one destination) so the
  out-of-order timing model can schedule real dataflow;
* the effective address of loads and stores for the data-cache model.

Calls and returns use a VM-internal return-address stack (the guest ISA has
no architectural stack pointer); this mirrors how the paper's return
instructions are "effectively handled with the return address stack" and
keeps the guest programs small.

The VM deliberately avoids importing :mod:`repro.trace`; it returns a plain
:class:`RawTrace` of Python lists which ``repro.trace.Trace.from_raw``
converts into numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Integer results of multiplicative and shift ops wrap to 64 bits, like
#: hardware registers; without this a squaring chain would grow a Python
#: bigint without bound and stall the simulation.
_WORD_MASK = (1 << 64) - 1

from repro.guest.isa import (
    INSTRUCTION_BYTES,
    NUM_REGISTERS,
    GuestProgram,
    Op,
)


class VMError(Exception):
    """Raised on guest faults: bad pc, misaligned access, stack underflow."""


@dataclass
class RawTrace:
    """Columnar dynamic-instruction trace as plain Python lists.

    Converted to numpy by ``repro.trace.Trace.from_raw``; kept dependency-free
    so the guest package stands alone.
    """

    pc: List[int] = field(default_factory=list)
    instr_class: List[int] = field(default_factory=list)
    branch_kind: List[int] = field(default_factory=list)
    taken: List[int] = field(default_factory=list)
    target: List[int] = field(default_factory=list)
    src1: List[int] = field(default_factory=list)
    src2: List[int] = field(default_factory=list)
    dst: List[int] = field(default_factory=list)
    mem_addr: List[int] = field(default_factory=list)
    #: True when execution reached HALT (as opposed to the instruction cap).
    halted: bool = False

    def __len__(self) -> int:
        return len(self.pc)


class VM:
    """Execute a guest program, producing a :class:`RawTrace`.

    Parameters
    ----------
    program:
        The assembled guest program.
    max_instructions:
        Hard cap on retired instructions; execution stops there even if the
        program has not halted (all the paper's workloads are loops, so the
        cap is the natural way to size a trace).
    call_stack_limit:
        Guard against runaway guest recursion.
    stop_pc:
        Optional synchronization point: execution stops *before* fetching
        this address once it has been reached ``stop_visits`` times.  Lets
        equivalence tests compare lowerings at the same architectural point
        (e.g. "after 40 trips around the outer loop") even though their
        dynamic instruction counts differ.
    stop_visits:
        How many arrivals at ``stop_pc`` to run before stopping.
    """

    def __init__(self, program: GuestProgram, max_instructions: int = 1_000_000,
                 call_stack_limit: int = 10_000,
                 stop_pc: Optional[int] = None, stop_visits: int = 1) -> None:
        self.program = program
        self.max_instructions = max_instructions
        self.call_stack_limit = call_stack_limit
        self.stop_pc = stop_pc
        self.stop_visits = stop_visits
        self.registers: List[float] = [0] * NUM_REGISTERS
        self.memory: Dict[int, float] = dict(program.data)
        self.call_stack: List[int] = []
        self.pc = program.entry
        self.retired = 0

    def run(self) -> RawTrace:
        """Execute until HALT, a fault, or the instruction cap."""
        trace = RawTrace()
        code = self.program.code
        regs = self.registers
        memory = self.memory
        call_stack = self.call_stack
        ibytes = INSTRUCTION_BYTES
        n_code = len(code)

        pc_list = trace.pc
        cls_list = trace.instr_class
        kind_list = trace.branch_kind
        taken_list = trace.taken
        target_list = trace.target
        src1_list = trace.src1
        src2_list = trace.src2
        dst_list = trace.dst
        addr_list = trace.mem_addr

        pc = self.pc
        remaining = self.max_instructions - self.retired
        # -1 is never a valid pc, so a disabled stop point costs one integer
        # compare per instruction instead of a None check.
        stop_pc = -1 if self.stop_pc is None else self.stop_pc
        stop_visits = self.stop_visits

        while remaining > 0:
            if pc == stop_pc:
                stop_visits -= 1
                if stop_visits <= 0:
                    break
            index = pc >> 2
            if not 0 <= index < n_code:
                raise VMError(f"pc {pc:#x} outside code segment")
            ins = code[index]
            op = ins.op
            rd = ins.rd
            rs1 = ins.rs1
            rs2 = ins.rs2
            imm = ins.imm

            next_pc = pc + ibytes
            taken = 0
            target = 0
            mem_addr = 0
            kind = 0  # BranchKind.NOT_BRANCH

            if op == Op.ADD:
                regs[rd] = regs[rs1] + regs[rs2]
            elif op == Op.ADDI:
                regs[rd] = regs[rs1] + imm
            elif op == Op.LI:
                regs[rd] = imm
            elif op == Op.LOAD:
                mem_addr = int(regs[rs1]) + imm
                regs[rd] = memory.get(mem_addr, 0)
            elif op == Op.STORE:
                mem_addr = int(regs[rs1]) + imm
                memory[mem_addr] = regs[rs2]
            elif op == Op.BEQ:
                kind = 1  # COND_DIRECT
                target = imm
                if regs[rs1] == regs[rs2]:
                    taken = 1
                    next_pc = imm
            elif op == Op.BNE:
                kind = 1
                target = imm
                if regs[rs1] != regs[rs2]:
                    taken = 1
                    next_pc = imm
            elif op == Op.BLT:
                kind = 1
                target = imm
                if regs[rs1] < regs[rs2]:
                    taken = 1
                    next_pc = imm
            elif op == Op.BGE:
                kind = 1
                target = imm
                if regs[rs1] >= regs[rs2]:
                    taken = 1
                    next_pc = imm
            elif op == Op.SUB:
                regs[rd] = regs[rs1] - regs[rs2]
            elif op == Op.AND:
                regs[rd] = int(regs[rs1]) & int(regs[rs2])
            elif op == Op.OR:
                regs[rd] = int(regs[rs1]) | int(regs[rs2])
            elif op == Op.XOR:
                regs[rd] = int(regs[rs1]) ^ int(regs[rs2])
            elif op == Op.SLT:
                regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
            elif op == Op.MUL:
                regs[rd] = (regs[rs1] * regs[rs2]) & _WORD_MASK \
                    if isinstance(regs[rs1], int) and isinstance(regs[rs2], int) \
                    else regs[rs1] * regs[rs2]
            elif op == Op.DIV:
                divisor = regs[rs2]
                regs[rd] = 0 if divisor == 0 else int(regs[rs1] / divisor)
            elif op == Op.MOD:
                divisor = int(regs[rs2])
                regs[rd] = 0 if divisor == 0 else int(regs[rs1]) % divisor
            elif op == Op.FADD:
                regs[rd] = float(regs[rs1]) + float(regs[rs2])
            elif op == Op.FSUB:
                regs[rd] = float(regs[rs1]) - float(regs[rs2])
            elif op == Op.FMUL:
                regs[rd] = float(regs[rs1]) * float(regs[rs2])
            elif op == Op.FDIV:
                divisor = float(regs[rs2])
                regs[rd] = 0.0 if divisor == 0.0 else float(regs[rs1]) / divisor
            elif op == Op.SHL:
                regs[rd] = (int(regs[rs1]) << (int(regs[rs2]) & 63)) & _WORD_MASK
            elif op == Op.SHR:
                regs[rd] = int(regs[rs1]) >> (int(regs[rs2]) & 63)
            elif op == Op.SHLI:
                regs[rd] = (int(regs[rs1]) << (imm & 63)) & _WORD_MASK
            elif op == Op.SHRI:
                regs[rd] = int(regs[rs1]) >> (imm & 63)
            elif op == Op.ANDI:
                regs[rd] = int(regs[rs1]) & imm
            elif op == Op.XORI:
                regs[rd] = int(regs[rs1]) ^ imm
            elif op == Op.JMP:
                kind = 2  # UNCOND_DIRECT
                taken = 1
                target = imm
                next_pc = imm
            elif op == Op.CALL:
                kind = 3  # CALL_DIRECT
                taken = 1
                target = imm
                if len(call_stack) >= self.call_stack_limit:
                    raise VMError("guest call stack overflow")
                call_stack.append(pc + ibytes)
                next_pc = imm
            elif op == Op.CALLR:
                kind = 4  # CALL_INDIRECT
                taken = 1
                target = int(regs[rs1])
                if len(call_stack) >= self.call_stack_limit:
                    raise VMError("guest call stack overflow")
                call_stack.append(pc + ibytes)
                next_pc = target
            elif op == Op.RET:
                kind = 5  # RETURN
                taken = 1
                if not call_stack:
                    raise VMError("return with empty call stack")
                target = call_stack.pop()
                next_pc = target
            elif op == Op.JR:
                kind = 6  # IND_JUMP
                taken = 1
                target = int(regs[rs1])
                next_pc = target
            elif op == Op.HALT:
                trace.halted = True
                break
            else:  # pragma: no cover - exhaustive above
                raise VMError(f"unknown opcode {op}")

            regs[0] = 0  # r0 is hard-wired to zero

            pc_list.append(pc)
            cls_list.append(int(ins.instr_class))
            kind_list.append(kind)
            taken_list.append(taken)
            target_list.append(target)
            src1_list.append(rs1)
            src2_list.append(rs2)
            dst_list.append(rd)
            addr_list.append(mem_addr)

            pc = next_pc
            remaining -= 1

        self.pc = pc
        self.retired = self.max_instructions - remaining
        return trace


def run_program(program: GuestProgram, max_instructions: int = 1_000_000) -> RawTrace:
    """Convenience wrapper: execute ``program`` and return its raw trace."""
    return VM(program, max_instructions=max_instructions).run()
