"""Guest instruction-set definition for the TVM functional simulator.

The ISA is deliberately small but covers everything the paper's experiments
need:

* integer / floating-point / bit-field arithmetic so the timing model can
  apply the per-class latencies of the paper's Table 3;
* loads and stores with register+immediate addressing so the 16KB data cache
  of the simulated machine sees realistic address streams;
* the full control-flow taxonomy of the paper's Section 1 — conditional
  direct branches, unconditional direct jumps, direct and indirect calls,
  returns, and indirect jumps (the jump-table jumps the target cache
  predicts).

Instructions are fixed-size (4 bytes) and word-aligned, matching the paper's
observation that "the least significant bits from each address are ignored
because instructions are aligned on word boundaries".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional, Tuple

#: Byte size of one guest instruction; guest PCs advance by this much.
INSTRUCTION_BYTES = 4

#: Number of architectural registers.  Register 0 is hard-wired to zero.
NUM_REGISTERS = 32

#: Conventional register assignments used by the program builder and the
#: workloads.  Nothing in the VM enforces these beyond ZERO.
REG_ZERO = 0


class InstrClass(IntEnum):
    """Timing classes, mirroring the paper's Table 3.

    Each dynamic instruction belongs to exactly one class; the pipeline model
    assigns execution latency by class ("each functional unit can execute
    instructions from any of the instruction classes").
    """

    INT = 0        #: integer add, sub and logic ops
    FP_ADD = 1     #: FP add, sub, and convert
    MUL = 2        #: FP mul and INT mul
    DIV = 3        #: FP div and INT div
    LOAD = 4       #: memory loads
    STORE = 5      #: memory stores
    BITFIELD = 6   #: shift and bit testing
    BRANCH = 7     #: control instructions


class BranchKind(IntEnum):
    """Control-flow taxonomy from the paper's Section 1.

    The paper partitions branches along two axes (conditional/unconditional,
    direct/indirect) and notes only three of the four combinations occur with
    significant frequency.  Returns are technically indirect jumps but are
    excluded from the target cache because the return address stack already
    handles them (paper footnote 1); they get their own kind so that the
    fetch engine and the path-history filters can treat them separately, as
    do direct and indirect calls (the ``Call/ret`` path-history variant
    records both).
    """

    NOT_BRANCH = 0
    COND_DIRECT = 1    #: conditional direct branch (beq/bne/blt/bge)
    UNCOND_DIRECT = 2  #: unconditional direct jump
    CALL_DIRECT = 3    #: direct jump-to-subroutine
    CALL_INDIRECT = 4  #: indirect jump-to-subroutine (function pointer)
    RETURN = 5         #: subroutine return
    IND_JUMP = 6       #: indirect jump (jump-table dispatch)

    @property
    def is_branch(self) -> bool:
        return self is not BranchKind.NOT_BRANCH

    @property
    def is_indirect(self) -> bool:
        """True for branches whose target is dynamically specified."""
        return self in _INDIRECT_KINDS

    @property
    def is_predicted_by_target_cache(self) -> bool:
        """Indirect branches the paper routes through the target cache.

        Indirect jumps and indirect calls qualify; returns do not (they are
        handled by the return address stack).
        """
        return self in _TARGET_CACHE_KINDS

    @property
    def is_call(self) -> bool:
        return self in (BranchKind.CALL_DIRECT, BranchKind.CALL_INDIRECT)

    @property
    def redirects_stream(self) -> bool:
        """True for every kind that can redirect the instruction stream.

        This is the membership test of the paper's ``Control`` path-history
        variant.  Conditional branches only redirect when taken, but the
        paper's Control scheme records "the target address of all
        instructions that can redirect the instruction stream", i.e. every
        branch kind.
        """
        return self is not BranchKind.NOT_BRANCH


_INDIRECT_KINDS = frozenset(
    {BranchKind.CALL_INDIRECT, BranchKind.RETURN, BranchKind.IND_JUMP}
)
_TARGET_CACHE_KINDS = frozenset({BranchKind.CALL_INDIRECT, BranchKind.IND_JUMP})


class Op(IntEnum):
    """Guest opcodes."""

    # Integer ALU (class INT)
    ADD = 0
    SUB = 1
    AND = 2
    OR = 3
    XOR = 4
    SLT = 5       #: set-less-than: rd = 1 if rs1 < rs2 else 0
    ADDI = 6      #: rd = rs1 + imm
    LI = 7        #: rd = imm
    # Multiply / divide (classes MUL / DIV)
    MUL = 8
    DIV = 9       #: integer divide (toward zero); divide by zero -> 0
    MOD = 10
    # Floating point (classes FP_ADD / MUL / DIV)
    FADD = 11
    FSUB = 12
    FMUL = 13
    FDIV = 14
    # Bit field (class BITFIELD)
    SHL = 15
    SHR = 16
    SHLI = 17
    SHRI = 18
    ANDI = 19
    XORI = 20
    # Memory (classes LOAD / STORE)
    LOAD = 21     #: rd = mem[rs1 + imm]
    STORE = 22    #: mem[rs1 + imm] = rs2
    # Control (class BRANCH)
    BEQ = 23      #: branch to label if rs1 == rs2
    BNE = 24
    BLT = 25
    BGE = 26
    JMP = 27      #: unconditional direct jump
    CALL = 28     #: direct call; return address pushed on the VM call stack
    CALLR = 29    #: indirect call through register rs1
    RET = 30      #: return to the address on top of the VM call stack
    JR = 31       #: indirect jump to the address in register rs1
    HALT = 32     #: stop execution


#: Opcode -> timing class.  Branch kinds are derived separately because a
#: single class (BRANCH) covers several kinds.
OP_CLASS: Dict[Op, InstrClass] = {
    Op.ADD: InstrClass.INT,
    Op.SUB: InstrClass.INT,
    Op.AND: InstrClass.INT,
    Op.OR: InstrClass.INT,
    Op.XOR: InstrClass.INT,
    Op.SLT: InstrClass.INT,
    Op.ADDI: InstrClass.INT,
    Op.LI: InstrClass.INT,
    Op.MUL: InstrClass.MUL,
    Op.DIV: InstrClass.DIV,
    Op.MOD: InstrClass.DIV,
    Op.FADD: InstrClass.FP_ADD,
    Op.FSUB: InstrClass.FP_ADD,
    Op.FMUL: InstrClass.MUL,
    Op.FDIV: InstrClass.DIV,
    Op.SHL: InstrClass.BITFIELD,
    Op.SHR: InstrClass.BITFIELD,
    Op.SHLI: InstrClass.BITFIELD,
    Op.SHRI: InstrClass.BITFIELD,
    Op.ANDI: InstrClass.BITFIELD,
    Op.XORI: InstrClass.BITFIELD,
    Op.LOAD: InstrClass.LOAD,
    Op.STORE: InstrClass.STORE,
    Op.BEQ: InstrClass.BRANCH,
    Op.BNE: InstrClass.BRANCH,
    Op.BLT: InstrClass.BRANCH,
    Op.BGE: InstrClass.BRANCH,
    Op.JMP: InstrClass.BRANCH,
    Op.CALL: InstrClass.BRANCH,
    Op.CALLR: InstrClass.BRANCH,
    Op.RET: InstrClass.BRANCH,
    Op.JR: InstrClass.BRANCH,
    Op.HALT: InstrClass.BRANCH,
}

#: Opcode -> static branch kind.
OP_BRANCH_KIND: Dict[Op, BranchKind] = {
    Op.BEQ: BranchKind.COND_DIRECT,
    Op.BNE: BranchKind.COND_DIRECT,
    Op.BLT: BranchKind.COND_DIRECT,
    Op.BGE: BranchKind.COND_DIRECT,
    Op.JMP: BranchKind.UNCOND_DIRECT,
    Op.CALL: BranchKind.CALL_DIRECT,
    Op.CALLR: BranchKind.CALL_INDIRECT,
    Op.RET: BranchKind.RETURN,
    Op.JR: BranchKind.IND_JUMP,
}


@dataclass(frozen=True)
class Instruction:
    """One static guest instruction.

    ``rd`` / ``rs1`` / ``rs2`` are register indices (``-1`` when unused).
    ``imm`` carries immediates, direct-branch target addresses (after label
    resolution), and load/store displacements.
    """

    op: Op
    rd: int = -1
    rs1: int = -1
    rs2: int = -1
    imm: int = 0

    @property
    def instr_class(self) -> InstrClass:
        return OP_CLASS[self.op]

    @property
    def branch_kind(self) -> BranchKind:
        return OP_BRANCH_KIND.get(self.op, BranchKind.NOT_BRANCH)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Instruction({self.op.name}, rd={self.rd}, rs1={self.rs1}, "
            f"rs2={self.rs2}, imm={self.imm})"
        )


@dataclass
class GuestProgram:
    """An assembled guest program: code, initial data memory, and labels.

    ``code`` is indexed by ``pc // INSTRUCTION_BYTES``; code starts at
    address 0.  ``data`` maps word-aligned byte addresses to initial values
    (the data segment is conventionally placed at :attr:`data_base` and
    above, far from the code).  ``labels`` maps label names to code
    addresses, kept for diagnostics and for tests.
    """

    code: List[Instruction]
    data: Dict[int, int] = field(default_factory=dict)
    labels: Dict[str, int] = field(default_factory=dict)
    data_base: int = 0x10000
    entry: int = 0

    @property
    def num_instructions(self) -> int:
        return len(self.code)

    def address_of(self, label: str) -> int:
        """Return the code address a label resolves to."""
        return self.labels[label]

    def instruction_at(self, pc: int) -> Instruction:
        index, rem = divmod(pc, INSTRUCTION_BYTES)
        if rem:
            raise ValueError(f"misaligned pc {pc:#x}")
        if not 0 <= index < len(self.code):
            raise ValueError(f"pc {pc:#x} outside code segment")
        return self.code[index]

    def static_indirect_jumps(self) -> List[int]:
        """Addresses of static indirect jumps / indirect calls.

        These are the instructions the target cache predicts; the count per
        program is one of the calibration targets (gcc-like must have many,
        perl-like few — see paper §4.2.1).
        """
        return [
            i * INSTRUCTION_BYTES
            for i, ins in enumerate(self.code)
            if ins.branch_kind.is_predicted_by_target_cache
        ]


def validate_register(reg: int, *, allow_unused: bool = False) -> int:
    """Validate a register index, returning it unchanged."""
    if allow_unused and reg == -1:
        return reg
    if not 0 <= reg < NUM_REGISTERS:
        raise ValueError(f"register index {reg} out of range [0, {NUM_REGISTERS})")
    return reg


def classify_target(pc: int, target: int) -> Tuple[bool, Optional[int]]:
    """Return (is_forward, distance_words) for a direct branch, for tests."""
    distance = target - (pc + INSTRUCTION_BYTES)
    return distance >= 0, distance // INSTRUCTION_BYTES
