"""Guest ISA, program builder, and functional VM.

The paper traces SPECint95 binaries compiled for a real ISA.  We do not have
those binaries (or a 1995 compiler), so this package provides the substitute
substrate: a small RISC-like guest instruction set ("TVM"), a label-based
program builder, and a functional simulator that executes guest programs and
emits dynamic-instruction traces carrying everything the predictors and the
timing model need — program counters, branch kinds, taken bits, computed
targets, register dependences, and memory addresses.

Public API:

* :class:`~repro.guest.isa.Op` — guest opcodes.
* :class:`~repro.guest.isa.InstrClass` — timing classes (paper Table 3).
* :class:`~repro.guest.isa.BranchKind` — control-flow taxonomy (paper §1).
* :class:`~repro.guest.builder.ProgramBuilder` — assemble guest programs.
* :class:`~repro.guest.vm.VM` — execute a program, producing a trace.
"""

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import BranchKind, GuestProgram, InstrClass, Instruction, Op
from repro.guest.vm import VM, VMError, run_program

__all__ = [
    "BranchKind",
    "GuestProgram",
    "InstrClass",
    "Instruction",
    "Op",
    "ProgramBuilder",
    "VM",
    "VMError",
    "run_program",
]
