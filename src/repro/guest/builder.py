"""Label-based program builder: a tiny assembler embedded in Python.

Workloads construct guest programs through this API rather than writing raw
:class:`~repro.guest.isa.Instruction` lists; the builder handles label
resolution (including labels stored in data words, which is how jump tables
are built) and catches common assembly mistakes early.

Example::

    b = ProgramBuilder()
    b.label("main")
    b.li(1, 10)                    # r1 = 10
    b.label("loop")
    b.addi(1, 1, -1)               # r1 -= 1
    b.bne(1, 0, "loop")            # while r1 != 0
    b.halt()
    program = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.guest.isa import (
    INSTRUCTION_BYTES,
    GuestProgram,
    Instruction,
    Op,
    validate_register,
)

#: A label reference or an already-resolved address.
LabelRef = Union[str, int]


class BuilderError(Exception):
    """Raised for malformed programs (duplicate/undefined labels, etc.)."""


@dataclass
class _Fixup:
    """A code or data slot awaiting label resolution."""

    label: str
    code_index: Optional[int] = None   # patch Instruction.imm at this index
    data_address: Optional[int] = None  # patch data word at this address


@dataclass(frozen=True)
class SwitchTable:
    """A dispatch table a :meth:`ProgramBuilder.switch` selects through.

    ``labels[i]`` is the handler for selector value ``i``; the table word
    backing case ``i`` lives at ``base + 4 * (i * stride + offset)``.  The
    plain ``stride=1, offset=0`` form is a dense jump table; the strided
    form lets several switch sites share one interleaved table (vtable
    rows, e.g.) without re-allocating it per site.
    """

    base: int
    labels: Tuple[str, ...]
    stride: int = 1
    offset: int = 0

    @property
    def n_cases(self) -> int:
        return len(self.labels)


@dataclass
class SwitchSite:
    """One structured switch recorded by :meth:`ProgramBuilder.switch`.

    The builder records the site *and* immediately lowers it with the
    builder's active lowering pass; ``start``/``end`` bracket the emitted
    code and ``indirect_sites`` lists the addresses of any ``jr``/``callr``
    instructions the lowering produced (empty under ``if_tree``).
    """

    selector: int
    table: SwitchTable
    kind: str                      # "jump" or "call"
    default: Optional[str]
    weights: Optional[Tuple[float, ...]]
    lowering: str
    t_addr: int
    t_handler: int
    stem: str
    start: int = -1
    end: int = -1
    indirect_sites: List[int] = field(default_factory=list)


class ProgramBuilder:
    """Incrementally assemble a :class:`GuestProgram`.

    Registers are plain integers ``0..31``; register 0 reads as zero.
    Direct-branch targets are label names (or absolute integer addresses,
    mostly useful in tests).  Jump tables are created with
    :meth:`data_table`, which stores label addresses into the data segment
    so a workload can ``load`` a handler address and ``jr`` through it.
    """

    def __init__(self, data_base: int = 0x10000,
                 lowering: Optional[str] = None) -> None:
        self._code: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._fixups: List[_Fixup] = []
        self._data: Dict[int, Union[int, float]] = {}
        self._data_base = data_base
        self._data_cursor = data_base
        #: Active switch lowering; ``None`` means the default jump table.
        self.lowering: str = lowering or "jump_table"
        #: Every structured switch recorded via :meth:`switch`, in order.
        self.switch_sites: List[SwitchSite] = []

    # ------------------------------------------------------------------
    # Labels and layout
    # ------------------------------------------------------------------
    @property
    def here(self) -> int:
        """Address of the next instruction to be emitted."""
        return len(self._code) * INSTRUCTION_BYTES

    def label(self, name: str) -> int:
        """Define ``name`` at the current code address and return it."""
        if name in self._labels:
            raise BuilderError(f"duplicate label {name!r}")
        self._labels[name] = self.here
        return self.here

    def unique_label(self, stem: str) -> str:
        """Return a label name guaranteed not to collide, without defining it."""
        index = 0
        name = f"{stem}_{index}"
        while name in self._labels:
            index += 1
            name = f"{stem}_{index}"
        return name

    # ------------------------------------------------------------------
    # Data segment
    # ------------------------------------------------------------------
    @property
    def data_cursor(self) -> int:
        """Address the next appended data word will occupy.

        Lets callers precompute absolute addresses for self-referential
        data (e.g. AST nodes holding pointers to other nodes) before
        emitting the table.
        """
        return self._data_cursor

    def data_word(self, value: Union[int, float, str], address: Optional[int] = None) -> int:
        """Place one word in the data segment and return its address.

        ``value`` may be a label name, in which case the resolved code
        address is stored (this is how jump-table entries are built).
        Without ``address`` the word is appended at the data cursor.
        """
        if address is None:
            address = self._data_cursor
            self._data_cursor += INSTRUCTION_BYTES
        else:
            self._data_cursor = max(self._data_cursor, address + INSTRUCTION_BYTES)
        if isinstance(value, str):
            self._data[address] = 0
            self._fixups.append(_Fixup(label=value, data_address=address))
        else:
            self._data[address] = value
        return address

    def data_table(self, values: Sequence[Union[int, float, str]]) -> int:
        """Place a contiguous table of words; return the base address.

        Used for jump tables (sequences of label names), token scripts,
        ASTs, and any other initialised guest data.
        """
        base = self._data_cursor
        for value in values:
            self.data_word(value)
        return base

    def data_zeros(self, n_words: int) -> int:
        """Reserve ``n_words`` zero-initialised words; return the base."""
        base = self._data_cursor
        self._data_cursor += n_words * INSTRUCTION_BYTES
        return base

    # ------------------------------------------------------------------
    # Instruction emission
    # ------------------------------------------------------------------
    def emit(self, op: Op, rd: int = -1, rs1: int = -1, rs2: int = -1,
             imm: int = 0, target: Optional[LabelRef] = None) -> int:
        """Emit one instruction; return its address."""
        address = self.here
        # Validate before recording the fixup: a failed emit must not leave
        # a dangling fixup pointing at whatever instruction comes next.
        validate_register(rd, allow_unused=True)
        validate_register(rs1, allow_unused=True)
        validate_register(rs2, allow_unused=True)
        resolved_imm = imm
        if target is not None:
            if isinstance(target, str):
                self._fixups.append(_Fixup(label=target, code_index=len(self._code)))
                resolved_imm = 0
            else:
                resolved_imm = int(target)
        self._code.append(Instruction(op=op, rd=rd, rs1=rs1, rs2=rs2, imm=resolved_imm))
        return address

    # ALU ---------------------------------------------------------------
    def add(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.ADD, rd=rd, rs1=rs1, rs2=rs2)

    def sub(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.SUB, rd=rd, rs1=rs1, rs2=rs2)

    def and_(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.AND, rd=rd, rs1=rs1, rs2=rs2)

    def or_(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.OR, rd=rd, rs1=rs1, rs2=rs2)

    def xor(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.XOR, rd=rd, rs1=rs1, rs2=rs2)

    def slt(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.SLT, rd=rd, rs1=rs1, rs2=rs2)

    def addi(self, rd: int, rs1: int, imm: int) -> int:
        return self.emit(Op.ADDI, rd=rd, rs1=rs1, imm=imm)

    def li(self, rd: int, imm: Union[int, str]) -> int:
        """Load immediate; ``imm`` may be a label (loads its address)."""
        if isinstance(imm, str):
            return self.emit(Op.LI, rd=rd, target=imm)
        return self.emit(Op.LI, rd=rd, imm=imm)

    def mov(self, rd: int, rs1: int) -> int:
        return self.emit(Op.ADD, rd=rd, rs1=rs1, rs2=0)

    def mul(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.MUL, rd=rd, rs1=rs1, rs2=rs2)

    def div(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.DIV, rd=rd, rs1=rs1, rs2=rs2)

    def mod(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.MOD, rd=rd, rs1=rs1, rs2=rs2)

    def fadd(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.FADD, rd=rd, rs1=rs1, rs2=rs2)

    def fsub(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.FSUB, rd=rd, rs1=rs1, rs2=rs2)

    def fmul(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.FMUL, rd=rd, rs1=rs1, rs2=rs2)

    def fdiv(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.FDIV, rd=rd, rs1=rs1, rs2=rs2)

    def shl(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.SHL, rd=rd, rs1=rs1, rs2=rs2)

    def shr(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.SHR, rd=rd, rs1=rs1, rs2=rs2)

    def shli(self, rd: int, rs1: int, imm: int) -> int:
        return self.emit(Op.SHLI, rd=rd, rs1=rs1, imm=imm)

    def shri(self, rd: int, rs1: int, imm: int) -> int:
        return self.emit(Op.SHRI, rd=rd, rs1=rs1, imm=imm)

    def andi(self, rd: int, rs1: int, imm: int) -> int:
        return self.emit(Op.ANDI, rd=rd, rs1=rs1, imm=imm)

    def xori(self, rd: int, rs1: int, imm: int) -> int:
        return self.emit(Op.XORI, rd=rd, rs1=rs1, imm=imm)

    # Memory --------------------------------------------------------------
    def load(self, rd: int, rs1: int, imm: int = 0) -> int:
        return self.emit(Op.LOAD, rd=rd, rs1=rs1, imm=imm)

    def store(self, rs2: int, rs1: int, imm: int = 0) -> int:
        """mem[rs1 + imm] = rs2."""
        return self.emit(Op.STORE, rs1=rs1, rs2=rs2, imm=imm)

    # Control -------------------------------------------------------------
    def beq(self, rs1: int, rs2: int, target: LabelRef) -> int:
        return self.emit(Op.BEQ, rs1=rs1, rs2=rs2, target=target)

    def bne(self, rs1: int, rs2: int, target: LabelRef) -> int:
        return self.emit(Op.BNE, rs1=rs1, rs2=rs2, target=target)

    def blt(self, rs1: int, rs2: int, target: LabelRef) -> int:
        return self.emit(Op.BLT, rs1=rs1, rs2=rs2, target=target)

    def bge(self, rs1: int, rs2: int, target: LabelRef) -> int:
        return self.emit(Op.BGE, rs1=rs1, rs2=rs2, target=target)

    def jmp(self, target: LabelRef) -> int:
        return self.emit(Op.JMP, target=target)

    def call(self, target: LabelRef) -> int:
        return self.emit(Op.CALL, target=target)

    def callr(self, rs1: int) -> int:
        return self.emit(Op.CALLR, rs1=rs1)

    def ret(self) -> int:
        return self.emit(Op.RET)

    def jr(self, rs1: int) -> int:
        return self.emit(Op.JR, rs1=rs1)

    def halt(self) -> int:
        return self.emit(Op.HALT)

    # ------------------------------------------------------------------
    # Structured switch
    # ------------------------------------------------------------------
    def switch_table(self, labels: Sequence[str], stride: int = 1,
                     offset: int = 0, base: Optional[int] = None) -> SwitchTable:
        """Describe (and, by default, allocate) a dispatch table.

        With no ``base`` the labels are placed in the data segment exactly
        as :meth:`data_table` would, so the data layout is independent of
        the lowering later chosen for the switch.  Passing ``base`` wraps
        an already-emitted (possibly interleaved) table: case ``i`` then
        lives at word index ``i * stride + offset`` of that table.
        """
        if not labels:
            raise BuilderError("switch table needs at least one case label")
        if base is None:
            if stride != 1 or offset != 0:
                raise BuilderError(
                    "strided switch tables must wrap an existing base"
                )
            base = self.data_table(list(labels))
        return SwitchTable(
            base=base, labels=tuple(labels), stride=stride, offset=offset
        )

    def switch(self, selector: int, table: SwitchTable, *,
               kind: str = "jump", default: Optional[str] = None,
               weights: Optional[Sequence[float]] = None,
               t_addr: int = 1, t_handler: int = 2,
               stem: str = "sw") -> SwitchSite:
        """Emit a structured N-way dispatch on ``selector``.

        The control-flow shape is chosen by the builder's active lowering
        pass (see :mod:`repro.guest.lowering`): a jump table, a balanced
        compare-and-branch tree, or a density-clustered hybrid.  ``kind``
        selects jump dispatch (``jr``-style, control never returns here)
        or call dispatch (``callr``-style, every handler returns and
        control continues after the switch).  ``weights`` are optional
        relative case frequencies that density-based lowerings may use;
        they must come from the workload *spec*, never from its RNG, so
        that the lowering stays a pure function of the spec.  ``default``
        names a label that out-of-range selectors branch to; ``None``
        (the norm for generated workloads, whose selectors are in range
        by construction) emits no bounds check, which keeps the
        ``jump_table`` lowering bit-identical to the classic inline
        dispatch sequence.
        """
        if kind not in ("jump", "call"):
            raise BuilderError(f"unknown switch kind {kind!r}")
        validate_register(selector)
        validate_register(t_addr)
        validate_register(t_handler)
        if weights is not None and len(weights) != table.n_cases:
            raise BuilderError(
                f"switch got {len(weights)} weights for {table.n_cases} cases"
            )
        from repro.guest.lowering import get_lowering

        site = SwitchSite(
            selector=selector,
            table=table,
            kind=kind,
            default=default,
            weights=tuple(weights) if weights is not None else None,
            lowering=self.lowering,
            t_addr=t_addr,
            t_handler=t_handler,
            stem=stem,
            start=self.here,
        )
        get_lowering(self.lowering).lower(self, site)
        site.end = self.here
        self.switch_sites.append(site)
        return site

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def build(self, entry: Union[str, int] = 0) -> GuestProgram:
        """Resolve all labels and return the finished program."""
        code = list(self._code)
        data = dict(self._data)
        for fixup in self._fixups:
            if fixup.label not in self._labels:
                raise BuilderError(f"undefined label {fixup.label!r}")
            address = self._labels[fixup.label]
            if fixup.code_index is not None:
                old = code[fixup.code_index]
                code[fixup.code_index] = Instruction(
                    op=old.op, rd=old.rd, rs1=old.rs1, rs2=old.rs2, imm=address
                )
            else:
                assert fixup.data_address is not None
                data[fixup.data_address] = address
        if isinstance(entry, str):
            if entry not in self._labels:
                raise BuilderError(f"undefined entry label {entry!r}")
            entry_address = self._labels[entry]
        else:
            entry_address = entry
        if code and code[-1].op not in (Op.HALT, Op.JMP, Op.RET, Op.JR):
            raise BuilderError(
                "program must end in HALT or an unconditional control transfer"
            )
        return GuestProgram(
            code=code,
            data=data,
            labels=dict(self._labels),
            data_base=self._data_base,
            entry=entry_address,
        )
