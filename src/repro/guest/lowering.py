"""Switch-lowering passes over the guest IR.

The paper's premise is that indirect-jump predictability is set by the
*shape* of the dispatch code the compiler emits; Menezes et al.
("Clustering case statements for indirect branch predictors", PAPERS.md)
show the compiler's half of that coin: one source ``switch`` can be
lowered as a dense jump table, a balanced if-else tree, or a
density-clustered hybrid of the two, with very different prediction
behavior.  This module is that compiler half for the guest IR: workloads
describe dispatch with :meth:`ProgramBuilder.switch` and a registered
:class:`LoweringPass` decides the control-flow shape.

Three lowerings ship by default:

``jump_table``
    The classic inline sequence (index scale, table load, ``jr``/
    ``callr``) — bit-identical to the historical
    ``workloads.support.emit_dispatch`` emission, so default traces are
    unchanged by the refactor.

``if_tree``
    A balanced compare-and-branch tree: every indirect jump becomes
    ``log2(N)`` conditional branches plus a direct transfer.  Indirect
    mispredictions disappear entirely; conditional-branch pressure takes
    their place.

``clustered``
    The Menezes hybrid: contiguous runs of hot cases (by the spec's
    case-weight profile) dispatch through the jump table, while sparse
    cold cases become tree leaves; a balanced tree selects between the
    pieces.

Lowerings must be pure functions of the switch *site* (selector, cases,
weights from the workload spec): they never read the workload RNG, the
clock, or the environment — ``repro lint`` enforces this (the
``determinism`` scope and the ``lowering-registry`` check both cover
this module).

Registering a plugin lowering::

    @register_lowering
    class MyLowering(LoweringPass):
        name = "my_lowering"
        label = "my custom shape"
        spec_example = {"cases": 8, "kind": "jump"}

        def lower(self, b, site):
            ...  # emit code via the builder
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Tuple, Type, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.guest.builder import ProgramBuilder, SwitchSite


class LoweringPass:
    """Base class for switch lowerings.

    Subclasses define ``name`` (the registry key and the workload-facing
    knob value), ``label`` (a human-readable one-liner for listings), and
    ``spec_example`` (a tiny example site the registry lint lowers in a
    scratch builder to prove the pass emits well-formed code).
    """

    #: Registry key; the value of the ``lowering=`` workload knob.
    name: str = ""
    #: Human-readable description shown by ``repro workloads --lowerings``.
    label: str = ""
    #: Example switch shape, e.g. ``{"cases": 8, "kind": "jump"}``; the
    #: lowering-registry lint check lowers it in a scratch builder.
    spec_example: Dict[str, object] = {}

    def lower(self, b: "ProgramBuilder", site: "SwitchSite") -> None:
        """Emit code for ``site`` into ``b``.  Must be pure w.r.t. the site."""
        raise NotImplementedError


#: Registered lowerings by name.  Mutated only by :func:`register_lowering`.
_LOWERINGS: Dict[str, LoweringPass] = {}

_L = TypeVar("_L", bound=Type[LoweringPass])


def register_lowering(cls: _L) -> _L:
    """Class decorator: instantiate and register a lowering pass."""
    if not cls.name:
        raise ValueError(f"lowering {cls.__name__} has no name")
    if cls.name in _LOWERINGS:
        raise ValueError(f"duplicate lowering {cls.name!r}")
    _LOWERINGS[cls.name] = cls()
    return cls


def lowering_names() -> List[str]:
    """Sorted names of every registered lowering."""
    return sorted(_LOWERINGS)


def get_lowering(name: str) -> LoweringPass:
    """Look up a lowering pass by name."""
    try:
        return _LOWERINGS[name]
    except KeyError:
        available = ", ".join(sorted(_LOWERINGS))
        raise ValueError(
            f"unknown lowering {name!r} (available: {available})"
        ) from None


# ----------------------------------------------------------------------
# Shared emission primitives
# ----------------------------------------------------------------------
def emit_table_dispatch(b: "ProgramBuilder", table_base: int, selector: int,
                        *, kind: str = "jump", t_addr: int = 1,
                        t_handler: int = 2, stride: int = 1,
                        offset: int = 0) -> int:
    """Emit the classic inline table dispatch; return the jr/callr address.

    The dense form (``stride=1, offset=0``) and the strided form each
    reproduce the exact historical instruction sequences of the workloads
    (``support.emit_dispatch`` and the vortex vtable probe respectively),
    so the ``jump_table`` lowering is bit-identical to pre-framework
    emission.
    """
    if stride == 1 and offset == 0:
        b.shli(t_addr, selector, 2)
        b.li(t_handler, table_base)
        b.add(t_addr, t_addr, t_handler)
    else:
        b.li(t_addr, stride)
        b.mul(t_addr, selector, t_addr)
        b.addi(t_addr, t_addr, offset)
        b.shli(t_addr, t_addr, 2)
        b.addi(t_addr, t_addr, table_base)
    b.load(t_handler, t_addr)
    if kind == "call":
        return b.callr(t_handler)
    return b.jr(t_handler)


def _emit_default_guard(b: "ProgramBuilder", site: "SwitchSite") -> None:
    """Bounds-check the selector against [0, n_cases) when a default exists."""
    if site.default is None:
        return
    b.blt(site.selector, 0, site.default)
    b.li(site.t_addr, site.table.n_cases)
    b.bge(site.selector, site.t_addr, site.default)


def _emit_leaf(b: "ProgramBuilder", site: "SwitchSite", case: int,
               cont: str) -> None:
    """Emit the direct transfer for a single resolved case."""
    target = site.table.labels[case]
    if site.kind == "call":
        b.call(target)
        b.jmp(cont)
    else:
        b.jmp(target)


def _emit_search_tree(b: "ProgramBuilder", site: "SwitchSite",
                      pieces: List[Tuple[int, int]],
                      emit_piece: Callable[[Tuple[int, int]], None]) -> None:
    """Balanced binary search over index-ordered, disjoint case ranges.

    ``pieces`` are ``(lo, hi)`` inclusive selector ranges sorted by ``lo``;
    ``emit_piece`` emits the terminal code once the selector is known to
    fall inside one piece.  Internal nodes compare the selector against a
    boundary held in the site's scratch register.
    """
    if len(pieces) == 1:
        emit_piece(pieces[0])
        return
    mid = len(pieces) // 2
    boundary = pieces[mid][0]
    upper = b.unique_label(f"{site.stem}_ge{boundary}")
    b.li(site.t_addr, boundary)
    b.bge(site.selector, site.t_addr, upper)
    _emit_search_tree(b, site, pieces[:mid], emit_piece)
    b.label(upper)
    _emit_search_tree(b, site, pieces[mid:], emit_piece)


# ----------------------------------------------------------------------
# The three standard lowerings
# ----------------------------------------------------------------------
@register_lowering
class JumpTableLowering(LoweringPass):
    """Dense jump table: one indirect transfer per switch site."""

    name = "jump_table"
    label = "dense jump table (one jr/callr per site)"
    spec_example = {"cases": 8, "kind": "jump"}

    def lower(self, b: "ProgramBuilder", site: "SwitchSite") -> None:
        _emit_default_guard(b, site)
        site.indirect_sites.append(
            emit_table_dispatch(
                b, site.table.base, site.selector, kind=site.kind,
                t_addr=site.t_addr, t_handler=site.t_handler,
                stride=site.table.stride, offset=site.table.offset,
            )
        )


@register_lowering
class IfTreeLowering(LoweringPass):
    """Balanced compare-and-branch tree: zero indirect transfers."""

    name = "if_tree"
    label = "balanced if-else tree (no indirect jumps)"
    spec_example = {"cases": 8, "kind": "call"}

    def lower(self, b: "ProgramBuilder", site: "SwitchSite") -> None:
        _emit_default_guard(b, site)
        cont = b.unique_label(f"{site.stem}_done")
        pieces = [(case, case) for case in range(site.table.n_cases)]
        _emit_search_tree(
            b, site, pieces,
            lambda piece: _emit_leaf(b, site, piece[0], cont),
        )
        if site.kind == "call":
            b.label(cont)


#: Fraction of total case weight that counts as "hot" for clustering.
HOT_MASS = 0.85
#: Minimum contiguous hot-run length worth a table segment.
MIN_RUN = 3


@register_lowering
class ClusteredLowering(LoweringPass):
    """Density-clustered hybrid per Menezes et al.

    Cases are split by the spec's weight profile: the smallest set of
    cases covering :data:`HOT_MASS` of the total weight is *hot*.
    Contiguous hot runs of at least :data:`MIN_RUN` cases dispatch
    through the existing jump table (the selector still indexes the full
    table, so no extra data is allocated and the data layout matches the
    other lowerings); every other case becomes a direct tree leaf.  A
    balanced search tree routes the selector to its piece.  With no
    weights the cases are treated as uniform.
    """

    name = "clustered"
    label = "density-clustered hybrid (hot runs -> table, cold -> tree)"
    spec_example = {"cases": 8, "kind": "jump", "weights": [8, 4, 2, 1, 1, 1, 1, 1]}

    def lower(self, b: "ProgramBuilder", site: "SwitchSite") -> None:
        _emit_default_guard(b, site)
        n = site.table.n_cases
        weights = site.weights
        if weights is None or sum(weights) <= 0:
            weights = tuple(1.0 for _ in range(n))
        hot = self._hot_cases(weights)
        pieces = self._pieces(n, hot)
        cont = b.unique_label(f"{site.stem}_done")

        def emit_piece(piece: Tuple[int, int]) -> None:
            lo, hi = piece
            if lo == hi:
                _emit_leaf(b, site, lo, cont)
                return
            # A multi-case run dispatches through the full table; the
            # selector's own value indexes it, so no sub-table is needed.
            site.indirect_sites.append(
                emit_table_dispatch(
                    b, site.table.base, site.selector, kind=site.kind,
                    t_addr=site.t_addr, t_handler=site.t_handler,
                    stride=site.table.stride, offset=site.table.offset,
                )
            )
            if site.kind == "call":
                b.jmp(cont)

        _emit_search_tree(b, site, pieces, emit_piece)
        if site.kind == "call":
            b.label(cont)

    @staticmethod
    def _hot_cases(weights: Tuple[float, ...]) -> frozenset[int]:
        """The smallest case set covering HOT_MASS of the total weight."""
        total = sum(weights)
        order = sorted(range(len(weights)), key=lambda i: (-weights[i], i))
        hot = set()
        mass = 0.0
        for case in order:
            if mass >= HOT_MASS * total:
                break
            hot.add(case)
            mass += weights[case]
        return frozenset(hot)

    @staticmethod
    def _pieces(n: int, hot: frozenset[int]) -> List[Tuple[int, int]]:
        """Partition [0, n) into table runs and single-case leaves."""
        pieces: List[Tuple[int, int]] = []
        i = 0
        while i < n:
            if i in hot:
                j = i
                while j + 1 < n and j + 1 in hot:
                    j += 1
                if j - i + 1 >= MIN_RUN:
                    pieces.append((i, j))
                else:
                    pieces.extend((k, k) for k in range(i, j + 1))
                i = j + 1
            else:
                pieces.append((i, i))
                i += 1
        return pieces
