"""Disassembler for guest programs and traces.

Renders :class:`~repro.guest.isa.Instruction` objects, whole programs (with
label annotations), and dynamic trace windows in a conventional assembly
syntax.  Used by ``repro dump`` and invaluable when debugging workloads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.guest.isa import (
    INSTRUCTION_BYTES,
    GuestProgram,
    Instruction,
    Op,
)

if TYPE_CHECKING:  # circular at runtime: repro.trace imports repro.guest
    from repro.trace.trace import Trace

_THREE_REG = {Op.ADD: "add", Op.SUB: "sub", Op.AND: "and", Op.OR: "or",
              Op.XOR: "xor", Op.SLT: "slt", Op.MUL: "mul", Op.DIV: "div",
              Op.MOD: "mod", Op.FADD: "fadd", Op.FSUB: "fsub",
              Op.FMUL: "fmul", Op.FDIV: "fdiv", Op.SHL: "shl", Op.SHR: "shr"}
_TWO_REG_IMM = {Op.ADDI: "addi", Op.SHLI: "shli", Op.SHRI: "shri",
                Op.ANDI: "andi", Op.XORI: "xori"}
_BRANCH = {Op.BEQ: "beq", Op.BNE: "bne", Op.BLT: "blt", Op.BGE: "bge"}


def format_instruction(ins: Instruction,
                       labels: Optional[Dict[int, str]] = None) -> str:
    """Render one instruction; ``labels`` maps addresses to names."""
    def where(address: int) -> str:
        if labels and address in labels:
            return labels[address]
        return f"{address:#x}"

    op = ins.op
    if op in _THREE_REG:
        return f"{_THREE_REG[op]:6s} r{ins.rd}, r{ins.rs1}, r{ins.rs2}"
    if op in _TWO_REG_IMM:
        return f"{_TWO_REG_IMM[op]:6s} r{ins.rd}, r{ins.rs1}, {ins.imm}"
    if op in _BRANCH:
        return f"{_BRANCH[op]:6s} r{ins.rs1}, r{ins.rs2}, {where(ins.imm)}"
    if op is Op.LI:
        return f"li     r{ins.rd}, {ins.imm}"
    if op is Op.LOAD:
        return f"load   r{ins.rd}, [r{ins.rs1}+{ins.imm}]"
    if op is Op.STORE:
        return f"store  r{ins.rs2}, [r{ins.rs1}+{ins.imm}]"
    if op is Op.JMP:
        return f"jmp    {where(ins.imm)}"
    if op is Op.CALL:
        return f"call   {where(ins.imm)}"
    if op is Op.CALLR:
        return f"callr  r{ins.rs1}"
    if op is Op.JR:
        return f"jr     r{ins.rs1}"
    if op is Op.RET:
        return "ret"
    if op is Op.HALT:
        return "halt"
    raise ValueError(f"unknown opcode {op!r}")  # pragma: no cover


def disassemble_program(program: GuestProgram,
                        start: int = 0,
                        count: Optional[int] = None) -> str:
    """Disassemble ``count`` instructions from address ``start``.

    Labels from the program's symbol table annotate their addresses and
    are used symbolically in branch operands.
    """
    by_address = {address: name for name, address in program.labels.items()}
    lines: List[str] = []
    first = start // INSTRUCTION_BYTES
    last = len(program.code) if count is None else min(
        len(program.code), first + count
    )
    for index in range(first, last):
        address = index * INSTRUCTION_BYTES
        if address in by_address:
            lines.append(f"{by_address[address]}:")
        rendered = format_instruction(program.code[index], by_address)
        lines.append(f"  {address:#07x}  {rendered}")
    return "\n".join(lines)


def format_trace_window(trace: "Trace", start: int = 0, count: int = 32,
                        labels: Optional[Dict[int, str]] = None) -> str:
    """Render a window of dynamic trace rows with branch annotations."""
    lines: List[str] = []
    end = min(len(trace), start + count)
    for i in range(start, end):
        record = trace.record(i)
        kind = record.branch_kind
        annotation = ""
        if kind.is_branch:
            arrow = "taken" if record.taken else "not-taken"
            destination = (labels or {}).get(record.target,
                                             f"{record.target:#x}")
            annotation = f"   ; {kind.name.lower()} {arrow} -> {destination}"
        lines.append(f"{i:>8}  {record.pc:#07x}  "
                     f"{record.instr_class.name:<8}{annotation}")
    return "\n".join(lines)
