"""Integrated cycle-level simulation: predictors driven *speculatively*.

The trace-driven harness (`repro.predictors.simulate`) updates history
registers in retire order, which is exact only when no prediction is in
flight while another resolves.  A real HPS-class machine predicts with
*speculative* history — each in-flight branch's predicted outcome is
shifted in at fetch, and checkpoint repair restores the registers when a
misprediction resolves (the paper's §4.1 machine keeps checkpoints per
branch for precise repair).

This module couples the fetch engine to the cycle-stepped core:

* at **fetch**, a branch is predicted with the current speculative history;
  the registers are then updated with the *predicted* outcome and a
  checkpoint is attached to the branch;
* at **resolve** (execution complete), a mispredicted branch restores its
  checkpoint and applies the actual outcome; fetch restarts the next cycle
  on the correct path;
* at **retire**, the prediction *tables* (2-bit counters, BTB entries,
  target-cache entries) train on actual outcomes, in order.

Because the harness is trace-driven, wrong-path instructions are not
fetched; the modelled speculation effect is history pollution by in-flight
predicted branches, which is exactly what the retire-vs-speculative
ablation quantifies.  The RAS is updated speculatively without repair (a
common real-hardware simplification; its mispredictions are counted).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.guest.isa import INSTRUCTION_BYTES, BranchKind, InstrClass
from repro.pipeline.caches import memory_penalties
from repro.pipeline.config import MachineConfig
from repro.predictors.engine import EngineConfig, FetchEngine, PredictionStats
from repro.trace.trace import Trace


@dataclass
class IntegratedResult:
    """Cycles plus the prediction statistics of one integrated run."""

    cycles: int
    stats: PredictionStats

    @property
    def ipc(self) -> float:
        return (self.stats.instructions / self.cycles) if self.cycles else 0.0


@dataclass
class _Slot:
    index: int
    min_issue: int
    producers: List["_Slot"]
    latency: int
    # branch bookkeeping (None for non-branches)
    kind: Optional[BranchKind] = None
    mispredicted: bool = False
    checkpoint: Optional[Tuple[int, int]] = None  # (pattern, path) values
    actual_taken: bool = False
    actual_target: int = 0
    next_pc: int = 0
    tc_history: int = 0
    btb_entry_target: Optional[int] = None
    issued: bool = False
    complete: Optional[int] = None
    resolved: bool = False

    def operands_ready(self, cycle: int) -> bool:
        for producer in self.producers:
            if producer.complete is None or producer.complete > cycle:
                return False
        return True


class IntegratedCore:
    """Cycle-stepped core with speculative fetch-time prediction."""

    def __init__(self, trace: Trace, engine_config: EngineConfig,
                 machine: MachineConfig,
                 mem_penalty: Optional["npt.NDArray[Any]"] = None) -> None:
        self.trace = trace
        self.machine = machine
        self.engine = FetchEngine(engine_config)
        if mem_penalty is None:
            mem_penalty = memory_penalties(trace, machine)
        self._penalty = mem_penalty.tolist()
        self._classes = trace.instr_class.tolist()
        self._kinds = trace.branch_kind.tolist()
        self._pcs = trace.pc.tolist()
        self._takens = trace.taken.tolist()
        self._targets = trace.target.tolist()
        self._next_pcs = trace.next_pc_array().tolist()
        self._src1 = trace.src1.tolist()
        self._src2 = trace.src2.tolist()
        self._dst = trace.dst.tolist()
        self._mem = trace.mem_addr.tolist()
        self.stats = PredictionStats(instructions=len(trace))

    # ------------------------------------------------------------------
    # Speculative fetch-time prediction
    # ------------------------------------------------------------------
    def _predict_at_fetch(self, slot: _Slot) -> None:
        """Predict the branch in ``slot`` and speculatively update history."""
        engine = self.engine
        index = slot.index
        pc = self._pcs[index]
        kind = BranchKind(self._kinds[index])
        actual_taken = bool(self._takens[index])
        actual_target = self._targets[index]
        next_pc = self._next_pcs[index]
        fallthrough = pc + INSTRUCTION_BYTES

        slot.kind = kind
        slot.actual_taken = actual_taken
        slot.actual_target = actual_target
        slot.next_pc = next_pc
        slot.checkpoint = (engine.pattern_history.value,
                           engine.path_history.value)

        entry = engine.btb.lookup(pc)
        predicted_taken = actual_taken  # non-conditionals: always taken
        if entry is None:
            predicted = fallthrough
            predicted_taken = False
        else:
            entry_kind = entry.kind
            slot.btb_entry_target = entry.target
            if entry_kind is BranchKind.COND_DIRECT:
                predicted_taken = engine.direction.predict(
                    pc, engine.pattern_history.value
                )
                predicted = entry.target if predicted_taken else fallthrough
            elif entry_kind is BranchKind.RETURN:
                popped = engine.ras.pop()
                predicted = popped if popped is not None else fallthrough
            elif entry_kind.is_predicted_by_target_cache and engine.target_cache is not None:
                slot.tc_history = engine.target_cache_history(pc)
                guess = engine.target_cache.predict(pc, slot.tc_history)
                predicted = guess if guess is not None else entry.target
            else:
                predicted = entry.target
            if entry_kind.is_call:
                engine.ras.push(entry.fallthrough)

        slot.mispredicted = predicted != next_pc

        # ---- speculative history update with the *predicted* outcome ----
        if kind is BranchKind.COND_DIRECT:
            engine.pattern_history.update(predicted_taken)
            predicted_redirect = predicted_taken
        else:
            # non-conditional branches always redirect, even when the
            # predicted target happens to equal the fall-through address
            # (a dispatch handler laid out right after the jump)
            predicted_redirect = entry is not None
        engine.path_history.update(kind, predicted,
                                   redirected=predicted_redirect)

    def _resolve(self, slot: _Slot) -> None:
        """Checkpoint repair: fix the history registers at resolution."""
        engine = self.engine
        if slot.mispredicted and slot.checkpoint is not None:
            pattern, path = slot.checkpoint
            engine.pattern_history.restore(pattern)
            engine.path_history.restore(path)
            kind = slot.kind
            if kind is BranchKind.COND_DIRECT:
                engine.pattern_history.update(slot.actual_taken)
            engine.path_history.update(kind, slot.next_pc,
                                       redirected=slot.actual_taken)
        slot.resolved = True

    def _retire(self, slot: _Slot) -> None:
        """Train the prediction tables on the actual outcome, in order."""
        engine = self.engine
        kind = slot.kind
        if kind is None:
            return
        if not slot.resolved:
            # the branch completed and retired within the same cycle, so
            # the per-cycle resolve scan never saw it: repair here
            self._resolve(slot)
        index = slot.index
        pc = self._pcs[index]
        counter = self.stats.counters(kind)
        counter.executed += 1
        if slot.mispredicted:
            counter.mispredicted += 1
        if kind is BranchKind.COND_DIRECT:
            # counters train with the history as of prediction (the
            # checkpoint), matching the fetch-time index
            history = slot.checkpoint[0] if slot.checkpoint else 0
            engine.direction.update(pc, history, slot.actual_taken)
        if kind.is_predicted_by_target_cache:
            engine.per_address_history.update(pc, slot.actual_target)
            if engine.target_cache is not None:
                engine.target_cache.update(pc, slot.tc_history,
                                           slot.actual_target)
        if kind is BranchKind.RETURN and slot.btb_entry_target is None:
            engine.ras.pop()  # keep pairing when the BTB missed the return
        if kind.is_call and slot.btb_entry_target is None:
            engine.ras.push(pc + INSTRUCTION_BYTES)
        stored_correct = slot.btb_entry_target == slot.actual_target
        engine.btb.update(pc, kind, slot.actual_target,
                          predicted_target_correct=stored_correct)

    # ------------------------------------------------------------------
    def run(self) -> IntegratedResult:
        machine = self.machine
        n = len(self.trace)
        window: Deque[int] = deque()
        last_writer: Dict[int, _Slot] = {}
        last_store: Dict[int, _Slot] = {}
        load_class = int(InstrClass.LOAD)
        store_class = int(InstrClass.STORE)
        not_branch = int(BranchKind.NOT_BRANCH)

        next_fetch = 0
        stall_slot: Optional[_Slot] = None
        stalled_until = -1
        retired = 0
        cycle = 0

        while retired < n:
            # retire completed head-of-window instructions in order
            retired_now = 0
            while (window and retired_now < machine.retire_width
                   and window[0].complete is not None
                   and window[0].complete <= cycle):
                slot = window.popleft()
                self._retire(slot)
                retired += 1
                retired_now += 1

            # issue/execute; resolve branches as they complete
            for slot in window:
                if (not slot.issued and slot.min_issue <= cycle
                        and slot.operands_ready(cycle)):
                    slot.issued = True
                    slot.complete = cycle + slot.latency
                if (slot.kind is not None and not slot.resolved
                        and slot.complete is not None
                        and slot.complete <= cycle):
                    self._resolve(slot)

            # fetch along the (correct-path) trace
            if cycle > stalled_until:
                fetched = 0
                while (fetched < machine.fetch_width and next_fetch < n
                       and len(window) < machine.window):
                    index = next_fetch
                    producers = []
                    s = self._src1[index]
                    if s > 0 and s in last_writer:
                        producers.append(last_writer[s])
                    s = self._src2[index]
                    if s > 0 and s in last_writer:
                        producers.append(last_writer[s])
                    cls = self._classes[index]
                    if cls == load_class:
                        store = last_store.get(self._mem[index])
                        if store is not None:
                            producers.append(store)
                    slot = _Slot(
                        index=index,
                        min_issue=cycle + machine.frontend_depth,
                        producers=producers,
                        latency=machine.latency_of(cls) + self._penalty[index],
                    )
                    if self._kinds[index] != not_branch:
                        self._predict_at_fetch(slot)
                    d = self._dst[index]
                    if d > 0:
                        last_writer[d] = slot
                    elif cls == store_class:
                        last_store[self._mem[index]] = slot
                    window.append(slot)
                    next_fetch += 1
                    fetched += 1
                    if slot.mispredicted:
                        stalled_until = 1 << 62
                        stall_slot = slot
                        break

            if stall_slot is not None and stall_slot.complete is not None:
                stalled_until = max(stall_slot.complete, cycle)
                stall_slot = None

            cycle += 1
            if cycle > 1000 * n + 10_000:  # liveness guard
                raise RuntimeError("integrated core failed to make progress")

        self.stats.btb_lookups = self.engine.btb.lookups
        self.stats.btb_hits = self.engine.btb.hits
        return IntegratedResult(cycles=cycle, stats=self.stats)


def run_integrated(trace: Trace, engine_config: EngineConfig,
                   machine: Optional[MachineConfig] = None,
                   mem_penalty: Optional["npt.NDArray[Any]"] = None) -> IntegratedResult:
    """Run the speculative integrated simulation end to end."""
    return IntegratedCore(
        trace, engine_config, machine or MachineConfig(), mem_penalty
    ).run()
