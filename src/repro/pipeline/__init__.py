"""HPS-like out-of-order timing models.

The paper measures "reduction in execution time" on a simulated HPS
machine: wide-issue, out-of-order (Tomasulo scheduling), checkpoint repair
on branch mispredictions, perfect I-cache, 16KB data cache with a 10-cycle
memory, and the per-class execution latencies of Table 3.

Two models share one :class:`~repro.pipeline.config.MachineConfig`:

* :mod:`~repro.pipeline.timing` — a fast one-pass dataflow scheduler used
  for the paper's big parameter sweeps (every instruction is visited once;
  its issue time is the max of its fetch availability, its operands'
  completion times, and window/width constraints);
* :mod:`~repro.pipeline.core` — a cycle-stepped model with explicit fetch /
  issue / execute / retire stages and checkpoint-style recovery, used to
  cross-validate the fast model and for the pipeline example.

Both are trace-driven from the *correct-path* trace: a misprediction stalls
fetch until the branch resolves (wrong-path instructions are not executed,
the standard trace-driven approximation).
"""

from repro.pipeline.caches import DataCache, memory_penalties
from repro.pipeline.config import LATENCIES, DataCacheConfig, MachineConfig
from repro.pipeline.core import CycleCore, run_cycle_core
from repro.pipeline.integrated import IntegratedCore, IntegratedResult, run_integrated
from repro.pipeline.timing import TimingResult, execution_cycles, run_timing

__all__ = [
    "LATENCIES",
    "DataCacheConfig",
    "MachineConfig",
    "DataCache",
    "memory_penalties",
    "TimingResult",
    "execution_cycles",
    "run_timing",
    "CycleCore",
    "run_cycle_core",
    "IntegratedCore",
    "IntegratedResult",
    "run_integrated",
]
