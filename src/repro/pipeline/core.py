"""Cycle-stepped out-of-order core with checkpoint-style recovery.

The faithful (and slow) companion to :mod:`repro.pipeline.timing`: an
explicit per-cycle loop with fetch, dispatch-into-window, dataflow issue,
execution countdown and in-order retirement.  Used by the test suite to
cross-validate the one-pass model and by ``examples/pipeline_speedup.py``.

Semantics mirrored from the paper's §4.1 machine:

* fetch ``fetch_width`` per cycle along the predicted path while the
  window has space;
* a mispredicted branch stops fetch at the branch; "once a branch
  misprediction is determined, instructions from the correct path are
  fetched in the next cycle" (checkpoint repair);
* unlimited homogeneous functional units — every instruction whose
  operands are ready issues;
* in-order retirement, ``retire_width`` per cycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

import numpy as np
import numpy.typing as npt

from repro.guest.isa import InstrClass
from repro.pipeline.caches import memory_penalties
from repro.pipeline.config import MachineConfig
from repro.trace.trace import Trace


@dataclass
class _Slot:
    """One window entry."""

    index: int
    min_issue: int           # fetch + frontend depth
    producers: List["_Slot"]
    latency: int
    is_mispredicted_branch: bool
    issued: bool = False
    complete: Optional[int] = None

    def operands_ready(self, cycle: int) -> bool:
        for producer in self.producers:
            if producer.complete is None or producer.complete > cycle:
                return False
        return True


class CycleCore:
    """Cycle-stepped trace-driven core."""

    def __init__(self, trace: Trace, machine: MachineConfig,
                 mispredict_mask: Optional["npt.NDArray[Any]"] = None,
                 mem_penalty: Optional["npt.NDArray[Any]"] = None) -> None:
        self.trace = trace
        self.machine = machine
        n = len(trace)
        if mem_penalty is None:
            mem_penalty = memory_penalties(trace, machine)
        if mispredict_mask is None:
            mispredict_mask = np.zeros(n, dtype=bool)
        self._classes = trace.instr_class.tolist()
        self._src1 = trace.src1.tolist()
        self._src2 = trace.src2.tolist()
        self._dst = trace.dst.tolist()
        self._mem = trace.mem_addr.tolist()
        self._penalty = mem_penalty.tolist()
        self._mispredicted = mispredict_mask.tolist()
        self.cycles = 0
        self.retired = 0

    def run(self) -> int:
        """Execute to completion; returns total cycles."""
        machine = self.machine
        n = len(self.trace)
        window: Deque[int] = deque()
        last_writer: Dict[int, _Slot] = {}
        last_store: Dict[int, _Slot] = {}
        load_class = int(InstrClass.LOAD)
        store_class = int(InstrClass.STORE)

        next_fetch = 0              # next trace index to fetch
        stalled_until = -1          # fetch blocked through this cycle
        stall_slot: Optional[_Slot] = None  # unresolved mispredicted branch
        cycle = 0

        while self.retired < n:
            # ---- retire (completions from previous cycles) --------------
            retired_now = 0
            while (window and retired_now < machine.retire_width
                   and window[0].complete is not None
                   and window[0].complete <= cycle):
                window.popleft()
                self.retired += 1
                retired_now += 1

            # ---- issue / execute ----------------------------------------
            for slot in window:
                if (not slot.issued and slot.min_issue <= cycle
                        and slot.operands_ready(cycle)):
                    slot.issued = True
                    slot.complete = cycle + slot.latency

            # ---- fetch ----------------------------------------------------
            if cycle > stalled_until:
                fetched = 0
                while (fetched < machine.fetch_width and next_fetch < n
                       and len(window) < machine.window):
                    index = next_fetch
                    producers = []
                    s = self._src1[index]
                    if s > 0 and s in last_writer:
                        producers.append(last_writer[s])
                    s = self._src2[index]
                    if s > 0 and s in last_writer:
                        producers.append(last_writer[s])
                    cls = self._classes[index]
                    if cls == load_class:
                        store = last_store.get(self._mem[index])
                        if store is not None:
                            producers.append(store)
                    slot = _Slot(
                        index=index,
                        min_issue=cycle + machine.frontend_depth,
                        producers=producers,
                        latency=(machine.latency_of(cls) + self._penalty[index]),
                        is_mispredicted_branch=self._mispredicted[index],
                    )
                    d = self._dst[index]
                    if d > 0:
                        last_writer[d] = slot
                    elif cls == store_class:
                        last_store[self._mem[index]] = slot
                    window.append(slot)
                    next_fetch += 1
                    fetched += 1
                    if slot.is_mispredicted_branch:
                        # stop fetching until this branch resolves; its
                        # resolution cycle is unknown yet, so block fetch
                        # indefinitely and release below once it completes
                        stalled_until = 1 << 62
                        stall_slot = slot
                        break

            # ---- release the fetch stall when the branch resolves --------
            if stall_slot is not None and stall_slot.complete is not None:
                # correct-path fetch restarts the cycle after resolution
                stalled_until = max(stall_slot.complete, cycle)
                stall_slot = None

            cycle += 1
            if cycle > 1000 * n + 10_000:  # liveness guard
                raise RuntimeError("cycle core failed to make progress")

        self.cycles = cycle
        return cycle


def run_cycle_core(trace: Trace, machine: MachineConfig,
                   mispredict_mask: Optional["npt.NDArray[Any]"] = None,
                   mem_penalty: Optional["npt.NDArray[Any]"] = None) -> int:
    """Run the cycle-stepped core; returns total cycles."""
    return CycleCore(trace, machine, mispredict_mask, mem_penalty).run()
