"""Data-cache model and the per-trace memory-penalty precomputation.

The data cache is predictor-independent: whether a branch was mispredicted
does not change which loads hit (wrong-path pollution is out of scope for
this trace-driven model).  Experiments therefore compute the per-load
penalty array once per trace with :func:`memory_penalties` and reuse it
across every predictor configuration — this is what makes the paper's big
execution-time sweeps tractable.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import numpy.typing as npt

from repro.guest.isa import InstrClass
from repro.pipeline.config import DataCacheConfig, MachineConfig
from repro.trace.trace import Trace


class DataCache:
    """Set-associative LRU data cache; :meth:`access` returns hit/miss."""

    def __init__(self, config: DataCacheConfig = DataCacheConfig()) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self._set_mask = self.n_sets - 1
        self._set_bits = self.n_sets.bit_length() - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        self._assoc = config.assoc
        # Insertion-ordered dict per set: tag -> True; first key is LRU.
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(self.n_sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Reference ``address``; returns True on hit.  Allocate on miss
        (write-allocate: loads and stores are treated alike)."""
        self.accesses += 1
        line = address >> self._line_shift
        bucket = self._sets[line & self._set_mask]
        tag = line >> self._set_bits
        if tag in bucket:
            del bucket[tag]
            bucket[tag] = True
            return True
        self.misses += 1
        if len(bucket) >= self._assoc:
            del bucket[next(iter(bucket))]
        bucket[tag] = True
        return False

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def memory_penalties(trace: Trace, machine: MachineConfig) -> "npt.NDArray[np.float64]":
    """Per-instruction extra latency (cycles) from data-cache misses.

    Returns an int32 array aligned to the trace: zero for non-memory
    instructions and cache hits, ``machine.memory_latency`` for misses.
    """
    penalties = np.zeros(len(trace), dtype=np.int32)
    is_mem = (trace.instr_class == int(InstrClass.LOAD)) | (
        trace.instr_class == int(InstrClass.STORE)
    )
    rows = np.flatnonzero(is_mem)
    addresses = trace.mem_addr[rows].tolist()
    cache = DataCache(machine.dcache)
    access = cache.access
    latency = machine.memory_latency
    for row, address in zip(rows.tolist(), addresses):
        if not access(address):
            penalties[row] = latency
    return penalties
