"""Fast one-pass dataflow timing model.

Visits each trace row once in program order and computes its issue,
completion and retire cycles from:

* **fetch availability** — instructions are fetched ``fetch_width`` per
  cycle along the predicted path; a mispredicted branch (per the mask from
  :func:`repro.predictors.engine.simulate`) stalls fetch until the branch
  resolves, restarting the cycle after (checkpoint repair);
* **operand readiness** — true register dataflow from the trace's
  src/dst fields, plus store-to-load forwarding through a last-writer map
  of memory addresses;
* **window occupancy** — an instruction cannot enter the machine until the
  instruction ``window`` slots ahead of it has retired;
* **retire bandwidth** — in-order retirement, ``retire_width`` per cycle.

This is the standard one-pass approximation of an out-of-order core (no
wrong-path execution, unlimited functional units as in the paper's §4.1
"each functional unit can execute instructions from any of the instruction
classes").  ``repro.pipeline.core`` cross-validates it cycle-by-cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np
import numpy.typing as npt

from repro.guest.isa import NUM_REGISTERS, InstrClass
from repro.pipeline.caches import memory_penalties
from repro.pipeline.config import MachineConfig
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TimingResult:
    """Outcome of one timing run."""

    cycles: int
    instructions: int
    #: fetch cycles lost to branch-misprediction redirects
    mispredict_stall_cycles: int
    #: loads/stores that missed in the data cache
    dcache_misses: int
    #: cycles instructions spent waiting for a window slot (sum over
    #: instructions of dispatch delay; an approximate CPI-stack component)
    window_stall_cycles: int = 0
    #: total extra memory latency injected by data-cache misses (upper
    #: bound on the memory CPI-stack component — overlap is not deducted)
    memory_penalty_cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def summary(self) -> str:
        """One-line report with the approximate stall attribution."""
        return (
            f"{self.cycles} cycles, IPC {self.ipc:.2f} "
            f"(mispredict stalls {self.mispredict_stall_cycles}, "
            f"window stalls {self.window_stall_cycles}, "
            f"memory penalty {self.memory_penalty_cycles} over "
            f"{self.dcache_misses} misses)"
        )


def run_timing(trace: Trace, machine: MachineConfig,
               mispredict_mask: Optional["npt.NDArray[Any]"] = None,
               mem_penalty: Optional["npt.NDArray[Any]"] = None) -> TimingResult:
    """Schedule ``trace`` on ``machine``; returns cycle counts.

    ``mispredict_mask`` marks instructions whose next-pc the fetch engine
    mispredicted (``None`` = perfect prediction).  ``mem_penalty`` is the
    per-row extra memory latency from :func:`memory_penalties`; it is
    computed here when not supplied (pass it explicitly when sweeping many
    predictor configurations over one trace).
    """
    n = len(trace)
    if n == 0:
        return TimingResult(cycles=0, instructions=0,
                            mispredict_stall_cycles=0, dcache_misses=0)
    if mem_penalty is None:
        mem_penalty = memory_penalties(trace, machine)
    if mispredict_mask is None:
        mispredict_mask = np.zeros(n, dtype=bool)

    classes = trace.instr_class.tolist()
    src1 = trace.src1.tolist()
    src2 = trace.src2.tolist()
    dst = trace.dst.tolist()
    mem_addrs = trace.mem_addr.tolist()
    penalties = mem_penalty.tolist()
    mispredicted = mispredict_mask.tolist()
    latency_by_class = [machine.latency_of(c) for c in range(len(InstrClass))]
    load_class = int(InstrClass.LOAD)
    store_class = int(InstrClass.STORE)

    width = machine.fetch_width
    retire_width = machine.retire_width
    window = machine.window
    frontend = machine.frontend_depth

    reg_ready = [0] * NUM_REGISTERS
    store_ready: Dict[int, int] = {}
    retire_ring = [0] * window        # retire cycle of instruction i-window
    retire_recent = [0] * retire_width

    fetch_cycle = 0
    fetch_slots = 0
    redirect_at = -1                  # fetch restarts at this cycle
    mispredict_stalls = 0
    window_stalls = 0
    memory_penalty_total = 0
    dcache_misses = 0
    last_retire = 0

    for i in range(n):
        # ---- fetch ----------------------------------------------------
        if redirect_at >= 0:
            if redirect_at > fetch_cycle:
                mispredict_stalls += redirect_at - fetch_cycle
                fetch_cycle = redirect_at
                fetch_slots = 0
            redirect_at = -1
        if fetch_slots >= width:
            fetch_cycle += 1
            fetch_slots = 0
        fetch_slots += 1

        # ---- dispatch: window occupancy -------------------------------
        window_free = retire_ring[i % window]  # retire time of i-window
        dispatch = fetch_cycle + frontend
        if window_free > dispatch:
            window_stalls += window_free - dispatch
            dispatch = window_free

        # ---- operands --------------------------------------------------
        ready = dispatch
        s = src1[i]
        if s > 0 and reg_ready[s] > ready:
            ready = reg_ready[s]
        s = src2[i]
        if s > 0 and reg_ready[s] > ready:
            ready = reg_ready[s]
        cls = classes[i]
        penalty = penalties[i]
        if penalty:
            dcache_misses += 1
            memory_penalty_total += penalty
        if cls == load_class:
            forwarded = store_ready.get(mem_addrs[i])
            if forwarded is not None and forwarded > ready:
                ready = forwarded

        # ---- execute ---------------------------------------------------
        complete = ready + latency_by_class[cls] + penalty
        d = dst[i]
        if d > 0:
            reg_ready[d] = complete
        elif cls == store_class:
            store_ready[mem_addrs[i]] = complete

        # ---- branch resolution ------------------------------------------
        if mispredicted[i]:
            redirect_at = complete + 1

        # ---- in-order retirement ----------------------------------------
        retire = complete
        if retire < last_retire:
            retire = last_retire
        bandwidth_floor = retire_recent[i % retire_width] + 1
        if retire < bandwidth_floor:
            retire = bandwidth_floor
        retire_recent[i % retire_width] = retire
        retire_ring[i % window] = retire
        last_retire = retire

    return TimingResult(
        cycles=last_retire,
        instructions=n,
        mispredict_stall_cycles=mispredict_stalls,
        dcache_misses=dcache_misses,
        window_stall_cycles=window_stalls,
        memory_penalty_cycles=memory_penalty_total,
    )


def execution_cycles(trace: Trace, machine: MachineConfig,
                     mispredict_mask: Optional["npt.NDArray[Any]"] = None,
                     mem_penalty: Optional["npt.NDArray[Any]"] = None) -> int:
    """Convenience wrapper returning just the cycle count."""
    return run_timing(trace, machine, mispredict_mask, mem_penalty).cycles
