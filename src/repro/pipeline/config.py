"""Machine configuration for the HPS-like timing models.

Defaults reproduce the paper's §4.1 machine as closely as the (partly
garbled) text allows:

* "wide issue" — fetch/issue/retire width 4 with a 32-entry window (the
  paper's exact window size is illegible; DESIGN.md records this as an
  assumption — only *relative* execution times are claimed);
* Table 3 latencies: INT 1, FP-add 3, MUL 3, DIV 8, LOAD 2, STORE 1,
  BITFIELD 1, BRANCH 1;
* perfect instruction cache; 16KB data cache; 10-cycle memory latency;
* checkpoint repair: "once a branch misprediction is determined,
  instructions from the correct path are fetched in the next cycle" — a
  mispredicted branch restarts fetch the cycle after it executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.guest.isa import InstrClass

#: Execution latencies per instruction class (paper Table 3).
LATENCIES: Dict[InstrClass, int] = {
    InstrClass.INT: 1,
    InstrClass.FP_ADD: 3,
    InstrClass.MUL: 3,
    InstrClass.DIV: 8,
    InstrClass.LOAD: 2,       # cache-hit latency; misses add memory latency
    InstrClass.STORE: 1,
    InstrClass.BITFIELD: 1,
    InstrClass.BRANCH: 1,
}


@dataclass(frozen=True)
class DataCacheConfig:
    """16KB 4-way 32B-line data cache (the paper gives only the size)."""

    size_bytes: int = 16 * 1024
    assoc: int = 4
    line_bytes: int = 32

    @property
    def n_sets(self) -> int:
        sets = self.size_bytes // (self.assoc * self.line_bytes)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError("cache geometry must give a power-of-two set count")
        return sets


@dataclass(frozen=True)
class MachineConfig:
    """The simulated machine."""

    fetch_width: int = 4
    retire_width: int = 4
    #: maximum instructions in flight ("in the machine") at once
    window: int = 32
    #: pipeline stages between fetch and earliest execute.  Chosen so the
    #: effective misprediction penalty (frontend refill + resolve latency)
    #: lands in the range that reproduces the paper's execution-time
    #: reductions at our workloads' indirect-jump densities.
    frontend_depth: int = 6
    memory_latency: int = 10
    dcache: DataCacheConfig = field(default_factory=DataCacheConfig)
    latencies: Dict[InstrClass, int] = field(
        default_factory=lambda: dict(LATENCIES)
    )

    def latency_of(self, instr_class: int) -> int:
        return self.latencies[InstrClass(instr_class)]
