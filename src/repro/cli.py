"""Command-line entry point: ``python -m repro`` / ``repro``.

Subcommands::

    repro list                      # available experiments and workloads
    repro table1 [options]          # run one experiment and print its table
    repro run <experiment> [opts]   # explicit form of the same
    repro all [options]             # run every experiment
    repro predictors                # registered predictor kinds and traits
    repro workloads [name]          # workload calibration + footprint stats
    repro workloads --lowerings     # registered switch lowerings
    repro sweep --spec FILE [opts]  # run ad-hoc cells from a spec JSON file
    repro trace <workload> [options]  # print workload trace statistics
    repro dump <workload> [--head N]  # disassemble a workload's code
    repro lint [--format text|json|sarif] [--only a,b]  # domain lint passes
    repro bench [--bench-output F]    # measure sweep throughput -> JSON
    repro serve [--port P] [--shards N]   # long-running sweep service
    repro loadgen [--requests N] [--concurrency C]  # benchmark the service
    repro report [LEDGER]             # summarise a run ledger
    repro report --compare OLD NEW    # diff two bench payloads (CI gate)

Wherever a workload name is accepted, a ``name@lowering`` suffix picks the
switch-lowering shape (``repro trace perl@if_tree``); see
``repro workloads --lowerings`` and ``docs/LOWERING.md``.

``repro sweep`` runs arbitrary ``(benchmark, engine-spec)`` cells through
the full execution stack — registry-built predictors, stream kernel,
process pool, persistent result cache — without writing an experiment
module.  The spec file schema (see ``docs/PREDICTORS.md``)::

    {"plugins": ["my_module"],            # optional: imported first
     "benchmarks": ["perl", "gcc"],       # default benchmark list
     "cells": [
        {"preset": "tagless-gshare9"},    # named preset from configs.PRESETS
        {"engine": {...EngineConfig spec...},
         "benchmarks": ["go"],            # per-cell override
         "label": "my row"}]}             # optional row label

Options: ``--trace-length N`` (default 400000, or REPRO_TRACE_LENGTH),
``--seed S``, ``--no-cache``, ``--jobs N`` (or REPRO_JOBS; worker
processes for experiment sweeps), ``--no-result-cache`` (bypass the
persistent prediction-result cache, see :mod:`repro.runner`), and
``--backend {auto,engine,streams,vector}`` (cap the per-cell execution
tier; every tier is bit-identical, so this only changes speed).  ``bench``
writes the machine-readable baseline described in :mod:`repro.bench`
(default ``BENCH_sweep.json``; see ``--bench-output``/``--rounds``) and
appends every payload to a history file (``--bench-history``).

Observability (:mod:`repro.obs`): simulation commands (experiments,
``all``, ``bench``) honour ``REPRO_OBS`` — unset/``0`` disabled, ``1``
for a ledger at ``repro_ledger.jsonl``, any other value is the ledger
path.  ``--obs-ledger FILE`` forces a ledger; ``--no-obs`` forces obs
off regardless of the environment.  ``repro report LEDGER`` summarises
the result; read-only commands never construct a sink, so summarising a
ledger cannot clobber it.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.common import (
    EXPERIMENT_MODULES,
    ExperimentContext,
    run_experiment,
)
from repro.guest.disasm import disassemble_program
from repro.trace.stats import (
    branch_mix,
    footprint,
    indirect_target_histogram,
    transition_rate,
)
from repro.workloads import build_program, get_trace, workload_names


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Target Prediction for Indirect Jumps' "
                    "(Chang, Hao & Patt, ISCA 1997)",
    )
    parser.add_argument("command",
                        help="experiment name, 'run', 'all', 'list', "
                             "'predictors', 'workloads', 'sweep', 'trace', "
                             "'dump', 'lint', 'bench', 'serve', 'loadgen', "
                             "or 'report'")
    parser.add_argument("workload", nargs="?",
                        help="workload name (for 'trace', 'dump', 'bench', "
                             "'workloads'; accepts a name@lowering suffix), "
                             "experiment name (for 'run'), or ledger path "
                             "(for 'report')")
    parser.add_argument("--spec", default=None, metavar="FILE",
                        help="spec JSON file (sweep command)")
    parser.add_argument("--head", type=int, default=80,
                        help="instructions to disassemble (dump command)")
    parser.add_argument("--trace-length", type=int, default=None,
                        help="instructions per trace (default 400000)")
    parser.add_argument("--seed", type=int, default=1997)
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk trace cache")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for experiment sweeps "
                             "(default: REPRO_JOBS, else 1)")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="bypass the persistent prediction-result cache")
    parser.add_argument("--backend",
                        choices=("auto", "engine", "streams", "vector"),
                        default="auto",
                        help="cap the per-cell execution tier (auto picks "
                             "the fastest supported: vector > streams > "
                             "engine; results are bit-identical)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format (lint: text/json/sarif; "
                             "report: text/json)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="CHECKERS",
                        help="run only the named lint checkers "
                             "(repeatable and/or comma-separated)")
    parser.add_argument("--list-checks", action="store_true",
                        help="list registered lint checkers and exit")
    parser.add_argument("--lowerings", action="store_true",
                        help="list registered switch lowerings and exit "
                             "(workloads command)")
    parser.add_argument("--bench-output", default="BENCH_sweep.json",
                        metavar="FILE",
                        help="where 'bench' writes its JSON payload")
    parser.add_argument("--bench-history", default=None, metavar="FILE",
                        help="bench history JSONL (default: "
                             "BENCH_history.jsonl next to --bench-output)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing rounds per measurement (bench command)")
    parser.add_argument("--no-obs", action="store_true",
                        help="disable the run ledger even if REPRO_OBS is set")
    parser.add_argument("--obs-ledger", default=None, metavar="FILE",
                        help="record a run ledger at FILE (overrides "
                             "REPRO_OBS)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind/connect address (serve, loadgen)")
    parser.add_argument("--port", type=int, default=None,
                        help="TCP port (serve: 0 picks a free port and "
                             "prints it; loadgen: the server's port)")
    parser.add_argument("--shards", type=int, default=None,
                        help="scheduler shards (serve; default scales "
                             "with --jobs)")
    parser.add_argument("--requests", type=int, default=None,
                        help="spec submissions to replay (loadgen)")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="concurrent loadgen workers")
    parser.add_argument("--zipf", type=float, default=None,
                        help="Zipf exponent for the loadgen request mix")
    parser.add_argument("--compare", nargs=2, default=None,
                        metavar=("OLD", "NEW"),
                        help="report command: diff two bench JSON payloads; "
                             "exits 1 on regression")
    parser.add_argument("--top", type=int, default=10,
                        help="slowest cells to list (report command)")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="regression threshold percent for "
                             "'report --compare' (default 20)")
    return parser


def _context(args: argparse.Namespace) -> ExperimentContext:
    return ExperimentContext(
        trace_length=args.trace_length,
        seed=args.seed,
        use_trace_cache=not args.no_cache,
        jobs=args.jobs,
        use_result_cache=not args.no_result_cache,
        backend=args.backend,
    )


def _experiment_description(name: str) -> str:
    """First docstring line of an experiment module (empty if none)."""
    import importlib

    module = importlib.import_module(EXPERIMENT_MODULES[name])
    doc = (module.__doc__ or "").strip()
    return doc.splitlines()[0].strip() if doc else ""


def _cmd_list() -> int:
    from repro.workloads import workload_spec

    names = list(EXPERIMENT_MODULES)
    width = max(len(name) for name in names)
    print("experiments:")
    for name in names:
        print(f"  {name:<{width}}  {_experiment_description(name)}")
    workloads = workload_names(include_oo=True, include_server=True)
    width = max(len(name) for name in workloads)
    print("workloads:")
    for name in workloads:
        print(f"  {name:<{width}}  {workload_spec(name).description}")
    return 0


def _cmd_predictors() -> int:
    from repro.predictors import registrations

    print("registered target-cache kinds:")
    for reg in registrations():
        traits = reg.traits
        flags = ", ".join(
            flag for flag, on in (
                ("needs-history", traits.needs_history),
                ("oracle", traits.is_oracle),
                ("deterministic", traits.deterministic),
            ) if on
        )
        print(f"  {reg.kind}")
        if traits.description:
            print(f"      {traits.description}")
        print(f"      traits: {flags}")
        print(f"      backends: {' > '.join(traits.backends())}")
        if traits.spec_fields:
            print(f"      spec fields: {', '.join(traits.spec_fields)}")
        if reg.spec_examples:
            print(f"      e.g. {reg.spec_examples[0].label()}")
        if not reg.module.startswith("repro"):
            print(f"      plugin: {reg.module}")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    """Mirror of ``repro predictors`` for the workload registry.

    Prints each workload's calibration targets (the Table-1-style
    misprediction rate and the Figures 1-8 histogram shape recorded in its
    :class:`~repro.workloads.registry.WorkloadSpec`) next to *measured*
    footprint statistics of its trace (static site counts and per-site
    reuse, :func:`repro.trace.stats.footprint`).  Traces come from the
    disk cache, so only the first invocation pays for generation.
    """
    from repro.workloads import workload_spec
    from repro.workloads.registry import OO_WORKLOADS, SERVER_WORKLOADS

    if args.lowerings:
        return _cmd_lowerings()
    if args.workload:
        try:
            workload_spec(args.workload)
        except KeyError as exc:
            print(f"repro workloads: {exc.args[0]}", file=sys.stderr)
            return 2
        names = [args.workload]
    else:
        names = workload_names(include_oo=True, include_server=True)
    length = args.trace_length or 400_000
    print("registered workloads:")
    for name in names:
        spec = workload_spec(name)
        family = ("server" if name in SERVER_WORKLOADS
                  else "oo" if name in OO_WORKLOADS else "spec")
        print(f"  {name}  [{family}]")
        print(f"      {spec.description}")
        source = ("paper Table 1" if family == "spec"
                  else "measured, no paper number")
        print(f"      calibration: BTB indirect mispredict "
              f"{spec.paper_btb_mispred:.1%} ({source}), "
              f"target shape: {spec.paper_target_shape}")
        trace = get_trace(name, n_instructions=length, seed=args.seed,
                          use_cache=not args.no_cache)
        fp = footprint(trace)
        print(f"      footprint: {fp.static_branch_sites} static branch "
              f"sites ({fp.static_indirect_sites} indirect); per-site "
              f"reuse {fp.branch_site_reuse:,.0f}x "
              f"({fp.indirect_site_reuse:,.0f}x indirect) over "
              f"{len(trace):,} instructions")
    return 0


def _cmd_lowerings() -> int:
    """List registered switch lowerings (``repro workloads --lowerings``)."""
    from repro.guest.lowering import get_lowering, lowering_names

    print("registered switch lowerings (use as workload@lowering):")
    for name in lowering_names():
        lowering = get_lowering(name)
        default = "  [default]" if name == "jump_table" else ""
        print(f"  {name}{default}")
        print(f"      {lowering.label}")
        if lowering.spec_example:
            example = ", ".join(
                f"{key}={value!r}"
                for key, value in lowering.spec_example.items()
            )
            print(f"      e.g. switch({example})")
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    if not args.workload:
        print("usage: repro dump <workload> [--head N]", file=sys.stderr)
        return 2
    program = build_program(args.workload, seed=args.seed)
    print(f"; {args.workload}: {program.num_instructions} static "
          f"instructions, entry at {program.entry:#x}, "
          f"{len(program.static_indirect_jumps())} static indirect jumps")
    print(disassemble_program(program, count=args.head))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if not args.workload:
        print("usage: repro trace <workload>", file=sys.stderr)
        return 2
    trace = get_trace(
        args.workload,
        n_instructions=args.trace_length or 400_000,
        seed=args.seed,
        use_cache=not args.no_cache,
    )
    mix = branch_mix(trace)
    print(f"workload {args.workload}: {mix.instructions} instructions")
    print(f"  branches: {mix.branches} ({mix.branch_fraction:.1%})")
    print(f"  conditional: {mix.conditional_branches}")
    print(f"  indirect jumps: {mix.indirect_jumps} "
          f"({mix.indirect_fraction:.2%})")
    print(f"  returns: {mix.returns}, calls: {mix.calls}")
    fp = footprint(trace)
    print(f"  static branch sites: {fp.static_branch_sites} "
          f"({fp.static_indirect_sites} indirect)")
    print(f"  per-site reuse: {fp.branch_site_reuse:,.0f}x branches, "
          f"{fp.indirect_site_reuse:,.0f}x indirect")
    print(f"  last-target transition rate: {transition_rate(trace):.1%}")
    histogram = indirect_target_histogram(trace)
    busy = {k: round(v, 1) for k, v in histogram.items() if v > 0.5}
    print(f"  targets-per-jump histogram (% of static jumps): {busy}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import CHECKERS, describe_checkers, run_lint

    if args.list_checks:
        print(describe_checkers(CHECKERS))
        return 0
    only = None
    if args.only is not None:
        # Each --only may name several checkers: --only a,b --only c.
        only = [
            name.strip()
            for entry in args.only
            for name in entry.split(",")
            if name.strip()
        ]
    try:
        report = run_lint(only=only)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    print(report.render(args.format))
    return 0 if report.clean else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import (
        DEFAULT_ROUNDS,
        DEFAULT_WORKLOAD,
        append_history,
        format_summary,
        run_bench,
        write_bench,
    )

    payload = run_bench(
        workload=args.workload or DEFAULT_WORKLOAD,
        trace_length=args.trace_length,
        seed=args.seed,
        rounds=args.rounds if args.rounds is not None else DEFAULT_ROUNDS,
        use_trace_cache=not args.no_cache,
    )
    output = Path(args.bench_output)
    write_bench(payload, output)
    # The latest payload overwrites BENCH_sweep.json; the history file
    # keeps one JSONL line per run so the trajectory survives.
    history = (
        Path(args.bench_history) if args.bench_history is not None
        else output.with_name("BENCH_history.jsonl")
    )
    append_history(payload, history)
    print(format_summary(payload))
    print(f"  wrote {output} (history: {history})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import (
        DEFAULT_LEDGER,
        compare_bench,
        format_compare,
        format_summary,
        read_ledger,
        summarize,
    )

    if args.compare is not None:
        old_path, new_path = Path(args.compare[0]), Path(args.compare[1])
        if not old_path.exists():
            # First run in a fresh environment (e.g. an empty CI cache):
            # nothing to compare against is a warning, not a failure.
            print(f"repro report: no previous payload at {old_path}; "
                  "skipping comparison", file=sys.stderr)
            return 0
        if not new_path.exists():
            print(f"repro report: {new_path} not found", file=sys.stderr)
            return 2
        old = json.loads(old_path.read_text())
        new = json.loads(new_path.read_text())
        result = compare_bench(old, new, threshold_pct=args.threshold)
        if args.format == "json":
            print(json.dumps(result, indent=2, sort_keys=True))
        else:
            print(format_compare(result))
        return 1 if result["regressed"] else 0

    ledger = Path(args.workload or DEFAULT_LEDGER)
    if not ledger.exists():
        print(f"repro report: ledger {ledger} not found (run with "
              "REPRO_OBS=1 or --obs-ledger first)", file=sys.stderr)
        return 2
    try:
        records = read_ledger(ledger)
    except ValueError as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        return 2
    summary = summarize(records, top=args.top)
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_summary(summary))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.common import ExperimentTable
    from repro.predictors import load_plugins
    from repro.sweepspec import SpecError, parse_spec_text

    if not args.spec:
        print("usage: repro sweep --spec FILE", file=sys.stderr)
        return 2
    path = Path(args.spec)
    if not path.exists():
        print(f"repro sweep: spec file {path} not found", file=sys.stderr)
        return 2
    try:
        plan = parse_spec_text(path.read_text(), source=str(path))
    except SpecError as exc:
        # One line naming the offending key path; exit 2 like argparse.
        print(f"repro sweep: {exc}", file=sys.stderr)
        return 2
    load_plugins(list(plan.plugins))

    ctx = _context(args)
    ctx.predictions(plan.cells())
    rows = []
    for row in plan.rows:
        stats = ctx.prediction(row.benchmark, row.config)
        rows.append((f"{row.benchmark} {row.label}", [
            stats.indirect_mispred_rate,
            stats.conditional_mispred_rate,
            stats.overall_mispred_rate,
        ]))
    table = ExperimentTable(
        experiment_id="sweep",
        title=f"ad-hoc cells from {path.name}",
        columns=["indirect", "conditional", "overall"],
        rows=rows,
        notes="misprediction rates; cells ran through the registry, the "
              "stream kernel where supported, and the result cache",
    )
    print(table.format())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import DEFAULT_PORT, SweepService

    service = SweepService(
        host=args.host,
        port=args.port if args.port is not None else DEFAULT_PORT,
        jobs=args.jobs,
        shards=args.shards,
        trace_length=args.trace_length or 400_000,
        seed=args.seed,
        use_trace_cache=not args.no_cache,
        backend=args.backend,
        use_result_cache=not args.no_result_cache,
    )

    async def _serve() -> None:
        await service.start()
        # Printed after bind so `--port 0` reports the real port.
        print(f"repro serve: listening on http://{service.host}:"
              f"{service.port} (pool: {service.pool.mode} x"
              f"{service.pool.workers}, shards: "
              f"{service.scheduler.n_shards})", flush=True)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json
    from pathlib import Path

    from repro.bench import append_history, write_bench
    from repro.service import DEFAULT_PORT
    from repro.service.loadgen import (
        DEFAULT_CONCURRENCY,
        DEFAULT_REQUESTS,
        DEFAULT_ZIPF_S,
        format_loadgen,
        run_load,
    )

    port = args.port if args.port is not None else DEFAULT_PORT
    try:
        payload = asyncio.run(run_load(
            args.host, port,
            requests=args.requests if args.requests is not None
            else DEFAULT_REQUESTS,
            concurrency=args.concurrency if args.concurrency is not None
            else DEFAULT_CONCURRENCY,
            seed=args.seed,
            zipf_s=args.zipf if args.zipf is not None else DEFAULT_ZIPF_S,
        ))
    except (OSError, ConnectionError) as exc:
        print(f"repro loadgen: cannot reach {args.host}:{port}: {exc}",
              file=sys.stderr)
        return 2
    output = Path(args.bench_output)
    if output.name == "BENCH_sweep.json":
        # Don't overwrite the sweep bench when --bench-output was left at
        # its bench-command default.
        output = output.with_name("BENCH_serve.json")
    write_bench(payload, output)
    history = (
        Path(args.bench_history) if args.bench_history is not None
        else output.with_name("BENCH_serve_history.jsonl")
    )
    append_history(payload, history)
    print(format_loadgen(payload))
    print(f"  wrote {output} (history: {history})")
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if not payload["errors"] else 1


def _run_simulation(args: argparse.Namespace) -> int:
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    ctx = _context(args)
    if args.command == "all":
        names = list(EXPERIMENT_MODULES)
    elif args.command == "run":
        if not args.workload:
            print("usage: repro run <experiment>", file=sys.stderr)
            return 2
        names = [args.workload]
    else:
        names = [args.command]
    for name in names:
        if name not in EXPERIMENT_MODULES:
            print(f"unknown experiment {name!r}; try 'repro list'",
                  file=sys.stderr)
            return 2
        start = time.time()
        table = run_experiment(name, ctx)
        print(table.format())
        print(f"   [{time.time() - start:.1f}s]")
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "predictors":
        return _cmd_predictors()
    if args.command == "workloads":
        return _cmd_workloads(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "dump":
        return _cmd_dump(args)
    # Only simulation commands construct a sink: read-only commands must
    # never open (and on close, overwrite) a ledger they might be reading.
    from repro.obs import bootstrap, shutdown

    bootstrap(ledger=args.obs_ledger, disable=args.no_obs)
    try:
        return _run_simulation(args)
    finally:
        shutdown()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
