"""Command-line entry point: ``python -m repro`` / ``repro``.

Subcommands::

    repro list                      # available experiments and workloads
    repro table1 [options]          # run one experiment and print its table
    repro all [options]             # run every experiment
    repro trace <workload> [options]  # print workload trace statistics
    repro dump <workload> [--head N]  # disassemble a workload's code
    repro lint [--format json|text]   # run the domain lint passes
    repro bench [--bench-output F]    # measure sweep throughput -> JSON

Options: ``--trace-length N`` (default 400000, or REPRO_TRACE_LENGTH),
``--seed S``, ``--no-cache``, ``--jobs N`` (or REPRO_JOBS; worker
processes for experiment sweeps), ``--no-result-cache`` (bypass the
persistent prediction-result cache, see :mod:`repro.runner`).  ``bench``
writes the machine-readable baseline described in :mod:`repro.bench`
(default ``BENCH_sweep.json``; see ``--bench-output``/``--rounds``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.common import (
    EXPERIMENT_MODULES,
    ExperimentContext,
    run_experiment,
)
from repro.guest.disasm import disassemble_program
from repro.trace.stats import branch_mix, indirect_target_histogram, transition_rate
from repro.workloads import build_program, get_trace, workload_names


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Target Prediction for Indirect Jumps' "
                    "(Chang, Hao & Patt, ISCA 1997)",
    )
    parser.add_argument("command",
                        help="experiment name, 'all', 'list', 'trace', "
                             "'dump', 'lint', or 'bench'")
    parser.add_argument("workload", nargs="?",
                        help="workload name (for 'trace', 'dump', 'bench')")
    parser.add_argument("--head", type=int, default=80,
                        help="instructions to disassemble (dump command)")
    parser.add_argument("--trace-length", type=int, default=None,
                        help="instructions per trace (default 400000)")
    parser.add_argument("--seed", type=int, default=1997)
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk trace cache")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for experiment sweeps "
                             "(default: REPRO_JOBS, else 1)")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="bypass the persistent prediction-result cache")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="lint output format (lint command)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="CHECKER",
                        help="run only the named lint checker (repeatable)")
    parser.add_argument("--list-checks", action="store_true",
                        help="list registered lint checkers and exit")
    parser.add_argument("--bench-output", default="BENCH_sweep.json",
                        metavar="FILE",
                        help="where 'bench' writes its JSON payload")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing rounds per measurement (bench command)")
    return parser


def _context(args: argparse.Namespace) -> ExperimentContext:
    return ExperimentContext(
        trace_length=args.trace_length,
        seed=args.seed,
        use_trace_cache=not args.no_cache,
        jobs=args.jobs,
        use_result_cache=not args.no_result_cache,
    )


def _cmd_list() -> int:
    print("experiments:")
    for name in EXPERIMENT_MODULES:
        print(f"  {name}")
    print("workloads:")
    for name in workload_names(include_oo=True):
        print(f"  {name}")
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    if not args.workload:
        print("usage: repro dump <workload> [--head N]", file=sys.stderr)
        return 2
    program = build_program(args.workload, seed=args.seed)
    print(f"; {args.workload}: {program.num_instructions} static "
          f"instructions, entry at {program.entry:#x}, "
          f"{len(program.static_indirect_jumps())} static indirect jumps")
    print(disassemble_program(program, count=args.head))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if not args.workload:
        print("usage: repro trace <workload>", file=sys.stderr)
        return 2
    trace = get_trace(
        args.workload,
        n_instructions=args.trace_length or 400_000,
        seed=args.seed,
        use_cache=not args.no_cache,
    )
    mix = branch_mix(trace)
    print(f"workload {args.workload}: {mix.instructions} instructions")
    print(f"  branches: {mix.branches} ({mix.branch_fraction:.1%})")
    print(f"  conditional: {mix.conditional_branches}")
    print(f"  indirect jumps: {mix.indirect_jumps} "
          f"({mix.indirect_fraction:.2%})")
    print(f"  returns: {mix.returns}, calls: {mix.calls}")
    print(f"  last-target transition rate: {transition_rate(trace):.1%}")
    histogram = indirect_target_histogram(trace)
    busy = {k: round(v, 1) for k, v in histogram.items() if v > 0.5}
    print(f"  targets-per-jump histogram (% of static jumps): {busy}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import CHECKERS, describe_checkers, run_lint

    if args.list_checks:
        print(describe_checkers(CHECKERS))
        return 0
    try:
        report = run_lint(only=args.only)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    print(report.render(args.format))
    return 0 if report.clean else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import (
        DEFAULT_ROUNDS,
        DEFAULT_WORKLOAD,
        format_summary,
        run_bench,
        write_bench,
    )

    payload = run_bench(
        workload=args.workload or DEFAULT_WORKLOAD,
        trace_length=args.trace_length,
        seed=args.seed,
        rounds=args.rounds if args.rounds is not None else DEFAULT_ROUNDS,
        use_trace_cache=not args.no_cache,
    )
    output = Path(args.bench_output)
    write_bench(payload, output)
    print(format_summary(payload))
    print(f"  wrote {output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "dump":
        return _cmd_dump(args)
    ctx = _context(args)
    names = list(EXPERIMENT_MODULES) if args.command == "all" else [args.command]
    for name in names:
        if name not in EXPERIMENT_MODULES:
            print(f"unknown experiment {name!r}; try 'repro list'",
                  file=sys.stderr)
            return 2
        start = time.time()
        table = run_experiment(name, ctx)
        print(table.format())
        print(f"   [{time.time() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
