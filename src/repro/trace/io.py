"""Trace serialisation: compressed npz round-trip and a disk cache.

Traces are expensive to regenerate (the guest VM is a Python interpreter
loop), so experiments cache them on disk keyed by workload name, trace
length, and generator seed.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from repro.trace.trace import Trace

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` as a compressed npz archive.

    The write is atomic (temp file + rename) so a concurrently reading
    process never sees a torn archive.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(
                handle,
                version=np.int64(_FORMAT_VERSION),
                pc=trace.pc,
                instr_class=trace.instr_class,
                branch_kind=trace.branch_kind,
                taken=trace.taken,
                target=trace.target,
                src1=trace.src1,
                src2=trace.src2,
                dst=trace.dst,
                mem_addr=trace.mem_addr,
            )
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path) as archive:
        version = int(archive["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version} in {path}"
            )
        return Trace(
            pc=archive["pc"],
            instr_class=archive["instr_class"],
            branch_kind=archive["branch_kind"],
            taken=archive["taken"],
            target=archive["target"],
            src1=archive["src1"],
            src2=archive["src2"],
            dst=archive["dst"],
            mem_addr=archive["mem_addr"],
        )


def default_cache_dir() -> Path:
    """Directory used by :func:`cached_trace`.

    Overridable via the ``REPRO_TRACE_CACHE`` environment variable; defaults
    to ``~/.cache/repro-traces``.
    """
    override = os.environ.get("REPRO_TRACE_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-traces"


def cached_trace(key: str, generate: Callable[[], Trace],
                 cache_dir: Optional[Union[str, Path]] = None) -> Trace:
    """Return the trace for ``key``, generating and caching it on miss.

    ``key`` must be filesystem-safe and fully determine the trace (workload
    name + length + seed); the workload registry builds such keys.
    """
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    path = directory / f"{key}.npz"
    if path.exists():
        try:
            return load_trace(path)
        except (ValueError, OSError, KeyError):
            path.unlink(missing_ok=True)  # corrupt or stale cache entry
    trace = generate()
    save_trace(trace, path)
    return trace
