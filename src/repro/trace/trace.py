"""Columnar dynamic-instruction trace container.

A :class:`Trace` is a set of parallel numpy arrays, one row per retired
instruction, in program order.  Columns:

================  =======  ====================================================
column            dtype    meaning
================  =======  ====================================================
``pc``            uint64   instruction address
``instr_class``   uint8    :class:`~repro.guest.isa.InstrClass` value
``branch_kind``   uint8    :class:`~repro.guest.isa.BranchKind` value
``taken``         bool     branch outcome (True for every taken redirect)
``target``        uint64   computed target (static taken-target for
                           conditional branches; dynamic destination for
                           indirect branches; 0 for non-branches)
``src1``/``src2`` int8     source register indices, -1 when unused
``dst``           int8     destination register index, -1 when unused
``mem_addr``      uint64   effective address of loads/stores, 0 otherwise
================  =======  ====================================================

The container is immutable by convention; slicing returns views wrapped in a
new :class:`Trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Union

import numpy as np
import numpy.typing as npt

from repro.guest.isa import INSTRUCTION_BYTES, BranchKind, InstrClass
from repro.guest.vm import RawTrace

_COLUMNS = (
    ("pc", np.uint64),
    ("instr_class", np.uint8),
    ("branch_kind", np.uint8),
    ("taken", np.bool_),
    ("target", np.uint64),
    ("src1", np.int8),
    ("src2", np.int8),
    ("dst", np.int8),
    ("mem_addr", np.uint64),
)


@dataclass(frozen=True)
class TraceRecord:
    """One dynamic instruction, materialised from a trace row (slow path)."""

    pc: int
    instr_class: InstrClass
    branch_kind: BranchKind
    taken: bool
    target: int
    src1: int
    src2: int
    dst: int
    mem_addr: int

    @property
    def fallthrough(self) -> int:
        return self.pc + INSTRUCTION_BYTES

    @property
    def next_pc(self) -> int:
        """Address of the next instruction actually executed."""
        if self.branch_kind.is_branch and self.taken:
            return self.target
        return self.fallthrough


class Trace:
    """Immutable columnar trace; see module docstring for the schema."""

    __slots__ = ("pc", "instr_class", "branch_kind", "taken", "target",
                 "src1", "src2", "dst", "mem_addr")

    def __init__(self, pc: npt.ArrayLike, instr_class: npt.ArrayLike,
                 branch_kind: npt.ArrayLike, taken: npt.ArrayLike,
                 target: npt.ArrayLike, src1: npt.ArrayLike,
                 src2: npt.ArrayLike, dst: npt.ArrayLike,
                 mem_addr: npt.ArrayLike) -> None:
        self.pc = np.asarray(pc, dtype=np.uint64)
        self.instr_class = np.asarray(instr_class, dtype=np.uint8)
        self.branch_kind = np.asarray(branch_kind, dtype=np.uint8)
        self.taken = np.asarray(taken, dtype=np.bool_)
        self.target = np.asarray(target, dtype=np.uint64)
        self.src1 = np.asarray(src1, dtype=np.int8)
        self.src2 = np.asarray(src2, dtype=np.int8)
        self.dst = np.asarray(dst, dtype=np.int8)
        self.mem_addr = np.asarray(mem_addr, dtype=np.uint64)
        n = len(self.pc)
        for name, _ in _COLUMNS:
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name!r} has mismatched length")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_raw(cls, raw: RawTrace) -> "Trace":
        """Convert the guest VM's list-based :class:`RawTrace`."""
        return cls(
            pc=raw.pc,
            instr_class=raw.instr_class,
            branch_kind=raw.branch_kind,
            taken=raw.taken,
            target=raw.target,
            src1=raw.src1,
            src2=raw.src2,
            dst=raw.dst,
            mem_addr=raw.mem_addr,
        )

    @classmethod
    def empty(cls) -> "Trace":
        return cls(*([[]] * len(_COLUMNS)))

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.pc)

    def __getitem__(
        self, index: Union[int, slice, "npt.NDArray[Any]"]
    ) -> Union["Trace", TraceRecord]:
        if isinstance(index, slice) or isinstance(index, np.ndarray):
            return Trace(*(getattr(self, name)[index] for name, _ in _COLUMNS))
        return self.record(int(index))

    def record(self, i: int) -> TraceRecord:
        """Materialise row ``i`` as a :class:`TraceRecord`."""
        return TraceRecord(
            pc=int(self.pc[i]),
            instr_class=InstrClass(int(self.instr_class[i])),
            branch_kind=BranchKind(int(self.branch_kind[i])),
            taken=bool(self.taken[i]),
            target=int(self.target[i]),
            src1=int(self.src1[i]),
            src2=int(self.src2[i]),
            dst=int(self.dst[i]),
            mem_addr=int(self.mem_addr[i]),
        )

    def __iter__(self) -> Iterator[TraceRecord]:
        for i in range(len(self)):
            yield self.record(i)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name, _ in _COLUMNS
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(len={len(self)}, branches={int(self.is_branch.sum())})"

    # ------------------------------------------------------------------
    # Derived masks and views
    # ------------------------------------------------------------------
    @property
    def is_branch(self) -> "npt.NDArray[np.bool_]":
        return self.branch_kind != int(BranchKind.NOT_BRANCH)

    @property
    def is_conditional(self) -> "npt.NDArray[np.bool_]":
        return self.branch_kind == int(BranchKind.COND_DIRECT)

    @property
    def is_indirect_jump(self) -> "npt.NDArray[np.bool_]":
        """Mask of branches the paper's target cache predicts.

        Indirect jumps and indirect calls; returns are excluded because the
        return address stack handles them (paper footnote 1).
        """
        return (self.branch_kind == int(BranchKind.IND_JUMP)) | (
            self.branch_kind == int(BranchKind.CALL_INDIRECT)
        )

    @property
    def is_return(self) -> "npt.NDArray[np.bool_]":
        return self.branch_kind == int(BranchKind.RETURN)

    def branches(self) -> "Trace":
        """View containing only control-flow instructions."""
        view = self[np.flatnonzero(self.is_branch)]
        assert isinstance(view, Trace)  # ndarray index always yields a view
        return view

    def next_pc_array(self) -> "npt.NDArray[np.uint64]":
        """Per-row address of the next executed instruction."""
        fallthrough = self.pc + np.uint64(INSTRUCTION_BYTES)
        redirect = self.is_branch & self.taken
        return np.where(redirect, self.target, fallthrough)

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on corruption.

        Invariants: consecutive rows follow the recorded control flow (row
        ``i+1``'s pc equals row ``i``'s next pc), every taken branch has a
        word-aligned target, and non-branches are never marked taken.
        """
        if len(self) == 0:
            return
        next_pcs = self.next_pc_array()[:-1]
        if not np.array_equal(next_pcs, self.pc[1:]):
            bad = int(np.flatnonzero(next_pcs != self.pc[1:])[0])
            raise ValueError(
                f"control-flow discontinuity at row {bad}: "
                f"next_pc={int(next_pcs[bad]):#x} but pc[{bad + 1}]="
                f"{int(self.pc[bad + 1]):#x}"
            )
        redirect = self.is_branch & self.taken
        if np.any(self.target[redirect] % np.uint64(INSTRUCTION_BYTES)):
            raise ValueError("misaligned branch target in trace")
        if np.any(self.taken & ~self.is_branch):
            raise ValueError("non-branch marked taken")
