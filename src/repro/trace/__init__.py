"""Dynamic-instruction traces and their statistics.

The paper's experiments are trace-driven ("measured by trace-driven
simulations using an instruction level simulator", §4.1).  This package is
the trace substrate: a columnar, numpy-backed container produced by the guest
VM, summary statistics matching the paper's Table 1 and Figures 1-8, and npz
round-tripping so traces can be cached between runs.
"""

from repro.trace.io import load_trace, save_trace
from repro.trace.stats import (
    BranchMix,
    TargetProfile,
    branch_mix,
    indirect_target_histogram,
    polymorphic_fraction,
    target_profile,
    transition_rate,
)
from repro.trace.trace import Trace

__all__ = [
    "Trace",
    "BranchMix",
    "TargetProfile",
    "branch_mix",
    "indirect_target_histogram",
    "target_profile",
    "load_trace",
    "polymorphic_fraction",
    "save_trace",
    "transition_rate",
]
