"""Trace statistics matching the paper's Table 1 and Figures 1-8.

Two families of statistics:

* :func:`branch_mix` — dynamic instruction/branch/indirect-jump counts per
  trace (the paper's Table 1 columns).
* :func:`target_profile` / :func:`indirect_target_histogram` — per static
  indirect jump, the number of distinct dynamic targets, summarised as the
  paper's Figures 1-8 histograms ("Number of Targets per Indirect Jump",
  bucketed 1, 2, ..., >=30).  The paper's figures weight each *static*
  indirect jump equally; :func:`indirect_target_histogram` supports both
  static weighting and dynamic (execution-frequency) weighting.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.guest.isa import BranchKind
from repro.trace.trace import Trace

#: Figures 1-8 bucket the per-jump target counts at 1..29 and ">=30".
HISTOGRAM_CAP = 30


@dataclass(frozen=True)
class BranchMix:
    """Dynamic mix of a trace — the paper's Table 1 row (minus mispredicts)."""

    instructions: int
    branches: int
    conditional_branches: int
    indirect_jumps: int
    returns: int
    calls: int

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.instructions if self.instructions else 0.0

    @property
    def indirect_fraction(self) -> float:
        """Fraction of all instructions that are target-cache-predicted
        indirect jumps (paper §5 quotes 0.5% for gcc, 0.6% for perl)."""
        return self.indirect_jumps / self.instructions if self.instructions else 0.0


@dataclass(frozen=True)
class Footprint:
    """Static-site footprint of a trace — the server-workload regime axis.

    The paper's Table 1 characterises workloads by dynamic rates; what
    separates the server-like family (huge code footprints, BTB *capacity*
    misses) from the SPEC-like family (hot loops, target polymorphism) is
    the number of distinct *static* branch sites competing for BTB entries
    and how often each is revisited.  ``static_branch_sites`` against the
    1024-entry baseline BTB predicts whether capacity misses can occur at
    all; low per-site reuse means evicted entries rarely earn their refill.
    """

    #: distinct static pcs of any branch kind (what competes for BTB entries)
    static_branch_sites: int
    #: distinct static pcs of target-cache-predicted indirect jumps
    static_indirect_sites: int
    dynamic_branches: int
    dynamic_indirect_jumps: int

    @property
    def branch_site_reuse(self) -> float:
        """Mean dynamic executions per static branch site."""
        if not self.static_branch_sites:
            return 0.0
        return self.dynamic_branches / self.static_branch_sites

    @property
    def indirect_site_reuse(self) -> float:
        """Mean dynamic executions per static indirect-jump site."""
        if not self.static_indirect_sites:
            return 0.0
        return self.dynamic_indirect_jumps / self.static_indirect_sites


def footprint(trace: Trace) -> Footprint:
    """Compute the static-site footprint of ``trace``."""
    branch_mask = trace.branch_kind != int(BranchKind.NOT_BRANCH)
    indirect_mask = trace.is_indirect_jump
    return Footprint(
        static_branch_sites=int(np.unique(trace.pc[branch_mask]).size),
        static_indirect_sites=int(np.unique(trace.pc[indirect_mask]).size),
        dynamic_branches=int(branch_mask.sum()),
        dynamic_indirect_jumps=int(indirect_mask.sum()),
    )


def branch_mix(trace: Trace) -> BranchMix:
    """Compute the dynamic branch mix of ``trace``."""
    kinds = trace.branch_kind
    counts = np.bincount(kinds, minlength=len(BranchKind))
    return BranchMix(
        instructions=len(trace),
        branches=int(counts[1:].sum()),
        conditional_branches=int(counts[int(BranchKind.COND_DIRECT)]),
        indirect_jumps=int(
            counts[int(BranchKind.IND_JUMP)] + counts[int(BranchKind.CALL_INDIRECT)]
        ),
        returns=int(counts[int(BranchKind.RETURN)]),
        calls=int(
            counts[int(BranchKind.CALL_DIRECT)] + counts[int(BranchKind.CALL_INDIRECT)]
        ),
    )


@dataclass
class TargetProfile:
    """Per static indirect jump: its distinct targets and execution count."""

    #: static pc -> {target -> dynamic count}
    targets_by_pc: Dict[int, Dict[int, int]] = field(default_factory=dict)

    @property
    def static_jumps(self) -> int:
        return len(self.targets_by_pc)

    @property
    def dynamic_jumps(self) -> int:
        return sum(sum(t.values()) for t in self.targets_by_pc.values())

    def distinct_target_counts(self) -> Dict[int, int]:
        """static pc -> number of distinct dynamic targets."""
        return {pc: len(t) for pc, t in self.targets_by_pc.items()}

    def max_targets(self) -> int:
        return max((len(t) for t in self.targets_by_pc.values()), default=0)


def target_profile(trace: Trace) -> TargetProfile:
    """Profile the targets of every static indirect jump in ``trace``."""
    mask = trace.is_indirect_jump
    pcs = trace.pc[mask]
    targets = trace.target[mask]
    profile: Dict[int, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
    for pc, target in zip(pcs.tolist(), targets.tolist()):
        profile[pc][target] += 1
    return TargetProfile(targets_by_pc={pc: dict(t) for pc, t in profile.items()})


def indirect_target_histogram(
    trace: Trace, *, weight: str = "static", cap: int = HISTOGRAM_CAP
) -> Dict[int, float]:
    """Histogram of "number of targets per indirect jump" (Figures 1-8).

    Returns ``{bucket: percentage}`` where buckets run ``1..cap`` and the
    ``cap`` bucket aggregates every jump with ``>= cap`` distinct targets.

    ``weight='static'`` counts each static indirect jump once (the paper's
    figures); ``weight='dynamic'`` weights each jump by its execution count,
    which better reflects what the predictor experiences.
    """
    if weight not in ("static", "dynamic"):
        raise ValueError(f"weight must be 'static' or 'dynamic', got {weight!r}")
    profile = target_profile(trace)
    histogram: Dict[int, float] = {bucket: 0.0 for bucket in range(1, cap + 1)}
    total = 0.0
    for targets in profile.targets_by_pc.values():
        bucket = min(len(targets), cap)
        w = 1.0 if weight == "static" else float(sum(targets.values()))
        histogram[bucket] += w
        total += w
    if total:
        for bucket in histogram:
            histogram[bucket] = 100.0 * histogram[bucket] / total
    return histogram


def polymorphic_fraction(trace: Trace) -> float:
    """Fraction of dynamic indirect jumps executed by a jump with >1 target.

    This is the headroom statistic: a BTB can in principle predict the
    monomorphic remainder perfectly, so everything the target cache wins
    comes out of this fraction.
    """
    profile = target_profile(trace)
    total = profile.dynamic_jumps
    if not total:
        return 0.0
    poly = sum(
        sum(t.values()) for t in profile.targets_by_pc.values() if len(t) > 1
    )
    return poly / total


def transition_rate(trace: Trace) -> float:
    """Fraction of dynamic indirect jumps whose target differs from the
    previous execution of the same static jump.

    This lower-bounds the misprediction rate of any last-target (BTB)
    scheme with unlimited capacity, so it is a useful calibration check
    against the paper's Table 1 misprediction column.
    """
    mask = trace.is_indirect_jump
    pcs = trace.pc[mask].tolist()
    targets = trace.target[mask].tolist()
    last: Dict[int, int] = {}
    transitions = 0
    total = 0
    for pc, target in zip(pcs, targets):
        previous = last.get(pc)
        if previous is not None:
            total += 1
            if previous != target:
                transitions += 1
        last[pc] = target
    return transitions / total if total else 0.0
