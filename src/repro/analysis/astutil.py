"""Small AST helpers shared by the analysis passes."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> dotted origin for every import in the module.

    ``import numpy as np``            -> ``{"np": "numpy"}``
    ``import os``                     -> ``{"os": "os"}``
    ``from os import environ``        -> ``{"environ": "os.environ"}``
    ``from numpy import random as r`` -> ``{"r": "numpy.random"}``

    Function-local imports are included too (the map is flat; this is a
    lint, not a scope-perfect resolver).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                origin = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def resolve_dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to a dotted origin name, or ``None``.

    ``np.random.rand`` with ``{"np": "numpy"}`` -> ``"numpy.random.rand"``.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    origin = aliases.get(current.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


def attribute_chain(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains rooted at a plain name."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name) or not parts:
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def functions_with_qualnames(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Yield ``(qualname, node)`` for every function, including methods."""

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.FunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                if isinstance(child, ast.FunctionDef):
                    yield qualname, child
                yield from visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def loop_bodies(node: ast.AST) -> Iterator[List[ast.stmt]]:
    """Yield the body (plus else) of every for/while loop under ``node``."""
    for child in ast.walk(node):
        if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
            yield list(child.body) + list(child.orelse)


def is_constant_one(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value == 1
