"""Project-wide symbol index: the name-resolution half of the call graph.

The per-file checkers (determinism, bitwidth, hotloop, ...) are lexical:
they inspect one :class:`~repro.analysis.base.SourceFile` at a time and
never need to know what a name *refers to*.  The interprocedural passes
(worker-safety, transitive purity, trait-contract) do: they ask "which
function does this call land in?", which requires a project-wide map from
dotted names to definitions plus the import-alias plumbing to get from a
local name to that map.

:class:`SymbolIndex` provides exactly that:

* every module under the package root, keyed by dotted name
  (``runner/pool.py`` -> ``repro.runner.pool``);
* every function and method, keyed by fully qualified name
  (``repro.runner.pool._init_worker``,
  ``repro.predictors.streams.BranchStreams.columns``), including nested
  functions (``repro.runner.pool._compute.serial_streams``);
* every class with its methods and (project-resolvable) base classes;
* per-module import aliases (via :func:`repro.analysis.astutil.import_aliases`)
  and **re-export chasing**: ``from repro.predictors import simulate_vector``
  resolves through ``predictors/__init__.py`` to
  ``repro.predictors.vector.simulate_vector``.

The index is deliberately approximate in the same spirit as the rest of
``repro.analysis``: it resolves what a lint needs to resolve (direct
calls, ``self`` methods, aliased module attributes, package re-exports)
and returns ``None`` for anything dynamic rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutil import import_aliases
from repro.analysis.base import Project, SourceFile

#: Dotted-name prefix of every module in the analyzed package.  The
#: project root is the installed ``repro`` package, so relpaths map to
#: ``repro.``-prefixed module names.
PACKAGE = "repro"


def module_name(relpath: str, package: str = PACKAGE) -> str:
    """Dotted module name of a project relpath.

    ``runner/pool.py`` -> ``repro.runner.pool``; ``__init__.py`` ->
    ``repro``; ``obs/__init__.py`` -> ``repro.obs``.
    """
    parts = relpath[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package] + parts)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str          #: fully qualified: ``repro.runner.pool._run_chunk``
    module: str            #: defining module: ``repro.runner.pool``
    relpath: str           #: project-relative file
    local_qualname: str    #: within the module: ``Cls.method`` / ``f.nested``
    node: ast.FunctionDef
    #: local qualname of the enclosing class, if this is a method
    class_name: Optional[str] = None

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition plus its directly declared methods."""

    qualname: str          #: ``repro.predictors.streams.BranchStreams``
    module: str
    local_qualname: str
    node: ast.ClassDef
    #: method name -> FunctionInfo (this class's own defs only)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: base-class expressions as written (resolved lazily by the index)
    base_names: Tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """One module: its definitions, aliases, and module-scope surface."""

    name: str
    relpath: str
    source: SourceFile
    #: local alias -> dotted origin, from this module's import statements
    aliases: Dict[str, str] = field(default_factory=dict)
    #: local qualname -> FunctionInfo for every def in the module
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: local qualname -> ClassInfo
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: names assigned at module scope (mutable-state candidates)
    module_level_names: Set[str] = field(default_factory=set)
    #: linenos of ``open(...)`` calls executed at import time
    import_time_opens: List[int] = field(default_factory=list)


def _walk_definitions(
    tree: ast.Module,
) -> Iterator[Tuple[str, Optional[str], ast.AST]]:
    """Yield ``(local_qualname, enclosing_class, node)`` for defs/classes."""

    def visit(
        node: ast.AST, prefix: str, enclosing_class: Optional[str]
    ) -> Iterator[Tuple[str, Optional[str], ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, enclosing_class, child
                # Functions nested inside a function are plain functions.
                yield from visit(child, f"{qualname}.", None)
            elif isinstance(child, ast.ClassDef):
                qualname = f"{prefix}{child.name}"
                yield qualname, enclosing_class, child
                yield from visit(child, f"{qualname}.", qualname)
            else:
                yield from visit(child, prefix, enclosing_class)

    yield from visit(tree, "", None)


def _module_scope_info(tree: ast.Module) -> Tuple[Set[str], List[int]]:
    """Names assigned at module scope, plus import-time ``open()`` linenos.

    Only statements executed at import time count, so the walk never
    descends into function bodies (class bodies do run at import time and
    are included for the ``open`` scan, but their assignments are class
    attributes, not module globals).
    """
    names: Set[str] = set()
    opens: List[int] = []

    def scan_opens(node: ast.AST) -> None:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "open"
            ):
                opens.append(sub.lineno)

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(stmt, ast.ClassDef):
            for class_stmt in stmt.body:
                if not isinstance(
                    class_stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    scan_opens(class_stmt)
            continue
        scan_opens(stmt)
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
    return names, opens


def _base_name(node: ast.expr) -> Optional[str]:
    """Render a base-class expression (``Base`` / ``mod.Base``) as written."""
    parts: List[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


class SymbolIndex:
    """Qualname-keyed view of every definition in the project."""

    def __init__(self, project: Project, package: str = PACKAGE) -> None:
        self.project = project
        self.package = package
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for source in project.files:
            self._index_file(source)

    @classmethod
    def build(cls, project: Project, package: str = PACKAGE) -> "SymbolIndex":
        return cls(project, package)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _index_file(self, source: SourceFile) -> None:
        name = module_name(source.relpath, self.package)
        level_names, opens = _module_scope_info(source.tree)
        module = ModuleInfo(
            name=name,
            relpath=source.relpath,
            source=source,
            aliases=import_aliases(source.tree),
            module_level_names=level_names,
            import_time_opens=opens,
        )
        self.modules[name] = module
        for local_qualname, enclosing_class, node in _walk_definitions(
            source.tree
        ):
            qualname = f"{name}.{local_qualname}"
            if isinstance(node, ast.ClassDef):
                info = ClassInfo(
                    qualname=qualname,
                    module=name,
                    local_qualname=local_qualname,
                    node=node,
                    base_names=tuple(
                        base
                        for base in map(_base_name, node.bases)
                        if base is not None
                    ),
                )
                module.classes[local_qualname] = info
                self.classes[qualname] = info
            elif isinstance(node, ast.FunctionDef):
                func = FunctionInfo(
                    qualname=qualname,
                    module=name,
                    relpath=source.relpath,
                    local_qualname=local_qualname,
                    node=node,
                    class_name=enclosing_class,
                )
                module.functions[local_qualname] = func
                self.functions[qualname] = func
                if enclosing_class is not None:
                    cls_info = module.classes.get(enclosing_class)
                    if cls_info is not None:
                        cls_info.methods[node.name] = func

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def module_of(self, source: SourceFile) -> ModuleInfo:
        return self.modules[module_name(source.relpath, self.package)]

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def resolve_export(
        self, module: str, symbol: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Resolve ``module.symbol`` to a definition qualname.

        Chases package re-exports: if ``symbol`` is not defined in
        ``module`` but the module imports it (``from repro.x import y``),
        resolution recurses into the origin.  Returns a function or class
        qualname, or ``None`` for externals and dynamic names.
        """
        seen = _seen if _seen is not None else set()
        key = f"{module}.{symbol}"
        if key in seen:
            return None
        seen.add(key)
        info = self.modules.get(module)
        if info is None:
            return None
        if symbol in info.functions or symbol in info.classes:
            return key
        # A submodule reference: ``repro.predictors.vector``.
        if key in self.modules:
            return key
        origin = info.aliases.get(symbol)
        if origin is None:
            return None
        return self._resolve_dotted_origin(origin, seen)

    def _resolve_dotted_origin(
        self, origin: str, seen: Set[str]
    ) -> Optional[str]:
        """Resolve a dotted origin (``repro.x.y.z``) to a definition."""
        if not origin.startswith(self.package + ".") and origin != self.package:
            return None
        if origin in self.modules:
            return origin
        head, _, tail = origin.rpartition(".")
        if not head:
            return None
        return self.resolve_export(head, tail, seen)

    def resolve_in_module(
        self, module: ModuleInfo, dotted: str,
        enclosing_function: Optional[FunctionInfo] = None,
    ) -> Optional[str]:
        """Resolve a (possibly dotted) name used inside ``module``.

        Checks, in order: functions nested in the enclosing function,
        module-local definitions, then import aliases (with re-export
        chasing).  For dotted names the head resolves first and the
        remaining attributes resolve as exports/methods of the result.
        """
        head, _, rest = dotted.partition(".")
        target: Optional[str] = None
        if enclosing_function is not None:
            nested = f"{enclosing_function.local_qualname}.{head}"
            if nested in module.functions:
                target = f"{module.name}.{nested}"
        if target is None and (
            head in module.functions or head in module.classes
        ):
            target = f"{module.name}.{head}"
        if target is None:
            origin = module.aliases.get(head)
            if origin is not None:
                target = self._resolve_dotted_origin(origin, set())
        if target is None:
            return None
        for attr in rest.split(".") if rest else []:
            target = self._resolve_attr(target, attr)
            if target is None:
                return None
        return target

    def _resolve_attr(self, qualname: str, attr: str) -> Optional[str]:
        """Resolve one attribute step on a module, class, or function."""
        if qualname in self.modules:
            return self.resolve_export(qualname, attr)
        cls = self.classes.get(qualname)
        if cls is not None:
            method = self.resolve_method(cls, attr)
            return method.qualname if method is not None else None
        return None

    def resolve_method(
        self, cls: ClassInfo, method: str, _depth: int = 0
    ) -> Optional[FunctionInfo]:
        """Find ``method`` on ``cls`` or a project-resolvable base class."""
        if _depth > 8:  # defensive: cyclic or pathological hierarchies
            return None
        found = cls.methods.get(method)
        if found is not None:
            return found
        module = self.modules.get(cls.module)
        if module is None:
            return None
        for base_name in cls.base_names:
            base_qual = self.resolve_in_module(module, base_name)
            if base_qual is None:
                continue
            base = self.classes.get(base_qual)
            if base is None:
                continue
            found = self.resolve_method(base, method, _depth + 1)
            if found is not None:
                return found
        return None
