"""Vector-hygiene lint: the vectorized tier must stay loop-free.

The whole point of :mod:`repro.predictors.vector` is that a cell is a
handful of whole-array numpy passes — sort, running maximum, gathers —
with no per-branch Python loop.  A ``for`` statement creeping back into
that module is how the 10x speed guard erodes one "small" change at a
time, so the absence of loops is a lint invariant, not a convention:

``vector-python-loop``
    A Python ``for`` / ``while`` statement in the vector module.  The
    per-branch recurrence must be expressed as array passes (the loop is
    almost always iterating an array row-by-row); the few legitimate
    loops — the per-``BranchKind`` counter fill (a dozen iterations per
    cell) and the per-config driver in ``simulate_many_vector`` (once per
    cell, not per branch) — carry explicit
    ``# repro-lint: ignore[vector-python-loop]`` suppressions.

The rule deliberately flags *every* loop rather than trying to prove the
iterable is an array: a false positive costs one ignore comment with a
reviewable justification, while a false negative silently re-serialises
the kernel.  Comprehensions are exempt — they show up in setup code
(e.g. building the per-kind counter map), never as a per-branch walk.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Tuple

from repro.analysis.astutil import functions_with_qualnames
from repro.analysis.base import Finding, Project, SourceFile

#: Package-relative files the loop ban applies to.
VECTOR_PATHS: Tuple[str, ...] = ("predictors/vector.py",)


class VectorHygieneChecker:
    """Ban Python loops from the whole-array simulation tier."""

    name = "vector-hygiene"
    description = (
        "no Python for/while loops in the vectorized execution tier; "
        "per-branch work must be whole-array numpy passes"
    )

    def __init__(self, paths: Sequence[str] = VECTOR_PATHS) -> None:
        self.paths = tuple(paths)

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for relpath in self.paths:
            source = project.file(relpath)
            if source is None:
                continue
            findings.extend(self.check_file(source))
        return findings

    # ------------------------------------------------------------------
    def check_file(self, source: SourceFile) -> List[Finding]:
        # Attribute each loop to its enclosing function so the message
        # names where the loop lives; module-level loops (none today)
        # report under "<module>".
        owner_by_loop: Dict[ast.AST, str] = {}
        for qualname, func in functions_with_qualnames(source.tree):
            for node in ast.walk(func):
                if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                    # Innermost function wins: functions_with_qualnames
                    # yields outer functions before their nested ones.
                    owner_by_loop[node] = qualname
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                continue
            keyword = "while" if isinstance(node, ast.While) else "for"
            owner = owner_by_loop.get(node, "<module>")
            findings.append(
                Finding(
                    "vector-python-loop", source.relpath, node.lineno,
                    f"Python '{keyword}' loop in the vectorized tier "
                    f"('{owner}'); express the recurrence as whole-array "
                    "numpy passes, or justify with "
                    "# repro-lint: ignore[vector-python-loop]",
                )
            )
        return findings
