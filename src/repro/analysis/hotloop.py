"""Hot-loop hygiene lint for the per-branch simulation kernel.

PR 1's fast-path work (int-keyed dispatch, hoisted bound methods,
pre-built counter maps) bought a large constant factor on the
per-branch loop.  These rules keep that work from regressing: the code
paths executed once per dynamic branch must not re-introduce the
patterns that were deliberately removed.

Hot paths are listed explicitly in :data:`HOT_PATHS` — for
``FetchEngine.process_branch`` (called once per branch) the whole body
is hot; for the ``simulate`` / ``simulate_many`` drivers only the loop
bodies are (their setup code runs once per config and may construct
whatever it likes).

``hotloop-enum-property``
    Accessing a ``BranchKind`` convenience property (``is_branch``,
    ``is_call``, ...) in a hot path.  Each access walks Python's enum
    property machinery; the kernel pre-computes frozensets of kinds
    (``_CALL_KINDS``-style) instead.
``hotloop-construct``
    Calling a CamelCase constructor in a hot path.  Object allocation
    per branch dominated the original profile; state objects must be
    built once, outside the loop.
``hotloop-attr-chain``
    The same multi-step attribute chain (``self.a.b``) read two or more
    times within one loop body.  Hoist the lookup to a local before the
    loop (or bind once inside it).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.astutil import functions_with_qualnames, loop_bodies
from repro.analysis.base import Finding, Project, SourceFile

#: (relpath, function qualname, whole_body_hot) triples naming the kernel.
#: The streams module's builders run once per (trace, signature) but still
#: loop over every branch (or every history-shifting branch), and
#: ``simulate_streamed`` loops once per target-cache access per cell — all
#: of them per-dynamic-branch paths that must stay allocation-free.
HOT_PATHS: Tuple[Tuple[str, str, bool], ...] = (
    ("predictors/engine.py", "FetchEngine.process_branch", True),
    ("predictors/engine.py", "simulate", False),
    ("predictors/engine.py", "simulate_many", False),
    ("predictors/streams.py", "build_streams", False),
    ("predictors/streams.py", "_variant_walk", False),
    ("predictors/streams.py", "BranchStreams._per_address_variant", False),
    ("predictors/streams.py", "simulate_streamed", False),
    # The vector tier's kernel is whole-array by construction (the
    # vector-hygiene pass bans loops outright); listing it here keeps the
    # allocation/enum-property rules on its sanctioned counter loop and on
    # the recurrence body.  ``simulate_many_vector`` is a per-config
    # driver, not a per-branch path — like ``simulate_many_streamed`` it
    # stays unlisted so its build span/reuse counter remain legal.
    ("predictors/vector.py", "simulate_vector", False),
    ("predictors/vector.py", "_last_write_predictions", True),
)

#: ``BranchKind`` convenience properties; cheap at module import, not per
#: branch.  Kept in sync with ``repro/guest/isa.py`` by the tests.
ENUM_PROPERTIES = frozenset(
    {
        "is_branch",
        "is_indirect",
        "is_predicted_by_target_cache",
        "is_call",
        "redirects_stream",
    }
)


def _camel_case(name: str) -> bool:
    """True for CamelCase class names, false for CONSTANTS and snake_case."""
    return name[:1].isupper() and not name.isupper()


def _call_target_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _chains(nodes: Iterable[ast.AST]) -> Iterable[Tuple[str, int]]:
    """Yield ``(chain, line)`` for each multi-attribute read under nodes.

    Only the *outermost* attribute of each chain is reported, and only
    chains with at least two attribute steps (``a.b.c``) — a single
    ``obj.attr`` read is one dict lookup and not worth hoisting.
    """
    inner: set = set()
    for root in nodes:
        for node in ast.walk(root):
            if not isinstance(node, ast.Attribute) or node in inner:
                continue
            parts: List[str] = []
            current: ast.AST = node
            while isinstance(current, ast.Attribute):
                parts.append(current.attr)
                if isinstance(current.value, ast.Attribute):
                    inner.add(current.value)
                current = current.value
            if isinstance(current, ast.Name) and len(parts) >= 2:
                parts.append(current.id)
                yield ".".join(reversed(parts)), node.lineno


class HotLoopChecker:
    """Keep the per-branch kernel free of known slow patterns."""

    name = "hotloop"
    description = (
        "no enum-property dispatch, object construction, or repeated "
        "attribute chains in the per-branch simulation kernel"
    )

    def __init__(
        self, hot_paths: Sequence[Tuple[str, str, bool]] = HOT_PATHS
    ) -> None:
        self.hot_paths = tuple(hot_paths)

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        by_file: Dict[str, List[Tuple[str, bool]]] = {}
        for relpath, qualname, whole in self.hot_paths:
            by_file.setdefault(relpath, []).append((qualname, whole))
        for relpath, entries in by_file.items():
            source = project.file(relpath)
            if source is None:
                continue
            findings.extend(self.check_file(source, entries))
        return findings

    # ------------------------------------------------------------------
    def check_file(
        self, source: SourceFile, entries: Sequence[Tuple[str, bool]]
    ) -> List[Finding]:
        wanted = dict(entries)
        findings: List[Finding] = []
        for qualname, func in functions_with_qualnames(source.tree):
            whole = wanted.get(qualname)
            if whole is None:
                continue
            if whole:
                # ast.walk covers nested loops, so the body alone suffices.
                regions: List[List[ast.stmt]] = [list(func.body)]
            else:
                regions = list(loop_bodies(func))
            for region in regions:
                findings.extend(self._check_region(source, qualname, region))
            # Repeated-chain analysis is per loop body only: straight-line
            # code may read the same chain on mutually exclusive branches,
            # which is not a repeated lookup at runtime.
            for scope in loop_bodies(func):
                findings.extend(self._check_chains(source, qualname, scope))
        return findings

    def _check_region(self, source: SourceFile, qualname: str,
                      region: List[ast.stmt]) -> List[Finding]:
        findings: List[Finding] = []
        for stmt in region:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Attribute) \
                        and node.attr in ENUM_PROPERTIES:
                    findings.append(
                        Finding(
                            "hotloop-enum-property", source.relpath,
                            node.lineno,
                            f"'{node.attr}' property access in hot path "
                            f"'{qualname}'; pre-compute a frozenset of kinds "
                            "at module level instead",
                        )
                    )
                elif isinstance(node, ast.Call):
                    callee = _call_target_name(node)
                    if _camel_case(callee):
                        findings.append(
                            Finding(
                                "hotloop-construct", source.relpath,
                                node.lineno,
                                f"constructing '{callee}' in hot path "
                                f"'{qualname}'; allocate state once outside "
                                "the per-branch loop",
                            )
                        )
        return findings

    def _check_chains(self, source: SourceFile, qualname: str,
                      scope: List[ast.stmt]) -> List[Finding]:
        seen: Dict[str, List[int]] = {}
        for chain, line in _chains(scope):
            seen.setdefault(chain, []).append(line)
        findings: List[Finding] = []
        for chain, lines in sorted(seen.items()):
            if len(lines) < 2:
                continue
            findings.append(
                Finding(
                    "hotloop-attr-chain", source.relpath, lines[1],
                    f"'{chain}' looked up {len(lines)} times in hot path "
                    f"'{qualname}' (first at line {lines[0]}); hoist it to "
                    "a local",
                )
            )
        return findings
