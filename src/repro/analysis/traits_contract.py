"""Trait-contract lint: declared predictor traits vs actual implementation.

The registry (:mod:`repro.predictors.registry`) made dispatch declarative:
a :class:`~repro.predictors.registry.PredictorTraits` record *claims* what
a kind can do, and the execution tiers, the cache keys, and ``repro
predictors`` all believe it.  Nothing so far checked that the claims are
true — a trait declared in one module silently contradicting behaviour
implemented in another is exactly the cross-module bug class the
Bullseye/H2P compositions on the roadmap will multiply.  This pass
cross-checks each registration against the implementations it points at,
building every spec example through the real factory:

``trait-vector-dispatch``
    A ``vectorizable=True`` kind that
    :func:`~repro.predictors.vector.simulate_vector` cannot actually
    dispatch: a history-consuming kind whose built predictor does not
    expose an :class:`~repro.predictors.indexing.IndexScheme` via its
    ``scheme`` attribute (the vector tier's only non-oracle, non-pc
    indexing source).  Such a cell would raise at sweep time — or worse,
    force a silent fallback if the dispatch ever became lenient.
``trait-backend-chain``
    A ``traits.backends()`` chain that does not name real kernels:
    ``vectorizable=True`` with ``streams_supported=False`` (the vector
    tier consumes :class:`~repro.predictors.streams.BranchStreams`, so
    the chain silently drops ``vector``), or a backend name with no
    kernel function behind it in the symbol index / no entry in the
    runner's ``BACKENDS``.
``trait-factory-provides``
    A factory whose built predictor is not an instance of any class in
    the registration's ``provides`` tuple (or that raises on its own
    spec example).  ``provides`` is how the registry checker proves every
    predictor class is reachable — a lying tuple unravels that proof.
``trait-uncovered-provider``
    A ``provides`` class defined in a module the result-cache
    code-fingerprint lists (``runner/keys.py``) do not cover: editing
    the predictor would not invalidate cached results built from it.
``trait-backstop-history``
    A ``predicts_on_btb_miss=True`` kind that also declares
    ``needs_history=True`` or ``vectorizable=True``.  On a BTB miss the
    engine has no fetch-time history capture for the branch (the stream
    kernel likewise feeds backstopped rows a constant zero), so only
    kinds that contractually ignore history may backstop; and the vector
    kernel replays routed rows only, so a vectorizable backstop kind
    would silently drop its BTB-miss predictions.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.base import Finding, Project
from repro.analysis.cache_keys import _covers, _registration_anchor
from repro.analysis.callgraph import project_callgraph

#: backend name -> the kernel function that must exist to serve it
KERNELS = {
    "engine": "repro.predictors.engine.simulate",
    "streams": "repro.predictors.streams.simulate_streamed",
    "vector": "repro.predictors.vector.simulate_vector",
}


class TraitContractChecker:
    """Every PredictorTraits claim must hold against the implementation."""

    name = "trait-contract"
    description = (
        "PredictorTraits declarations must match behaviour: vectorizable "
        "kinds dispatch, factories build their 'provides' classes, "
        "backend chains name real kernels, providers are cache-key covered"
    )

    def run(self, project: Project) -> List[Finding]:
        from repro.predictors.indexing import IndexScheme
        from repro.predictors.registry import registrations
        from repro.runner import keys
        from repro.runner.pool import BACKENDS

        index = project_callgraph(project).index
        covered: Tuple[str, ...] = tuple(keys._ENGINE_CODE_MODULES)
        findings: List[Finding] = []
        for reg in registrations():
            relpath, line = _registration_anchor(reg.module, project)
            traits = reg.traits

            if traits.predicts_on_btb_miss and traits.needs_history:
                findings.append(
                    Finding(
                        "trait-backstop-history", relpath, line,
                        f"kind '{reg.kind}' declares predicts_on_btb_miss="
                        "True with needs_history=True; on a BTB miss the "
                        "engine has no fetch-time history capture, so only "
                        "history-ignoring kinds may backstop BTB misses",
                    )
                )
            if traits.predicts_on_btb_miss and traits.vectorizable:
                findings.append(
                    Finding(
                        "trait-backstop-history", relpath, line,
                        f"kind '{reg.kind}' declares predicts_on_btb_miss="
                        "True with vectorizable=True; the vector kernel "
                        "replays routed rows only and would drop BTB-miss "
                        "predictions — leave the kind on the stream tier",
                    )
                )
            if traits.vectorizable and not traits.streams_supported:
                findings.append(
                    Finding(
                        "trait-backend-chain", relpath, line,
                        f"kind '{reg.kind}' declares vectorizable=True with "
                        "streams_supported=False; the vector tier consumes "
                        "BranchStreams, so backends() silently drops "
                        "'vector' and the claim is unreachable",
                    )
                )
            for backend in traits.backends():
                kernel = KERNELS.get(backend)
                if (
                    backend not in BACKENDS
                    or kernel is None
                    or index.function(kernel) is None
                ):
                    findings.append(
                        Finding(
                            "trait-backend-chain", relpath, line,
                            f"kind '{reg.kind}': backends() names "
                            f"'{backend}', which maps to no real kernel "
                            "(expected one of "
                            f"{', '.join(sorted(KERNELS))})",
                        )
                    )

            for cls in reg.provides:
                if not cls.__module__.startswith("repro."):
                    continue
                if not _covers(cls.__module__, covered, project):
                    findings.append(
                        Finding(
                            "trait-uncovered-provider", relpath, line,
                            f"kind '{reg.kind}' provides "
                            f"{cls.__module__}.{cls.__qualname__}, but that "
                            "module is not covered by the code-fingerprint "
                            "lists in runner/keys.py; edits to the "
                            "predictor would not invalidate cached results",
                        )
                    )

            for example in reg.spec_examples:
                if example.kind != reg.kind:
                    continue  # the registry checker owns kind mismatches
                try:
                    built = reg.factory(example)
                except Exception as exc:  # noqa: BLE001 - report, don't crash
                    findings.append(
                        Finding(
                            "trait-factory-provides", relpath, line,
                            f"kind '{reg.kind}': factory raised {exc!r} on "
                            f"its own spec example {example.kind}",
                        )
                    )
                    continue
                if reg.provides and not isinstance(built, reg.provides):
                    findings.append(
                        Finding(
                            "trait-factory-provides", relpath, line,
                            f"kind '{reg.kind}': factory built "
                            f"{type(built).__module__}."
                            f"{type(built).__qualname__}, which is not in "
                            "its declared provides tuple",
                        )
                    )
                if (
                    traits.vectorizable
                    and not traits.is_oracle
                    and traits.needs_history
                ):
                    scheme = getattr(built, "scheme", None)
                    if not isinstance(scheme, IndexScheme):
                        findings.append(
                            Finding(
                                "trait-vector-dispatch", relpath, line,
                                f"kind '{reg.kind}' declares vectorizable="
                                "True and needs_history=True, but the built "
                                "predictor exposes no IndexScheme 'scheme' "
                                "attribute — simulate_vector cannot index "
                                "its table",
                            )
                        )
        return findings
