"""Transitive purity: determinism propagated over the call graph.

The lexical :class:`~repro.analysis.determinism.DeterminismChecker` scans
a fixed set of directories.  That shape has a blind spot the result cache
cannot afford: a function under the prediction-kernel roots
(:data:`~repro.analysis.cache_keys.PREDICTION_ROOTS` — the reference
engine, the stream kernel, the vector tier) may *call* a helper that
lives anywhere in the package, and an impurity inside that helper
corrupts cached results exactly as if it sat in the kernel itself.

This pass closes the gap by propagation instead of enumeration: it
computes every function reachable from the kernel roots over the project
call graph (:mod:`repro.analysis.callgraph`) and applies the shared
determinism detectors (:func:`~repro.analysis.determinism.scan_impurities`)
to each one — so the checked surface *follows the code*, not a directory
list.  Deleting a seed guard three calls deep in ``guest/`` or
``workloads/`` is a finding here even though the lexical pass never looks
at those trees.

``purity-transitive``
    An impure construct (unseeded RNG, wall clock, environment read,
    set-order iteration) inside a function transitively reachable from a
    prediction root.  The message names the underlying determinism rule
    and one concrete root-to-function call chain.

Findings anchor at the impure line (suppressing one site silences every
path through it, mirroring the lexical pass).  The call graph resolves
direct calls, ``self`` methods, re-exports, and registry factories; what
it cannot resolve it omits, so this pass under-approximates — it is a
safety net *behind* the lexical checker, not a replacement.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.base import Finding, Project
from repro.analysis.cache_keys import PREDICTION_ROOTS
from repro.analysis.callgraph import project_callgraph
from repro.analysis.determinism import scan_impurities


class TransitivePurityChecker:
    """Flag impurities anywhere the prediction kernel can reach."""

    name = "transitive-purity"
    description = (
        "determinism rules propagated over the call graph: everything "
        "reachable from the prediction-kernel roots must be pure"
    )

    def __init__(
        self,
        root_modules: Sequence[str] = PREDICTION_ROOTS,
        skip_prefixes: Sequence[str] = (),
    ) -> None:
        #: modules whose top-level functions seed the reachability sweep
        self.root_modules = tuple(root_modules)
        #: relpath prefixes to leave to another pass (empty by default:
        #: this pass deliberately re-covers the lexical determinism scope
        #: for kernel-reachable code, so a suppression there must answer
        #: to both rules)
        self.skip_prefixes = tuple(skip_prefixes)

    def run(self, project: Project) -> List[Finding]:
        graph = project_callgraph(project)
        roots = [
            func.qualname
            for module in self.root_modules
            for func in graph.functions_in_module(module)
        ]
        parents = graph.parents_from(roots)
        findings: List[Finding] = []
        # A nested function is both its own graph node and part of its
        # parent's subtree walk (so closures that are only ever passed as
        # callbacks still get scanned); dedupe keeps one finding per site.
        seen_sites: Set[Tuple[str, int, str]] = set()
        for qualname in sorted(parents):
            func = graph.index.function(qualname)
            if func is None:
                continue
            if self.skip_prefixes and func.relpath.startswith(
                self.skip_prefixes
            ):
                continue
            module = graph.index.modules[func.module]
            chain: Optional[List[str]] = None
            for rule, line, message in scan_impurities(
                func.node, module.aliases
            ):
                site = (func.relpath, line, rule)
                if site in seen_sites:
                    continue
                seen_sites.add(site)
                if chain is None:
                    chain = graph.chain_to(parents, qualname)
                via = " -> ".join(
                    part.rsplit(".", 1)[-1] if i else part
                    for i, part in enumerate(chain)
                )
                findings.append(
                    Finding(
                        "purity-transitive", func.relpath, line,
                        f"impure code reachable from a prediction root "
                        f"({rule}): {message} [call chain: {via}]",
                    )
                )
        return findings
