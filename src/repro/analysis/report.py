"""Rendering of lint results for the ``repro lint`` CLI."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.base import Checker, Finding


@dataclass
class LintReport:
    """Findings from one lint run, plus which checkers produced them."""

    findings: List[Finding] = field(default_factory=list)
    checkers: List[str] = field(default_factory=list)
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_text(self) -> str:
        lines = [finding.format() for finding in self.findings]
        summary = (
            f"{len(self.findings)} finding(s)"
            if self.findings
            else "no findings"
        )
        if self.suppressed:
            summary += f" ({self.suppressed} suppressed)"
        summary += f" from {len(self.checkers)} checker(s)"
        lines.append(summary)
        return "\n".join(lines)

    def _sorted_findings(self) -> List[Finding]:
        """Findings in the canonical (path, line, rule) order.

        ``run_lint`` already sorts, but the machine formats re-sort so a
        hand-built report serialises deterministically too.
        """
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.rule)
        )

    def to_json(self) -> str:
        payload: Dict[str, object] = {
            "findings": [
                finding.to_json() for finding in self._sorted_findings()
            ],
            "checkers": list(self.checkers),
            "suppressed": self.suppressed,
            "clean": self.clean,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def to_sarif(self) -> str:
        """Minimal SARIF 2.1.0 — enough for code-scanning upload/diffing.

        One run, one rule entry per distinct rule id, one result per
        finding with a physical location.  Everything is emitted in the
        canonical (path, line, rule) order so the artifact is
        byte-stable across runs.
        """
        findings = self._sorted_findings()
        rule_ids = sorted({finding.rule for finding in findings})
        rule_index = {rule: i for i, rule in enumerate(rule_ids)}
        results = [
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f"src/repro/{finding.path}",
                            },
                            "region": {"startLine": finding.line},
                        }
                    }
                ],
            }
            for finding in findings
        ]
        payload: Dict[str, object] = {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "rules": [
                                {"id": rule} for rule in rule_ids
                            ],
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render(self, fmt: str) -> str:
        if fmt == "json":
            return self.to_json()
        if fmt == "sarif":
            return self.to_sarif()
        if fmt == "text":
            return self.to_text()
        raise ValueError(f"unknown lint format: {fmt!r}")


def describe_checkers(checkers: Sequence[Checker]) -> str:
    """One line per registered checker, for ``repro lint --list``."""
    width = max((len(c.name) for c in checkers), default=0)
    return "\n".join(f"{c.name:<{width}}  {c.description}" for c in checkers)
