"""Rendering of lint results for the ``repro lint`` CLI."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.base import Checker, Finding


@dataclass
class LintReport:
    """Findings from one lint run, plus which checkers produced them."""

    findings: List[Finding] = field(default_factory=list)
    checkers: List[str] = field(default_factory=list)
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_text(self) -> str:
        lines = [finding.format() for finding in self.findings]
        summary = (
            f"{len(self.findings)} finding(s)"
            if self.findings
            else "no findings"
        )
        if self.suppressed:
            summary += f" ({self.suppressed} suppressed)"
        summary += f" from {len(self.checkers)} checker(s)"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        payload: Dict[str, object] = {
            "findings": [finding.to_json() for finding in self.findings],
            "checkers": list(self.checkers),
            "suppressed": self.suppressed,
            "clean": self.clean,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render(self, fmt: str) -> str:
        if fmt == "json":
            return self.to_json()
        if fmt == "text":
            return self.to_text()
        raise ValueError(f"unknown lint format: {fmt!r}")


def describe_checkers(checkers: Sequence[Checker]) -> str:
    """One line per registered checker, for ``repro lint --list``."""
    width = max((len(c.name) for c in checkers), default=0)
    return "\n".join(f"{c.name:<{width}}  {c.description}" for c in checkers)
