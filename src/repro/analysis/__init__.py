"""Domain-specific static analysis for the repro codebase.

``repro lint`` runs every checker in :data:`CHECKERS` over the installed
``repro`` package and reports findings not silenced by a
``# repro-lint: ignore[rule-id]`` comment on the offending line.  See
``docs/ANALYSIS.md`` for the rule catalogue and how to add a pass.

Two kinds of pass coexist in the registry:

* **lexical** passes inspect files independently (determinism, bitwidth,
  hotloop, ...);
* **interprocedural** passes (worker-safety, transitive-purity,
  trait-contract) query the shared project call graph
  (:mod:`repro.analysis.callgraph`), built once per lint run.

One pass — :class:`~repro.analysis.suppressions.StaleSuppressionChecker`
— audits the *other* passes' raw findings; :func:`run_lint` feeds it
through the optional ``finalize(project, raw_findings)`` hook.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.base import (
    SUPPRESS_ALL,
    Checker,
    FinalizingChecker,
    Finding,
    Project,
    SourceFile,
)
from repro.analysis.bitwidth import BitWidthChecker
from repro.analysis.cache_keys import CacheKeyChecker, RegistryChecker
from repro.analysis.determinism import DeterminismChecker
from repro.analysis.hotloop import HotLoopChecker
from repro.analysis.lowering_registry import LoweringRegistryChecker
from repro.analysis.obs_discipline import ObsDisciplineChecker
from repro.analysis.purity import TransitivePurityChecker
from repro.analysis.report import LintReport, describe_checkers
from repro.analysis.suppressions import StaleSuppressionChecker
from repro.analysis.traits_contract import TraitContractChecker
from repro.analysis.vector_hygiene import VectorHygieneChecker
from repro.analysis.worker_safety import WorkerSafetyChecker

__all__ = [
    "SUPPRESS_ALL",
    "Checker",
    "FinalizingChecker",
    "Finding",
    "Project",
    "SourceFile",
    "BitWidthChecker",
    "CacheKeyChecker",
    "RegistryChecker",
    "DeterminismChecker",
    "HotLoopChecker",
    "LoweringRegistryChecker",
    "ObsDisciplineChecker",
    "StaleSuppressionChecker",
    "TraitContractChecker",
    "TransitivePurityChecker",
    "VectorHygieneChecker",
    "WorkerSafetyChecker",
    "LintReport",
    "CHECKERS",
    "describe_checkers",
    "run_lint",
]

#: The registry: adding a pass means listing an instance here.  The
#: stale-suppression audit runs last only by convention — ordering does
#: not matter, because ``run_lint`` hands it every peer's raw findings
#: regardless of position.
CHECKERS: List[Checker] = [
    DeterminismChecker(),
    CacheKeyChecker(),
    RegistryChecker(),
    LoweringRegistryChecker(),
    BitWidthChecker(),
    HotLoopChecker(),
    ObsDisciplineChecker(),
    VectorHygieneChecker(),
    WorkerSafetyChecker(),
    # The sweep service legitimately holds event-loop state — monotonic
    # clocks for uptime/claim ages, asyncio futures, live counters — all
    # of it scheduling-only: cells reach the kernel exclusively through
    # the pool entry points, which worker-safety roots and the lexical
    # determinism scope already police.  Skipping ``service/`` here keeps
    # that telemetry from reading as kernel impurity if a future call
    # chain links a root to a service helper; it must never grow to
    # cover result-producing code (see docs/ANALYSIS.md).
    TransitivePurityChecker(skip_prefixes=("service/",)),
    TraitContractChecker(),
    StaleSuppressionChecker(),
]


def run_lint(
    project: Optional[Project] = None,
    checkers: Optional[Sequence[Checker]] = None,
    only: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run checkers over ``project`` and apply line suppressions.

    ``only`` restricts the run to the named checkers (``repro lint
    --only determinism,worker-safety``); unknown names raise
    ``ValueError`` listing the valid ones.  Suppression comments are
    honoured here, so individual checkers never deal with them.

    A checker exposing ``finalize(project, raw_findings)`` (the
    stale-suppression audit) receives the raw, pre-suppression findings
    of every *registered* peer — peers outside the ``only`` selection
    are still executed to feed the audit, but their findings are not
    reported.
    """
    if project is None:
        project = Project.load()
    registry: Sequence[Checker] = (
        checkers if checkers is not None else CHECKERS
    )
    active: Sequence[Checker] = registry
    if only is not None:
        valid = {checker.name for checker in registry}
        unknown = set(only) - valid
        if unknown:
            raise ValueError(
                f"unknown checker(s): {', '.join(sorted(unknown))} "
                f"(valid: {', '.join(sorted(valid))})"
            )
        wanted = set(only)
        active = [checker for checker in registry if checker.name in wanted]

    report = LintReport(checkers=[checker.name for checker in active])

    def _admit(finding: Finding) -> None:
        source = project.file(finding.path)
        if source is not None and source.suppressed(
            finding.line, finding.rule
        ):
            report.suppressed += 1
        else:
            report.findings.append(finding)

    raw_by_name: Dict[str, List[Finding]] = {}
    for checker in active:
        raw = checker.run(project)
        raw_by_name[checker.name] = raw
        for finding in raw:
            _admit(finding)

    finalizers = [c for c in active if isinstance(c, FinalizingChecker)]
    if finalizers:
        peer_raw: List[Finding] = []
        for checker in registry:
            if isinstance(checker, FinalizingChecker):
                continue
            raw = raw_by_name.get(checker.name)
            if raw is None:
                raw = checker.run(project)
            peer_raw.extend(raw)
        for checker in finalizers:
            for finding in checker.finalize(project, peer_raw):
                # The audit questions suppression comments, so a blanket
                # ignore must not silence it about itself; only an
                # explicit ignore[<audit rule>] does.
                source = project.file(finding.path)
                explicit = (
                    source is not None
                    and finding.rule
                    in source.suppressions.get(finding.line, frozenset())
                )
                if explicit:
                    report.suppressed += 1
                else:
                    report.findings.append(finding)

    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
