"""Domain-specific static analysis for the repro codebase.

``repro lint`` runs every checker in :data:`CHECKERS` over the installed
``repro`` package and reports findings not silenced by a
``# repro-lint: ignore[rule-id]`` comment on the offending line.  See
``docs/ANALYSIS.md`` for the rule catalogue and how to add a pass.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.base import (
    SUPPRESS_ALL,
    Checker,
    Finding,
    Project,
    SourceFile,
)
from repro.analysis.bitwidth import BitWidthChecker
from repro.analysis.cache_keys import CacheKeyChecker, RegistryChecker
from repro.analysis.determinism import DeterminismChecker
from repro.analysis.hotloop import HotLoopChecker
from repro.analysis.obs_discipline import ObsDisciplineChecker
from repro.analysis.report import LintReport, describe_checkers
from repro.analysis.vector_hygiene import VectorHygieneChecker

__all__ = [
    "SUPPRESS_ALL",
    "Checker",
    "Finding",
    "Project",
    "SourceFile",
    "BitWidthChecker",
    "CacheKeyChecker",
    "RegistryChecker",
    "DeterminismChecker",
    "HotLoopChecker",
    "ObsDisciplineChecker",
    "VectorHygieneChecker",
    "LintReport",
    "CHECKERS",
    "describe_checkers",
    "run_lint",
]

#: The registry: adding a pass means listing an instance here.
CHECKERS: List[Checker] = [
    DeterminismChecker(),
    CacheKeyChecker(),
    RegistryChecker(),
    BitWidthChecker(),
    HotLoopChecker(),
    ObsDisciplineChecker(),
    VectorHygieneChecker(),
]


def run_lint(
    project: Optional[Project] = None,
    checkers: Optional[Sequence[Checker]] = None,
    only: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run checkers over ``project`` and apply line suppressions.

    ``only`` restricts the run to the named checkers (``repro lint
    --only determinism``).  Suppression comments are honoured here, so
    individual checkers never deal with them.
    """
    if project is None:
        project = Project.load()
    active: Sequence[Checker] = checkers if checkers is not None else CHECKERS
    if only is not None:
        wanted = set(only)
        unknown = wanted - {checker.name for checker in active}
        if unknown:
            raise ValueError(
                f"unknown checker(s): {', '.join(sorted(unknown))}"
            )
        active = [checker for checker in active if checker.name in wanted]

    report = LintReport(checkers=[checker.name for checker in active])
    for checker in active:
        for finding in checker.run(project):
            source = project.file(finding.path)
            if source is not None and source.suppressed(
                finding.line, finding.rule
            ):
                report.suppressed += 1
                continue
            report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
