"""Determinism lint: sources of run-to-run nondeterminism in the kernel.

PR 1's parallel sweep runner is only sound because a cell's result is a
pure function of (trace, config, code): the persistent result cache replays
stored outputs, and the process pool reassembles results by cell index.
Anything that sneaks wall-clock time, unseeded randomness, environment
state, or hash-randomised iteration order into the simulation kernel breaks
that contract *silently* — cached and fresh runs diverge with no error.

Rules (checked inside ``predictors/``, ``pipeline/``, ``runner/``,
``obs/`` — telemetry must not perturb results, so its few legitimate
wall-clock/environment reads carry explicit suppressions — and
``guest/lowering``, where any nondeterminism would fork the emitted code
out from under the trace fingerprint):

``det-unseeded-random``
    Module-level ``random.*`` / ``numpy.random.*`` calls.  Seeded generator
    construction (``random.Random(seed)``, ``np.random.default_rng(seed)``)
    is allowed; the global-state functions are not.
``det-wall-clock``
    ``time.time()``-family and ``datetime.now()``-family calls.
``det-env-read``
    ``os.environ`` / ``os.getenv`` access.  Results must not depend on the
    environment; knobs that only relocate caches or size worker pools are
    suppressed explicitly at the call site.
``det-set-iteration``
    Iterating a set/frozenset literal or constructor directly: iteration
    order depends on hash randomisation for str-keyed sets.  Sort first.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.astutil import import_aliases, resolve_dotted
from repro.analysis.base import Finding, Project, SourceFile

#: One detected impurity: ``(rule, lineno, message)``.  The transitive
#: purity pass (:mod:`repro.analysis.purity`) consumes these directly,
#: so the lexical and call-graph passes share one set of detectors.
Impurity = Tuple[str, int, str]

#: Package-relative paths the determinism rules apply to.  The switch
#: lowerings are in scope because a lowering must be a pure function of
#: the switch spec: an RNG or environment read there would let the *same*
#: workload fingerprint produce different code across runs.
SCOPE = ("predictors/", "pipeline/", "runner/", "obs/", "guest/lowering")

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.clock",
    }
)
_DATE_LIKE = ("datetime.now", "datetime.utcnow", "datetime.today", "date.today")

#: ``random.<name>`` attributes that are deterministic to *construct*.
_SEEDED_RANDOM_FACTORIES = frozenset({"Random", "SystemRandom"})

#: ``numpy.random.<name>`` factories acceptable when given an explicit seed.
_SEEDED_NUMPY_FACTORIES = frozenset({"default_rng", "RandomState", "Generator"})


def _call_impurity(node: ast.Call, aliases: Dict[str, str]) -> List[Impurity]:
    dotted = resolve_dotted(node.func, aliases)
    if dotted is None:
        return []
    if dotted.startswith("random."):
        tail = dotted.split(".", 1)[1]
        if tail.split(".")[0] not in _SEEDED_RANDOM_FACTORIES:
            return [
                (
                    "det-unseeded-random", node.lineno,
                    f"call to '{dotted}' uses the global (unseeded) RNG; "
                    "construct a seeded random.Random instead",
                )
            ]
        return []
    if dotted.startswith("numpy.random."):
        tail = dotted.rsplit(".", 1)[1]
        if tail in _SEEDED_NUMPY_FACTORIES and (node.args or node.keywords):
            return []
        message = (
            f"call to '{dotted}' draws from numpy's global RNG; "
            "use np.random.default_rng(seed)"
            if tail not in _SEEDED_NUMPY_FACTORIES
            else f"'{dotted}' constructed without an explicit seed"
        )
        return [("det-unseeded-random", node.lineno, message)]
    if dotted in _WALL_CLOCK or dotted.endswith(_DATE_LIKE):
        return [
            (
                "det-wall-clock", node.lineno,
                f"call to '{dotted}' reads the wall clock; results must "
                "not depend on time",
            )
        ]
    if dotted == "os.getenv":
        return [
            (
                "det-env-read", node.lineno,
                "os.getenv() makes behaviour depend on the environment",
            )
        ]
    return []


def _environ_impurity(
    node: ast.Attribute, aliases: Dict[str, str]
) -> List[Impurity]:
    if node.attr != "environ":
        return []
    dotted = resolve_dotted(node, aliases)
    if dotted != "os.environ":
        return []
    return [
        (
            "det-env-read", node.lineno,
            "os.environ access makes behaviour depend on the environment",
        )
    ]


def _set_iter_impurity(iter_node: ast.AST) -> List[Impurity]:
    reason: Optional[str] = None
    if isinstance(iter_node, (ast.Set, ast.SetComp)):
        reason = "a set literal"
    elif (
        isinstance(iter_node, ast.Call)
        and isinstance(iter_node.func, ast.Name)
        and iter_node.func.id in ("set", "frozenset")
    ):
        reason = f"a {iter_node.func.id}() value"
    if reason is None:
        return []
    lineno = getattr(iter_node, "lineno", 1)
    return [
        (
            "det-set-iteration", lineno,
            f"iterating {reason} directly: set order varies under hash "
            "randomisation; wrap in sorted(...)",
        )
    ]


def scan_impurities(root: ast.AST, aliases: Dict[str, str]) -> List[Impurity]:
    """Every determinism hazard under ``root`` as ``(rule, line, message)``.

    ``root`` may be a whole module (the lexical checker) or a single
    function definition (the transitive purity pass); ``aliases`` are the
    defining module's import aliases either way.
    """
    impurities: List[Impurity] = []
    for node in ast.walk(root):
        if isinstance(node, ast.Call):
            impurities.extend(_call_impurity(node, aliases))
        elif isinstance(node, ast.Attribute):
            impurities.extend(_environ_impurity(node, aliases))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            impurities.extend(_set_iter_impurity(node.iter))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                impurities.extend(_set_iter_impurity(generator.iter))
    return impurities


class DeterminismChecker:
    """Flag nondeterminism hazards in the simulation/runner code."""

    name = "determinism"
    description = (
        "unseeded RNG, wall-clock, os.environ, and set-iteration hazards in "
        "predictors/, pipeline/, runner/, obs/, and guest/lowering"
    )

    def __init__(self, scope: Sequence[str] = SCOPE) -> None:
        self.scope = tuple(scope)

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for source in project.files_under(*self.scope):
            findings.extend(self.check_file(source))
        return findings

    # ------------------------------------------------------------------
    def check_file(self, source: SourceFile) -> List[Finding]:
        aliases = import_aliases(source.tree)
        return [
            Finding(rule, source.relpath, line, message)
            for rule, line, message in scan_impurities(source.tree, aliases)
        ]
