"""Core data model of the static-analysis subsystem.

A *checker* inspects the project (parsed source files plus, for some
checkers, the live package) and emits :class:`Finding` objects.  Findings
are suppressed line-by-line with ``# repro-lint: ignore[rule-id]``
comments (or ``# repro-lint: ignore`` to silence every rule on a line);
suppression is applied centrally by :func:`repro.analysis.run_lint`, so
checkers never need to know about it.

Checkers are registered in :data:`repro.analysis.CHECKERS`; adding a pass
means writing a class with ``name``/``description``/``run`` and listing it
there (see ``docs/ANALYSIS.md``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

#: Sentinel rule name meaning "every rule" in a suppression set.
SUPPRESS_ALL = "*"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\- ]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a file and line."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


def _parse_suppressions(text: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule names suppressed on that line.

    Uses the tokenizer (not a regex over raw lines) so that ``#`` inside
    string literals never counts as a comment.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                names = frozenset({SUPPRESS_ALL})
            else:
                names = frozenset(
                    part.strip() for part in rules.split(",") if part.strip()
                )
            line = token.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | names
    except tokenize.TokenError:
        pass  # syntactically broken file; the AST parse will report it
    return suppressions


@dataclass
class SourceFile:
    """One parsed source file plus its suppression comments."""

    relpath: str
    text: str
    tree: ast.Module
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def from_text(cls, relpath: str, text: str) -> "SourceFile":
        return cls(
            relpath=relpath,
            text=text,
            tree=ast.parse(text, filename=relpath),
            suppressions=_parse_suppressions(text),
        )

    @classmethod
    def from_path(cls, path: Path, relpath: str) -> "SourceFile":
        return cls.from_text(relpath, path.read_text(encoding="utf-8"))

    def suppressed(self, line: int, rule: str) -> bool:
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return SUPPRESS_ALL in rules or rule in rules


class Project:
    """The analyzed source tree: every ``.py`` file under one package root.

    ``relpath`` values use posix separators relative to the package root
    (e.g. ``predictors/engine.py``), which is also how findings are
    reported.
    """

    def __init__(self, root: Path, files: List[SourceFile]) -> None:
        self.root = root
        self.files = files
        self._by_relpath = {f.relpath: f for f in files}

    @classmethod
    def load(cls, root: Optional[Union[str, Path]] = None) -> "Project":
        """Load the installed ``repro`` package (or an explicit root)."""
        if root is None:
            import repro

            root = Path(repro.__file__).parent
        root = Path(root)
        files = [
            SourceFile.from_path(path, path.relative_to(root).as_posix())
            for path in sorted(root.rglob("*.py"))
        ]
        return cls(root, files)

    def file(self, relpath: str) -> Optional[SourceFile]:
        return self._by_relpath.get(relpath)

    def files_under(self, *prefixes: str) -> List[SourceFile]:
        """Files whose relpath starts with any of the given prefixes."""
        return [
            f
            for f in self.files
            if any(f.relpath.startswith(prefix) for prefix in prefixes)
        ]


class Checker(Protocol):
    """Interface every analysis pass implements."""

    name: str
    description: str

    def run(self, project: Project) -> List[Finding]:
        """Return every finding in the project (suppression is applied
        by the caller, not the checker)."""
        ...  # pragma: no cover - protocol body


@runtime_checkable
class FinalizingChecker(Protocol):
    """A pass that audits the *other* passes' raw findings.

    ``run_lint`` collects the pre-suppression findings of every
    registered non-finalizing checker once per run and hands them to
    ``finalize``; the stale-suppression audit is the one implementation.
    """

    name: str
    description: str

    def run(self, project: Project) -> List[Finding]:
        ...  # pragma: no cover - protocol body

    def finalize(
        self, project: Project, raw_findings: Sequence[Finding]
    ) -> List[Finding]:
        """Findings derived from peers' raw output."""
        ...  # pragma: no cover - protocol body
