"""Bit-width/mask lint: declared widths must match the masks applied.

The paper's tables live or die on exact indexing semantics: a history
register that claims ``bits`` bits but masks with a different width, or a
table subscript that can exceed the declared table size, silently changes
every misprediction rate (the same class of hazard that hardware
reverse-engineering work has to pin down bit-by-bit).  This pass encodes
the conventions the predictor code uses:

``bitwidth-mask-form``
    An attribute whose name ends in ``mask`` assigned something other than
    a recognised all-ones pattern: ``(1 << W) - 1``, ``S - 1`` where ``S``
    is provably a power of two in the same function (assigned ``1 << W``,
    guarded by an ``S & (S - 1)`` power-of-two check, or an exact divisor
    of a guarded value), or a conditional between those and ``None``.
``bitwidth-mask-mismatch``
    A mask whose width source disagrees with the width the name promises —
    ``self._mask = (1 << bits_per_target) - 1`` on a register whose width
    field is ``bits``, or a constant-width mask in a function that takes
    the width as a parameter (the "widened the register, forgot the mask"
    bug).
``bitwidth-unmasked-index``
    A subscript into a sized table (an attribute built as ``[x] * n`` or a
    list comprehension) whose index is not visibly bounded: masked with a
    ``*mask*`` value, reduced ``% n``, a ``range()`` loop variable, or the
    result of a trusted index helper (``index`` / ``_locate`` /
    ``_lookup`` — whose own returns this pass also verifies).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import attribute_chain, is_constant_one
from repro.analysis.base import Finding, Project, SourceFile

#: Package-relative directories the bit-width rules apply to.
SCOPE = ("predictors/",)

#: Methods whose results are trusted as bounded table indices; their own
#: return expressions are verified by :func:`_check_trusted_returns`.
TRUSTED_INDEX_METHODS = frozenset({"index", "_locate", "_lookup"})

#: Width-attribute names each mask name is expected to derive from.
#: Mask names not listed here get the form check only.
EXPECTED_WIDTHS: Dict[str, Tuple[str, ...]] = {
    "mask": ("bits", "history_bits", "table_size", "size"),
    "target_mask": ("bits_per_target",),
    "hist_mask": ("history_bits",),
    "addr_mask": ("address_bits",),
    "history_mask": ("history_bits", "bits"),
    "tag_mask": ("tag_bits",),
    "index_mask": ("table_bits", "index_bits"),
    "set_mask": ("sets", "n_sets", "set_bits"),
    "local_mask": ("history_bits",),
}


def _terminal_name(node: ast.AST) -> Optional[str]:
    """``self.a.b`` -> ``b``; ``x`` -> ``x``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_mask_name(node: ast.AST) -> bool:
    name = _terminal_name(node)
    return name is not None and "mask" in name.lower()


def _env_key(node: ast.AST) -> Optional[str]:
    """Key for the per-function assignment environment (``x``, ``self.x``)."""
    if isinstance(node, ast.Name):
        return node.id
    chain = attribute_chain(node)
    return chain


class _FunctionEnv:
    """Assignments, guards, and bounded names within one function."""

    def __init__(self, func: ast.FunctionDef) -> None:
        self.assignments: Dict[str, ast.expr] = {}
        self.po2_guarded: Set[str] = set()
        self.bounded: Set[str] = set()
        self.range_names: Set[str] = set()
        self._scan(func)

    def _scan(self, func: ast.FunctionDef) -> None:
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                self._record(node.targets[0], node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._record(node.target, node.value)
            elif isinstance(node, ast.If) and _contains_raise(node):
                self.po2_guarded.update(_po2_guard_names(node.test))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._record_loop(node)

    def _record(self, target: ast.expr, value: ast.expr) -> None:
        key = _env_key(target)
        if key is not None:
            self.assignments[key] = value
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
                    and value.func.id == "range":
                self.range_names.add(key)
        elif isinstance(target, ast.Tuple) and isinstance(value, ast.Call):
            callee = _terminal_name(value.func)
            if callee in TRUSTED_INDEX_METHODS:
                for element in target.elts:
                    element_key = _env_key(element)
                    if element_key is not None:
                        self.bounded.add(element_key)

    def _record_loop(self, node: ast.For) -> None:
        iterator = node.iter
        bounded_targets: List[ast.expr] = []
        if isinstance(iterator, ast.Call) and isinstance(iterator.func, ast.Name):
            func_name = iterator.func.id
            if func_name == "range":
                bounded_targets = _flatten_targets(node.target)
            elif func_name in ("reversed", "enumerate") and iterator.args:
                inner = iterator.args[0]
                inner_is_range = (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id == "range"
                ) or (_env_key(inner) in self.range_names)
                if func_name == "reversed" and inner_is_range:
                    bounded_targets = _flatten_targets(node.target)
                elif func_name == "enumerate":
                    targets = _flatten_targets(node.target)
                    bounded_targets = targets[:1]
        elif _env_key(iterator) in self.range_names:
            bounded_targets = _flatten_targets(node.target)
        for target in bounded_targets:
            key = _env_key(target)
            if key is not None:
                self.bounded.add(key)


def _flatten_targets(target: ast.expr) -> List[ast.expr]:
    if isinstance(target, ast.Tuple):
        return list(target.elts)
    return [target]


def _contains_raise(node: ast.If) -> bool:
    return any(isinstance(stmt, ast.Raise) for stmt in node.body)


def _po2_guard_names(test: ast.expr) -> Set[str]:
    """Names N validated by an ``N & (N - 1)`` power-of-two guard."""
    names: Set[str] = set()
    for node in ast.walk(test):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitAnd):
            left_key = _env_key(node.left)
            if left_key is None:
                continue
            right = node.right
            if (
                isinstance(right, ast.BinOp)
                and isinstance(right.op, ast.Sub)
                and _env_key(right.left) == left_key
                and is_constant_one(right.right)
            ):
                names.add(left_key)
    return names


class BitWidthChecker:
    """Verify mask/width agreement and bounded table indexing."""

    name = "bitwidth"
    description = (
        "declared bit widths must match applied masks, and sized-table "
        "subscripts must be provably in range (predictors/)"
    )

    def __init__(self, scope: Sequence[str] = SCOPE) -> None:
        self.scope = tuple(scope)

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for source in project.files_under(*self.scope):
            findings.extend(self.check_file(source))
        return findings

    # ------------------------------------------------------------------
    def check_file(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(source, node))
        return findings

    def _check_class(self, source: SourceFile,
                     cls: ast.ClassDef) -> List[Finding]:
        findings: List[Finding] = []
        tables = _sized_tables(cls)
        for item in ast.walk(cls):
            if not isinstance(item, ast.FunctionDef):
                continue
            env = _FunctionEnv(item)
            findings.extend(self._check_masks(source, item, env))
            findings.extend(self._check_subscripts(source, item, env, tables))
            if item.name in TRUSTED_INDEX_METHODS:
                findings.extend(
                    self._check_trusted_returns(source, item, env, tables)
                )
        return findings

    # ------------------------------------------------------------------
    # Mask form and width consistency
    # ------------------------------------------------------------------
    def _check_masks(self, source: SourceFile, func: ast.FunctionDef,
                     env: _FunctionEnv) -> List[Finding]:
        findings: List[Finding] = []
        params = {arg.arg for arg in func.args.args}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            mask_name = _terminal_name(target)
            if mask_name is None or not mask_name.lower().endswith("mask"):
                continue
            ok, width = _mask_expr_ok(value, env)
            if not ok:
                findings.append(
                    Finding(
                        "bitwidth-mask-form", source.relpath, node.lineno,
                        f"'{mask_name}' is not a recognised all-ones mask "
                        "pattern ((1 << width) - 1, or size - 1 for a "
                        "power-of-two size)",
                    )
                )
                continue
            findings.extend(
                self._check_width_name(source, node, mask_name, width, params)
            )
        return findings

    def _check_width_name(self, source: SourceFile, node: ast.stmt,
                          mask_name: str, width: Optional[ast.expr],
                          params: Set[str]) -> List[Finding]:
        key = mask_name.lstrip("_").lower()
        expected = EXPECTED_WIDTHS.get(key)
        if width is None:
            return []  # power-of-two provenance: no width name to compare
        if isinstance(width, ast.Constant):
            if expected is not None and any(p in expected for p in params):
                culprit = ", ".join(sorted(p for p in params if p in expected))
                return [
                    Finding(
                        "bitwidth-mask-mismatch", source.relpath, node.lineno,
                        f"'{mask_name}' hardcodes a constant width although "
                        f"this function takes '{culprit}'; widening the "
                        "register would not widen the mask",
                    )
                ]
            return []
        width_name = _terminal_name(width)
        if width_name is None or expected is None:
            return []
        if width_name not in expected:
            return [
                Finding(
                    "bitwidth-mask-mismatch", source.relpath, node.lineno,
                    f"'{mask_name}' is derived from '{width_name}' but its "
                    f"name promises one of {sorted(expected)}; the declared "
                    "width and the applied mask disagree",
                )
            ]
        return []

    # ------------------------------------------------------------------
    # Sized-table subscripts
    # ------------------------------------------------------------------
    def _check_subscripts(self, source: SourceFile, func: ast.FunctionDef,
                          env: _FunctionEnv,
                          tables: Set[str]) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Subscript):
                continue
            chain = attribute_chain(node.value)
            if chain is None or not chain.startswith("self."):
                continue
            if chain.split(".", 1)[1] not in tables:
                continue
            if isinstance(node.slice, ast.Slice):
                continue
            if not _bounded_expr(node.slice, env):
                findings.append(
                    Finding(
                        "bitwidth-unmasked-index", source.relpath, node.lineno,
                        f"index into sized table '{chain}' is not visibly "
                        "bounded (no mask, modulo, range variable, or "
                        "trusted index helper)",
                    )
                )
        return findings

    def _check_trusted_returns(self, source: SourceFile,
                               func: ast.FunctionDef, env: _FunctionEnv,
                               tables: Set[str]) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            head = value.elts[0] if (
                isinstance(value, ast.Tuple) and value.elts
            ) else value
            if _bounded_expr(head, env):
                continue
            if isinstance(head, ast.Subscript) and _bounded_expr(
                head.slice, env
            ):
                continue  # returning a bucket fetched with a bounded index
            findings.append(
                Finding(
                    "bitwidth-unmasked-index", source.relpath, node.lineno,
                    f"trusted index helper '{func.name}' returns a value "
                    "that is not visibly bounded",
                )
            )
        return findings


def _sized_tables(cls: ast.ClassDef) -> Set[str]:
    """Attribute names assigned fixed-size list storage anywhere in ``cls``."""
    tables: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        chain = attribute_chain(target)
        if chain is None or not chain.startswith("self."):
            continue
        is_repeat = (
            isinstance(value, ast.BinOp)
            and isinstance(value.op, ast.Mult)
            and (isinstance(value.left, ast.List)
                 or isinstance(value.right, ast.List))
        )
        if is_repeat or isinstance(value, ast.ListComp):
            tables.add(chain.split(".", 1)[1])
    return tables


def _mask_expr_ok(expr: ast.expr, env: _FunctionEnv
                  ) -> Tuple[bool, Optional[ast.expr]]:
    """Whether ``expr`` is an all-ones mask; returns its width expression.

    A ``None`` width with ``ok=True`` means the mask is ``size - 1`` for a
    size whose power-of-two-ness is established without naming a width.
    """
    if isinstance(expr, ast.IfExp):
        branches = [expr.body, expr.orelse]
        width: Optional[ast.expr] = None
        for branch in branches:
            if isinstance(branch, ast.Constant) and branch.value is None:
                continue
            ok, branch_width = _mask_expr_ok(branch, env)
            if not ok:
                return False, None
            width = width or branch_width
        return True, width
    if not (isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Sub)
            and is_constant_one(expr.right)):
        return False, None
    left = expr.left
    if (
        isinstance(left, ast.BinOp)
        and isinstance(left.op, ast.LShift)
        and is_constant_one(left.left)
    ):
        return True, left.right
    size_key = _env_key(left)
    if size_key is None:
        return False, None
    return _po2_size(size_key, env)


def _po2_size(size_key: str, env: _FunctionEnv,
              depth: int = 0) -> Tuple[bool, Optional[ast.expr]]:
    """Whether ``size_key`` names a provable power of two in this function."""
    if size_key in env.po2_guarded:
        return True, None
    value = env.assignments.get(size_key)
    if value is None or depth > 4:
        return False, None
    if (
        isinstance(value, ast.BinOp)
        and isinstance(value.op, ast.LShift)
        and is_constant_one(value.left)
    ):
        return True, value.right
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.FloorDiv):
        # An exact divisor of a power of two is a power of two; exactness
        # is the construction invariant (entries % assoc guards).
        dividend_key = _env_key(value.left)
        if dividend_key is not None:
            ok, _ = _po2_size(dividend_key, env, depth + 1)
            return ok, None
    if isinstance(value, ast.Constant) and isinstance(value.value, int):
        n = value.value
        return n > 0 and n & (n - 1) == 0, None
    return False, None


def _bounded_expr(expr: ast.expr, env: _FunctionEnv) -> bool:
    """Whether an index expression is visibly bounded."""
    if isinstance(expr, ast.Constant):
        return expr.value is None or isinstance(expr.value, int)
    if isinstance(expr, ast.Name):
        if expr.id in env.bounded:
            return True
        assigned = env.assignments.get(expr.id)
        if assigned is not None and not isinstance(assigned, ast.Name):
            return _bounded_expr(assigned, env)
        return False
    if isinstance(expr, ast.BinOp):
        if isinstance(expr.op, ast.BitAnd):
            return _is_mask_name(expr.left) or _is_mask_name(expr.right)
        if isinstance(expr.op, ast.Mod):
            return True
        if isinstance(expr.op, (ast.BitOr, ast.BitXor)):
            return (_bounded_expr(expr.left, env)
                    and _bounded_expr(expr.right, env))
        if isinstance(expr.op, ast.LShift):
            return _bounded_expr(expr.left, env)
        return False
    if isinstance(expr, ast.Call):
        callee = _terminal_name(expr.func)
        return callee in TRUSTED_INDEX_METHODS
    if isinstance(expr, ast.IfExp):
        return (_bounded_expr(expr.body, env)
                and _bounded_expr(expr.orelse, env))
    return False
