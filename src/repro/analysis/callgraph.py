"""Approximate intra-package call graph with reachability queries.

Built on :class:`~repro.analysis.symbols.SymbolIndex`, this module gives
the interprocedural checkers the one question lexical passes cannot
answer: *which code runs when this function runs?*  Edges are collected
per function definition:

* **direct calls** — ``helper(...)`` resolves through enclosing-function
  nesting, module locals, then import aliases (with package re-export
  chasing), so ``from repro.predictors import simulate_vector`` followed
  by ``simulate_vector(...)`` lands on
  ``repro.predictors.vector.simulate_vector``;
* **method calls through self/cls** — ``self.m(...)`` resolves against
  the enclosing class, walking project-resolvable base classes;
* **constructor calls** — ``ClassName(...)`` adds an edge to the class
  *and* its ``__init__`` when one is defined;
* **registered factories** — any ``<expr>.factory(...)`` call fans out
  to every function passed as ``factory=`` in a
  :func:`repro.predictors.registry.register` call found in the project,
  so code that builds predictors through the registry (the fetch engine,
  the vector tier) reaches the concrete predictor constructors.

Unresolvable calls (dynamic dispatch on arbitrary objects, externals)
produce no edge — the graph is deliberately an *under*-approximation,
which is the right polarity for "flag what worker code can reach"
(missed edges cost coverage, never false findings about unreachable
code).  The one exception is the factory fan-out above, which
over-approximates on purpose: a registry-built predictor could be any
registered kind.

The graph is memoised per :class:`~repro.analysis.base.Project` so the
checkers that share one lint run also share one graph build.
"""

from __future__ import annotations

import ast
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import Project
from repro.analysis.symbols import (
    FunctionInfo,
    ModuleInfo,
    SymbolIndex,
)


def _own_statements(func: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested definitions.

    Nested functions and classes are call-graph nodes of their own; the
    enclosing function only gets an edge where it *calls* (or constructs)
    them.
    """
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)


def _dotted_call_name(node: ast.expr) -> Optional[str]:
    """Render ``a.b.c`` call targets rooted at a plain name, else ``None``."""
    parts: List[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _registered_factories(index: SymbolIndex) -> Tuple[str, ...]:
    """Qualnames of every function passed as ``factory=`` to ``register``.

    Matches calls to a name that resolves to (or is literally named)
    ``register`` imported from the predictor registry, project-wide.
    """
    targets: Set[str] = set()
    for module in index.modules.values():
        for node in ast.walk(module.source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_call_name(node.func)
            if name is None:
                continue
            resolved = index.resolve_in_module(module, name)
            if resolved != "repro.predictors.registry.register":
                continue
            for keyword in node.keywords:
                if keyword.arg != "factory":
                    continue
                factory_name = _dotted_call_name(keyword.value)
                if factory_name is None:
                    continue
                factory = index.resolve_in_module(module, factory_name)
                if factory is not None and factory in index.functions:
                    targets.add(factory)
    return tuple(sorted(targets))


@dataclass
class CallGraph:
    """Function-qualname call graph over one project."""

    index: SymbolIndex
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    #: fan-out targets of ``<expr>.factory(...)`` calls
    factory_targets: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        index = SymbolIndex.build(project)
        graph = cls(index=index, factory_targets=_registered_factories(index))
        for func in index.functions.values():
            graph.edges[func.qualname] = graph._function_edges(func)
        return graph

    def _function_edges(self, func: FunctionInfo) -> Set[str]:
        module = self.index.modules[func.module]
        out: Set[str] = set()
        for node in _own_statements(func.node):
            if not isinstance(node, ast.Call):
                continue
            out.update(self._call_targets(module, func, node))
        return out

    def _call_targets(
        self, module: ModuleInfo, func: FunctionInfo, call: ast.Call
    ) -> Set[str]:
        targets: Set[str] = set()
        # Registry factories: ``reg.factory(cfg)`` / ``registration(k).factory(cfg)``
        # could build any registered kind.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "factory"
        ):
            targets.update(self.factory_targets)
        name = _dotted_call_name(call.func)
        if name is None:
            return targets
        head, _, rest = name.partition(".")
        if head in ("self", "cls") and func.class_name is not None:
            if rest and "." not in rest:
                cls_info = module.classes.get(func.class_name)
                if cls_info is not None:
                    method = self.index.resolve_method(cls_info, rest)
                    if method is not None:
                        targets.add(method.qualname)
            return targets
        resolved = self.index.resolve_in_module(
            module, name, enclosing_function=func
        )
        if resolved is None:
            return targets
        if resolved in self.index.classes:
            # Constructing a class runs its __init__ (when it defines one).
            targets.add(resolved)
            ctor = self.index.resolve_method(
                self.index.classes[resolved], "__init__"
            )
            if ctor is not None:
                targets.add(ctor.qualname)
        elif resolved in self.index.functions:
            targets.add(resolved)
        return targets

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def has_edge(self, caller: str, callee: str) -> bool:
        return callee in self.edges.get(caller, set())

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Every qualname reachable from ``roots`` (roots included)."""
        seen: Set[str] = set()
        stack = [root for root in roots]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.edges.get(node, ()))
        return seen

    def parents_from(self, roots: Iterable[str]) -> Dict[str, Optional[str]]:
        """BFS parent map from ``roots``: node -> the caller it was first
        reached through (``None`` for the roots themselves).

        One traversal serves every "how is X reachable?" message a checker
        wants to print; materialise a chain with :func:`chain_to`.
        """
        parents: Dict[str, Optional[str]] = {}
        frontier: List[str] = []
        for root in sorted(set(roots)):
            parents[root] = None
            frontier.append(root)
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                for callee in sorted(self.edges.get(node, ())):
                    if callee in parents:
                        continue
                    parents[callee] = node
                    next_frontier.append(callee)
            frontier = next_frontier
        return parents

    @staticmethod
    def chain_to(parents: Dict[str, Optional[str]], node: str) -> List[str]:
        """The root-to-``node`` call chain recorded in ``parents``."""
        chain = [node]
        while True:
            parent = parents.get(chain[-1])
            if parent is None:
                break
            chain.append(parent)
        return list(reversed(chain))

    def path(self, src: str, dst: str) -> Optional[List[str]]:
        """Shortest call path from ``src`` to ``dst`` (BFS), or ``None``."""
        if src == dst:
            return [src]
        parents: Dict[str, str] = {}
        frontier = [src]
        seen = {src}
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                for callee in sorted(self.edges.get(node, ())):
                    if callee in seen:
                        continue
                    seen.add(callee)
                    parents[callee] = node
                    if callee == dst:
                        chain = [dst]
                        while chain[-1] != src:
                            chain.append(parents[chain[-1]])
                        return list(reversed(chain))
                    next_frontier.append(callee)
            frontier = next_frontier
        return None

    def functions_in_module(self, module: str) -> List[FunctionInfo]:
        """Every function defined in ``module``, in source order."""
        info = self.index.modules.get(module)
        if info is None:
            return []
        return sorted(info.functions.values(), key=lambda f: f.lineno)


_GRAPH_CACHE: "weakref.WeakKeyDictionary[Project, CallGraph]" = (
    weakref.WeakKeyDictionary()
)


def project_callgraph(project: Project) -> CallGraph:
    """The (memoised) call graph of ``project``.

    Both interprocedural checkers run inside one ``repro lint``
    invocation; sharing the build keeps the whole suite comfortably
    inside the CI runtime guard.
    """
    graph = _GRAPH_CACHE.get(project)
    if graph is None:
        graph = CallGraph.build(project)
        _GRAPH_CACHE[project] = graph
    return graph
