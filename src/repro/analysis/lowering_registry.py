"""Lowering-registry discipline: mirror of the predictor-registry rules.

The switch-lowering registry (:mod:`repro.guest.lowering`) is the same
kind of declarative surface as the predictor registry: the CLI lists it
(``repro workloads --lowerings``), workload names embed it
(``perl@if_tree``), and trace fingerprints hash over it.  A lowering that
exists but is not registered is unreachable from all of that; a registered
lowering without a label or a working spec example renders blank in the
CLI and has no smoke-test hook.

Rules:

``lowering-unregistered-pass``
    A concrete :class:`~repro.guest.lowering.LoweringPass` subclass in the
    installed package that the registry cannot name.
``lowering-missing-label``
    A registered lowering whose ``label`` is empty (the CLI listing would
    print a blank line).
``lowering-missing-spec-example``
    A registered lowering without a ``spec_example`` — nothing documents
    or smoke-tests a representative ``switch(...)`` call for it.
``lowering-spec-example-broken``
    The ``spec_example`` does not lower cleanly in a scratch builder: the
    documented example is wrong.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.base import Finding, Project
from repro.analysis.cache_keys import _class_anchor, _concrete_subclasses


def _example_exercises(name: str, example: Dict[str, object]) -> Optional[str]:
    """Lower ``example`` in a scratch builder; the error message if it fails."""
    from repro.guest.builder import BuilderError, ProgramBuilder

    cases = example.get("cases", 4)
    n_cases = cases if isinstance(cases, int) else 4
    kind = example.get("kind", "jump")
    weights = example.get("weights")
    try:
        builder = ProgramBuilder(lowering=name)
        labels = [f"case_{i}" for i in range(n_cases)]
        table = builder.switch_table(labels)
        builder.switch(
            5, table, kind=str(kind),
            weights=[float(w) for w in weights]
            if isinstance(weights, (list, tuple)) else None,
            stem="lint_sw",
        )
        for label in labels:
            builder.label(label)
            builder.halt()
        builder.build()
    except (BuilderError, TypeError, ValueError) as exc:
        return str(exc)
    return None


class LoweringRegistryChecker:
    """Every switch lowering must be registered, labelled, and exemplified."""

    name = "lowering-registry"
    description = (
        "LoweringPass subclasses must be registered with a label and a "
        "spec example that lowers cleanly"
    )

    def run(self, project: Project) -> List[Finding]:
        from repro.guest.lowering import (
            LoweringPass,
            get_lowering,
            lowering_names,
        )

        findings: List[Finding] = []
        registered = {
            type(get_lowering(name)) for name in lowering_names()
        }

        for cls in _concrete_subclasses(LoweringPass):
            if cls in registered or not cls.__module__.startswith("repro."):
                continue
            relpath, line = _class_anchor(cls, project)
            findings.append(
                Finding(
                    "lowering-unregistered-pass", relpath, line,
                    f"{cls.__module__}.{cls.__qualname__} subclasses "
                    "LoweringPass but is not registered; decorate it with "
                    "@register_lowering so workloads and the CLI can "
                    "reach it",
                )
            )

        for name in lowering_names():
            lowering = get_lowering(name)
            relpath, line = _class_anchor(type(lowering), project)
            if not lowering.label:
                findings.append(
                    Finding(
                        "lowering-missing-label", relpath, line,
                        f"lowering '{name}' has no label; 'repro workloads "
                        "--lowerings' would render it blank",
                    )
                )
            if not lowering.spec_example:
                findings.append(
                    Finding(
                        "lowering-missing-spec-example", relpath, line,
                        f"lowering '{name}' has no spec_example; nothing "
                        "documents or smoke-tests a representative "
                        "switch() for it",
                    )
                )
                continue
            error = _example_exercises(name, dict(lowering.spec_example))
            if error is not None:
                findings.append(
                    Finding(
                        "lowering-spec-example-broken", relpath, line,
                        f"lowering '{name}': its spec_example does not "
                        f"lower cleanly ({error})",
                    )
                )
        return findings


__all__ = ["LoweringRegistryChecker"]
