"""Worker-safety lint: the fork/spawn boundary of the process pool.

The sweep runner promises bit-identical results regardless of ``jobs``.
That contract survives only if the code a pool worker executes is safe to
replicate into N processes: no hidden process-shared state, nothing that
mutates the inherited environment, no global RNG, no file handle opened
at import time and silently duplicated by ``fork``.  Today's hazards are
contained; the planned sweep service (ROADMAP item 1) will keep workers
alive across requests, at which point any such leak becomes a cross-
request race.

This is an **interprocedural** pass: it computes everything reachable
from the worker entry points (:data:`ENTRY_POINTS` — the pool initializer
and the chunk runner in ``runner/pool.py``) over the project call graph
(:mod:`repro.analysis.callgraph`) and applies the rules to that closure,
wherever the functions live.

``worker-global-write``
    A ``global`` declaration, or a mutation (subscript/attribute store,
    ``.append``/``.update``-style call) whose target resolves to a
    module-level name — including through one local alias hop
    (``state = _WORKER_STATE``).  Module state written by worker code is
    per-process and invisible to the parent; deliberate per-worker memos
    carry suppressions explaining why they cannot leak into results.
``worker-env-mutate``
    Assigning/deleting ``os.environ[...]``, calling a mutating method on
    ``os.environ``, or ``os.putenv``/``os.unsetenv``.  Mutating the
    environment in a worker races with concurrent reads under ``fork``
    and silently diverges from the parent under ``spawn``.
``worker-unseeded-random``
    Global-RNG ``random.*`` / ``numpy.random.*`` use (the determinism
    checker's detector, applied to the worker closure — which extends
    beyond that checker's lexical scope).
``worker-import-open``
    An ``open(...)`` call executed at import time in any module that
    defines worker-reachable code: the handle (and its offset) is
    duplicated into every forked worker.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.base import Finding, Project
from repro.analysis.callgraph import (
    CallGraph,
    _own_statements,
    project_callgraph,
)
from repro.analysis.determinism import _call_impurity
from repro.analysis.symbols import FunctionInfo, ModuleInfo

#: Qualnames every pool worker executes: the initializer installs the
#: per-worker state/plugins/ledger shard, the chunk runner simulates
#: cells.  Everything they can reach runs inside worker processes.
ENTRY_POINTS: Tuple[str, ...] = (
    "repro.runner.pool._init_worker",
    "repro.runner.pool._run_chunk",
    # The sweep service submits single cells through the same pool; its
    # worker-side entry point must obey the same closure rules.
    "repro.runner.pool._service_cell",
)

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "clear", "remove", "discard", "write",
    }
)

#: ``os.*`` calls that mutate the process environment.
_ENV_MUTATORS = frozenset({"os.putenv", "os.unsetenv"})


def _root_name(node: ast.AST) -> "str | None":
    """The root ``Name`` of a subscript/attribute chain, if any."""
    current = node
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _is_environ(node: ast.AST, aliases: Dict[str, str]) -> bool:
    """Whether ``node`` denotes ``os.environ`` (through import aliases)."""
    from repro.analysis.astutil import resolve_dotted

    return (
        isinstance(node, ast.Attribute)
        and resolve_dotted(node, aliases) == "os.environ"
    ) or (
        isinstance(node, ast.Name)
        and aliases.get(node.id) == "os.environ"
    )


class WorkerSafetyChecker:
    """Flag process-shared-state hazards reachable from pool workers."""

    name = "worker-safety"
    description = (
        "module-global writes, os.environ mutation, unseeded RNG, and "
        "import-time file handles reachable from the pool worker entry "
        "points"
    )

    def __init__(self, entry_points: Sequence[str] = ENTRY_POINTS) -> None:
        self.entry_points = tuple(entry_points)

    def run(self, project: Project) -> List[Finding]:
        graph = project_callgraph(project)
        reachable = graph.reachable(self.entry_points)
        findings: List[Finding] = []
        modules_seen: Set[str] = set()
        for qualname in sorted(reachable):
            func = graph.index.function(qualname)
            if func is None:
                continue
            module = graph.index.modules[func.module]
            modules_seen.add(func.module)
            findings.extend(self._check_function(func, module, graph))
        # Import-time file handles: a property of the module, not of any
        # one function, so checked once per module hosting worker code.
        for name in sorted(modules_seen):
            module = graph.index.modules[name]
            for line in module.import_time_opens:
                findings.append(
                    Finding(
                        "worker-import-open", module.relpath, line,
                        "open() at import time in a module with worker-"
                        "reachable code: fork duplicates the handle (and "
                        "its offset) into every worker; open inside the "
                        "function that uses it",
                    )
                )
        return findings

    # ------------------------------------------------------------------
    def _check_function(
        self, func: FunctionInfo, module: ModuleInfo, graph: CallGraph
    ) -> List[Finding]:
        findings: List[Finding] = []
        aliases = module.aliases
        # One alias hop: ``state = _WORKER_STATE`` makes writes through
        # ``state`` writes to module state.
        shared_names: Dict[str, str] = {
            name: f"module-level name '{name}'"
            for name in module.module_level_names
        }
        for node in _own_statements(func.node):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Name)
                and node.value.id in shared_names
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        shared_names.setdefault(
                            target.id,
                            f"'{target.id}' (alias of module-level "
                            f"'{node.value.id}')",
                        )

        def entry_note() -> str:
            return (
                f"'{func.qualname}' is reachable from the pool worker "
                f"entry points ({', '.join(self.entry_points)})"
            )

        for node in _own_statements(func.node):
            if isinstance(node, ast.Global):
                findings.append(
                    Finding(
                        "worker-global-write", func.relpath, node.lineno,
                        f"'global {', '.join(node.names)}' in worker-"
                        f"reachable code: {entry_note()}; module state "
                        "written here is per-process and races across "
                        "workers",
                    )
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    findings.extend(
                        self._check_store(func, target, aliases,
                                          shared_names, entry_note())
                    )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    findings.extend(
                        self._check_store(func, target, aliases,
                                          shared_names, entry_note())
                    )
            elif isinstance(node, ast.Call):
                findings.extend(
                    self._check_call(func, node, aliases, shared_names,
                                     entry_note())
                )
        return findings

    def _check_store(
        self, func: FunctionInfo, target: ast.AST, aliases: Dict[str, str],
        shared_names: Dict[str, str], note: str,
    ) -> List[Finding]:
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return []
        if _is_environ(target.value, aliases):
            return [
                Finding(
                    "worker-env-mutate", func.relpath, target.lineno,
                    f"os.environ mutated in worker-reachable code: {note}; "
                    "environment writes race under fork and diverge from "
                    "the parent under spawn",
                )
            ]
        root = _root_name(target)
        if root is not None and root in shared_names:
            return [
                Finding(
                    "worker-global-write", func.relpath, target.lineno,
                    f"write through {shared_names[root]} in worker-"
                    f"reachable code: {note}",
                )
            ]
        return []

    def _check_call(
        self, func: FunctionInfo, node: ast.Call, aliases: Dict[str, str],
        shared_names: Dict[str, str], note: str,
    ) -> List[Finding]:
        findings: List[Finding] = []
        from repro.analysis.astutil import resolve_dotted

        dotted = resolve_dotted(node.func, aliases)
        if dotted in _ENV_MUTATORS:
            findings.append(
                Finding(
                    "worker-env-mutate", func.relpath, node.lineno,
                    f"call to '{dotted}' in worker-reachable code: {note}",
                )
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
        ):
            if _is_environ(node.func.value, aliases):
                findings.append(
                    Finding(
                        "worker-env-mutate", func.relpath, node.lineno,
                        f"os.environ.{node.func.attr}() in worker-reachable "
                        f"code: {note}",
                    )
                )
            else:
                root = _root_name(node.func.value)
                if root is not None and root in shared_names:
                    findings.append(
                        Finding(
                            "worker-global-write", func.relpath, node.lineno,
                            f".{node.func.attr}() on {shared_names[root]} "
                            f"in worker-reachable code: {note}",
                        )
                    )
        for rule, line, message in _call_impurity(node, aliases):
            if rule == "det-unseeded-random":
                findings.append(
                    Finding(
                        "worker-unseeded-random", func.relpath, line,
                        f"{message} ({note}; N workers sharing a global "
                        "RNG stream is a schedule-dependent race)",
                    )
                )
        return findings
