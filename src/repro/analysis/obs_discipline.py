"""Telemetry-discipline lint for the :mod:`repro.obs` subsystem.

The run ledger is only trustworthy if instrumenting the code cannot
change what the code computes or how fast it computes it.  Two rules
keep that true as instrumentation spreads:

``obs-in-hot-path``
    A telemetry call (``get_sink``, ``.span``, ``.incr``, ``.gauge``,
    ``.event``, ``.flush``) inside a per-branch hot region named by
    :data:`repro.analysis.hotloop.HOT_PATHS`.  Even the disabled sink
    costs an attribute lookup and a call per operation; once per dynamic
    branch, that is exactly the overhead class PR 1 removed.  Telemetry
    belongs at the call sites *around* the kernels (per cell, per chunk,
    per build) — the wrappers in ``runner/pool.py`` are the pattern.
``obs-span-unmanaged``
    A ``.span(...)`` call that is not the context expression of a
    ``with`` statement.  A span only records on ``__exit__``; calling
    it bare starts a timer nobody stops, and the ledger silently loses
    the phase.  ``with sink.span("name"): ...`` is the only supported
    shape (``with a, b:`` items count, bare expression statements and
    assignments do not).

Both rules run only in files that import ``repro.obs`` — the attribute
names are generic enough (``event``, ``span``) that unrelated APIs must
not trip them.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.astutil import functions_with_qualnames, loop_bodies
from repro.analysis.base import Finding, Project, SourceFile
from repro.analysis.hotloop import HOT_PATHS

#: Method names on a sink (or module functions) that constitute telemetry.
TELEMETRY_ATTRS = frozenset({"span", "incr", "gauge", "event", "flush"})


def _imports_obs(tree: ast.Module) -> bool:
    """Whether the module imports ``repro.obs`` (any form)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(name.name.startswith("repro.obs") for name in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.startswith("repro.obs"):
                return True
    return False


def _call_attr(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class ObsDisciplineChecker:
    """Keep telemetry out of the per-branch kernel and spans context-managed."""

    name = "obs"
    description = (
        "no telemetry calls in per-branch hot paths; every span "
        "context-managed (files importing repro.obs)"
    )

    def __init__(
        self, hot_paths: Sequence[Tuple[str, str, bool]] = HOT_PATHS
    ) -> None:
        self.hot_paths = tuple(hot_paths)

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        hot_by_file: Dict[str, List[Tuple[str, bool]]] = {}
        for relpath, qualname, whole in self.hot_paths:
            hot_by_file.setdefault(relpath, []).append((qualname, whole))
        for source in project.files:
            if not _imports_obs(source.tree):
                continue
            findings.extend(
                self._check_hot_regions(source, hot_by_file.get(source.relpath, []))
            )
            findings.extend(self._check_spans_managed(source))
        return findings

    # ------------------------------------------------------------------
    def _check_hot_regions(
        self, source: SourceFile, entries: Sequence[Tuple[str, bool]]
    ) -> List[Finding]:
        wanted = dict(entries)
        findings: List[Finding] = []
        for qualname, func in functions_with_qualnames(source.tree):
            whole = wanted.get(qualname)
            if whole is None:
                continue
            if whole:
                regions: List[List[ast.stmt]] = [list(func.body)]
            else:
                regions = list(loop_bodies(func))
            for region in regions:
                for stmt in region:
                    for node in ast.walk(stmt):
                        if not isinstance(node, ast.Call):
                            continue
                        attr = _call_attr(node)
                        if attr in TELEMETRY_ATTRS or attr == "get_sink":
                            findings.append(
                                Finding(
                                    "obs-in-hot-path", source.relpath,
                                    node.lineno,
                                    f"telemetry call '{attr}' inside hot "
                                    f"path '{qualname}'; instrument the "
                                    "call site around the kernel instead "
                                    "(see runner/pool.py)",
                                )
                            )
        return findings

    # ------------------------------------------------------------------
    def _check_spans_managed(self, source: SourceFile) -> List[Finding]:
        managed: Set[int] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    managed.add(id(item.context_expr))
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in managed
            ):
                findings.append(
                    Finding(
                        "obs-span-unmanaged", source.relpath, node.lineno,
                        "span() outside a with statement never records "
                        "(it only measures on __exit__); write "
                        "'with sink.span(...):'",
                    )
                )
        return findings
