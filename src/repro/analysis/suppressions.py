"""Stale-suppression audit: every ``ignore`` comment must earn its keep.

Suppression comments are load-bearing documentation: each one asserts
"this rule fires here, and here is why that is acceptable".  When the
code under a comment changes — the impure call moves, the rule is
renamed, the hazard is fixed properly — the comment survives as noise
and, worse, as a pre-authorised hole for the *next* edit to hide in.

This pass closes the loop.  It cannot run standalone: it audits the raw
(pre-suppression) findings of every *other* registered checker, which
:func:`repro.analysis.run_lint` collects once per lint run and hands to
:meth:`StaleSuppressionChecker.finalize`.

``stale-suppression``
    A ``# repro-lint: ignore[rule]`` naming a rule that produces no
    finding on that line, or a bare ``# repro-lint: ignore`` on a line
    where nothing fires at all.

The rule is itself suppressible through the ordinary central mechanism
(a deliberate forward-looking suppression can carry
``ignore[stale-suppression]`` with a comment saying why).  To keep that
from collapsing into a fixed-point paradox — a suppression of
``stale-suppression`` is only "live" because this pass exists — entries
naming this checker's own rule are exempt from the audit.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.analysis.base import SUPPRESS_ALL, Finding, Project


class StaleSuppressionChecker:
    """Flag suppression comments that no longer silence anything."""

    name = "stale-suppression"
    description = (
        "repro-lint ignore comments naming rules that no longer fire on "
        "their line (audited against every other checker's raw findings)"
    )

    def run(self, project: Project) -> List[Finding]:
        """No standalone findings — the audit needs peer raw findings."""
        return []

    def finalize(
        self, project: Project, raw_findings: Sequence[Finding]
    ) -> List[Finding]:
        """Audit every suppression against ``raw_findings``.

        ``raw_findings`` must be the *pre-suppression* output of every
        other registered checker over the same project.
        """
        fired: Set[Tuple[str, int, str]] = set()
        fired_lines: Set[Tuple[str, int]] = set()
        for finding in raw_findings:
            fired.add((finding.path, finding.line, finding.rule))
            fired_lines.add((finding.path, finding.line))
        findings: List[Finding] = []
        for source in project.files:
            for line, rules in sorted(source.suppressions.items()):
                for rule in sorted(rules):
                    if rule == self.name:
                        continue  # see module docstring: audit exemption
                    if rule == SUPPRESS_ALL:
                        if (source.relpath, line) not in fired_lines:
                            findings.append(
                                Finding(
                                    self.name, source.relpath, line,
                                    "blanket '# repro-lint: ignore' on a "
                                    "line where no rule fires; delete it "
                                    "or name the rule it is meant for",
                                )
                            )
                    elif (source.relpath, line, rule) not in fired:
                        findings.append(
                            Finding(
                                self.name, source.relpath, line,
                                f"suppression names rule '{rule}', which "
                                "produces no finding on this line; the "
                                "comment is stale — delete it",
                            )
                        )
        return findings
