"""Cache-key completeness: every result-affecting input must be keyed.

The persistent result cache (``repro.runner.cache``) replays stored
simulation outputs whenever :func:`repro.runner.keys.cell_key` matches.
That is only sound if the key covers *everything* that can change a
result: every config field (transitively through nested dataclasses) and
every source module the simulation kernel executes.  This pass turns both
invariants into lint rules:

``cachekey-field-type``
    A config dataclass field whose annotated type ``config_token`` cannot
    render canonically (sets, arrays, plain classes, bare ``Any``).  Such a
    field would either crash key construction or — worse, after a careless
    "fix" — be silently omitted from the key.
``cachekey-token-drift``
    A field of a live config instance that does not appear in its rendered
    token.  Guards against a future rewrite of ``config_token`` (e.g. an
    explicit field list) dropping a field.
``cachekey-module-uncovered``
    A module inside ``repro.predictors``/``repro.pipeline`` that the
    simulation kernel imports (transitively) but that the source-hash
    module lists in ``runner/keys.py`` do not cover.  Adding a predictor
    module without updating the lists is a lint failure, not a stale-cache
    bug.
``cachekey-module-missing``
    A module list entry that does not import — a typo would silently hash
    nothing.
``cachekey-spec-drift``
    A field of a live config instance that does not appear in its
    ``to_spec()`` rendering.  Since :func:`repro.runner.keys.cell_key`
    fingerprints the spec, a dropped field would stop participating in the
    result-cache key.

The module also hosts :class:`RegistryChecker`, the predictor-registry
companion pass: every concrete
:class:`~repro.predictors.target_cache.base.TargetPredictor` subclass in
the installed package must be reachable through a registration
(``registry-unregistered-predictor``), every registration must carry spec
examples (``registry-missing-spec-examples``) that survive the
``from_spec(to_spec(...))`` round-trip with the registered kind
(``registry-spec-roundtrip``), and labels must be parameterised rather
than the bare kind string (``registry-bare-label``).
"""

from __future__ import annotations

import ast
import dataclasses
import importlib
import inspect
import typing
from enum import Enum
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import Finding, Project

#: Kernel roots whose transitive imports the prediction key must cover.
#: The stream kernel is a root of its own: it must produce bit-identical
#: results to the reference engine, so an edit to it must invalidate
#: cached results exactly as an engine edit does.
PREDICTION_ROOTS = (
    "repro.predictors.engine",
    "repro.predictors.streams",
    "repro.predictors.vector",
)
#: Kernel roots whose transitive imports the timing key must cover.
TIMING_ROOTS = (
    "repro.pipeline.timing",
    "repro.pipeline.core",
    "repro.pipeline.integrated",
    "repro.pipeline.caches",
)
#: Packages inside which an uncovered import is a finding (the trace and
#: workload sides have their own fingerprint, see
#: ``repro.workloads.registry._code_fingerprint``).
CHECKED_PACKAGES = ("repro.predictors", "repro.pipeline")

_TOKEN_SCALARS = (bool, int, float, str)

try:  # ``X | Y`` annotations resolve to types.UnionType on 3.10+
    from types import UnionType as _UNION_TYPE
except ImportError:  # pragma: no cover - 3.9 fallback
    _UNION_TYPE = None  # type: ignore[assignment, misc]


class CacheKeyChecker:
    """Cross-check config dataclasses and kernel imports against the keys."""

    name = "cache-keys"
    description = (
        "EngineConfig/MachineConfig fields must tokenise into cell keys and "
        "the code-fingerprint module lists must cover the kernel's imports"
    )

    def run(self, project: Project) -> List[Finding]:
        from repro.pipeline import MachineConfig
        from repro.predictors import EngineConfig, TargetCacheConfig
        from repro.runner import keys

        findings: List[Finding] = []
        roots: List[Any] = [
            EngineConfig(target_cache=TargetCacheConfig()),
            MachineConfig(),
        ]
        for instance in roots:
            findings.extend(check_config_fields(type(instance), project))
            findings.extend(
                check_token_completeness(instance, keys.config_token, project)
            )
        findings.extend(
            check_spec_completeness(
                EngineConfig(target_cache=TargetCacheConfig()), project
            )
        )
        covered_engine = tuple(keys._ENGINE_CODE_MODULES)
        covered_timing = covered_engine + tuple(keys._TIMING_CODE_MODULES)
        anchor = module_list_anchor(project, "runner/keys.py")
        findings.extend(
            check_module_coverage(
                project, PREDICTION_ROOTS, covered_engine, anchor
            )
        )
        findings.extend(
            check_module_coverage(project, TIMING_ROOTS, covered_timing, anchor)
        )
        findings.extend(check_modules_exist(covered_timing, anchor))
        return findings


# ----------------------------------------------------------------------
# Field-type validation (rule: cachekey-field-type)
# ----------------------------------------------------------------------
def _annotation_tokenisable(tp: Any, seen: Set[Any]) -> bool:
    """Whether ``config_token`` can canonically render values of ``tp``."""
    if tp is type(None) or tp in _TOKEN_SCALARS:
        return True
    if isinstance(tp, type):
        if issubclass(tp, Enum):
            return True
        if dataclasses.is_dataclass(tp):
            if tp in seen:
                return True
            seen.add(tp)
            hints = typing.get_type_hints(tp)
            return all(
                _annotation_tokenisable(hints[f.name], seen)
                for f in dataclasses.fields(tp)
            )
        if issubclass(tp, _TOKEN_SCALARS):
            return True
        return False
    origin = typing.get_origin(tp)
    args = typing.get_args(tp)
    if origin in (list, tuple, Sequence, typing.Sequence):
        return all(
            _annotation_tokenisable(a, seen) for a in args if a is not Ellipsis
        )
    if origin in (dict, typing.Dict):
        if len(args) != 2:
            return False
        key_tp, value_tp = args
        key_ok = key_tp in (str, int) or (
            isinstance(key_tp, type) and issubclass(key_tp, (Enum, str, int))
        )
        return key_ok and _annotation_tokenisable(value_tp, seen)
    if origin is typing.Union or (
        _UNION_TYPE is not None and origin is _UNION_TYPE
    ):
        return all(_annotation_tokenisable(a, seen) for a in args)
    return False


def _class_anchor(cls: type, project: Optional[Project]) -> Tuple[str, int]:
    """(relpath, line) of a class definition, best effort."""
    try:
        path = inspect.getsourcefile(cls)
        line = inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):
        return cls.__name__, 1
    if path is None:
        return cls.__name__, 1
    if project is not None:
        try:
            return Path(path).resolve().relative_to(
                project.root.resolve()
            ).as_posix(), line
        except ValueError:
            pass
    return Path(path).name, line


def check_config_fields(
    config_cls: type, project: Optional[Project] = None
) -> List[Finding]:
    """Flag fields (transitively) whose type cannot participate in a key."""
    findings: List[Finding] = []
    visited: Set[type] = set()

    def visit(cls: type) -> None:
        if cls in visited or not dataclasses.is_dataclass(cls):
            return
        visited.add(cls)
        relpath, line = _class_anchor(cls, project)
        hints = typing.get_type_hints(cls)
        for f in dataclasses.fields(cls):
            tp = hints.get(f.name, f.type)
            if not _annotation_tokenisable(tp, set()):
                findings.append(
                    Finding(
                        "cachekey-field-type", relpath, line,
                        f"{cls.__name__}.{f.name}: type {tp!r} cannot be "
                        "rendered by config_token, so it would not "
                        "participate in the result-cache key",
                    )
                )
            for nested in _nested_dataclasses(tp):
                visit(nested)

    def _nested_dataclasses(tp: Any) -> List[type]:
        out: List[type] = []
        if isinstance(tp, type) and dataclasses.is_dataclass(tp):
            out.append(tp)
        for arg in typing.get_args(tp):
            out.extend(_nested_dataclasses(arg))
        return out

    visit(config_cls)
    return findings


# ----------------------------------------------------------------------
# Token-render completeness (rule: cachekey-token-drift)
# ----------------------------------------------------------------------
def check_token_completeness(
    instance: Any,
    token_fn: Callable[[Any], Any],
    project: Optional[Project] = None,
) -> List[Finding]:
    """Every dataclass field of ``instance`` must appear in its token."""
    try:
        token = token_fn(instance)
    except TypeError as exc:
        relpath, line = _class_anchor(type(instance), project)
        return [
            Finding(
                "cachekey-token-drift", relpath, line,
                f"config_token failed on {type(instance).__name__}: {exc}",
            )
        ]
    findings: List[Finding] = []

    def compare(value: Any, rendered: Any) -> None:
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            fields_map: Dict[str, Any] = {}
            if (
                isinstance(rendered, (list, tuple))
                and len(rendered) == 2
                and isinstance(rendered[1], dict)
            ):
                fields_map = rendered[1]
            for f in dataclasses.fields(value):
                if f.name not in fields_map:
                    relpath, line = _class_anchor(type(value), project)
                    findings.append(
                        Finding(
                            "cachekey-token-drift", relpath, line,
                            f"field {type(value).__name__}.{f.name} is "
                            "missing from its config_token rendering; the "
                            "result-cache key would ignore it",
                        )
                    )
                else:
                    compare(getattr(value, f.name), fields_map[f.name])
        elif isinstance(value, (list, tuple)):
            items = rendered[1] if (
                isinstance(rendered, (list, tuple))
                and len(rendered) == 2
                and rendered[0] == "tuple"
            ) else rendered
            if isinstance(items, (list, tuple)) and len(items) == len(value):
                for item, rendered_item in zip(value, items):
                    compare(item, rendered_item)

    compare(instance, token)
    return findings


# ----------------------------------------------------------------------
# Kernel import closure vs the code-fingerprint module lists
# ----------------------------------------------------------------------
def module_list_anchor(project: Project, relpath: str) -> Tuple[str, int]:
    """Anchor findings at the ``_ENGINE_CODE_MODULES`` assignment."""
    source = project.file(relpath)
    if source is None:
        return relpath, 1
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "_ENGINE_CODE_MODULES"
                ):
                    return relpath, node.lineno
    return relpath, 1


def _module_relpath(module_name: str, project: Project) -> Optional[str]:
    """Project-relative file for ``repro.x.y`` (``None`` if not a module)."""
    assert module_name.startswith("repro")
    tail = module_name.split(".")[1:]
    candidate = "/".join(tail) + ".py" if tail else "__init__.py"
    if project.file(candidate) is not None:
        return candidate
    package = "/".join(tail + ["__init__.py"])
    if project.file(package) is not None:
        return package
    return None


def internal_imports(project: Project, module_name: str) -> Set[str]:
    """``repro.*`` modules imported directly by ``module_name``."""
    relpath = _module_relpath(module_name, project)
    if relpath is None:
        return set()
    source = project.file(relpath)
    assert source is not None
    imported: Set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.name.startswith("repro"):
                    imported.add(name.name)
        elif isinstance(node, ast.ImportFrom) and node.module:
            if not node.module.startswith("repro"):
                continue
            for name in node.names:
                # "from repro.x import y": y may be a submodule or a symbol.
                as_module = f"{node.module}.{name.name}"
                if _module_relpath(as_module, project) is not None:
                    imported.add(as_module)
                else:
                    imported.add(node.module)
    return imported


def import_closure(project: Project, roots: Sequence[str]) -> Set[str]:
    """Transitive ``repro.*`` import closure of ``roots`` (roots included)."""
    closure: Set[str] = set()
    stack = [r for r in roots]
    while stack:
        module = stack.pop()
        if module in closure:
            continue
        closure.add(module)
        stack.extend(internal_imports(project, module))
    return closure


def _covers(module: str, covered: Sequence[str], project: Project) -> bool:
    for entry in covered:
        if module == entry:
            return True
        # A package entry covers every module underneath it.
        entry_rel = _module_relpath(entry, project)
        if (
            entry_rel is not None
            and entry_rel.endswith("__init__.py")
            and module.startswith(entry + ".")
        ):
            return True
    return False


def check_module_coverage(
    project: Project,
    roots: Sequence[str],
    covered: Sequence[str],
    anchor: Tuple[str, int],
) -> List[Finding]:
    """Kernel imports within CHECKED_PACKAGES must be fingerprint-covered."""
    findings: List[Finding] = []
    relpath, line = anchor
    for module in sorted(import_closure(project, roots)):
        if not any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in CHECKED_PACKAGES
        ):
            continue
        if not _covers(module, covered, project):
            findings.append(
                Finding(
                    "cachekey-module-uncovered", relpath, line,
                    f"kernel module '{module}' (imported from "
                    f"{'/'.join(sorted(roots))}) is not covered by the "
                    "code-fingerprint module lists; edits to it would not "
                    "invalidate cached results",
                )
            )
    return findings


# ----------------------------------------------------------------------
# Spec-render completeness (rule: cachekey-spec-drift)
# ----------------------------------------------------------------------
def check_spec_completeness(
    instance: Any, project: Optional[Project] = None
) -> List[Finding]:
    """Every dataclass field of ``instance`` must appear in its spec.

    :func:`repro.runner.keys.cell_key` hashes ``config.to_spec()``; a field
    that the spec codec drops would silently stop invalidating cached
    results when it changes.
    """
    from repro.predictors.spec import to_spec

    findings: List[Finding] = []

    def compare(value: Any) -> None:
        if not dataclasses.is_dataclass(value) or isinstance(value, type):
            return
        try:
            rendered = to_spec(value)
        except TypeError as exc:
            relpath, line = _class_anchor(type(value), project)
            findings.append(
                Finding(
                    "cachekey-spec-drift", relpath, line,
                    f"to_spec failed on {type(value).__name__}: {exc}",
                )
            )
            return
        for f in dataclasses.fields(value):
            if f.name not in rendered:
                relpath, line = _class_anchor(type(value), project)
                findings.append(
                    Finding(
                        "cachekey-spec-drift", relpath, line,
                        f"field {type(value).__name__}.{f.name} is missing "
                        "from its to_spec rendering; the result-cache key "
                        "would ignore it",
                    )
                )
            else:
                compare(getattr(value, f.name))

    compare(instance)
    return findings


def check_modules_exist(
    covered: Sequence[str], anchor: Tuple[str, int]
) -> List[Finding]:
    """Every fingerprint list entry must import cleanly."""
    findings: List[Finding] = []
    relpath, line = anchor
    for entry in covered:
        try:
            importlib.import_module(entry)
        except ImportError as exc:
            findings.append(
                Finding(
                    "cachekey-module-missing", relpath, line,
                    f"code-fingerprint module '{entry}' does not import "
                    f"({exc}); its sources are silently not hashed",
                )
            )
    return findings


# ----------------------------------------------------------------------
# Predictor-registry discipline
# ----------------------------------------------------------------------
def _concrete_subclasses(base: type) -> List[type]:
    """All concrete (non-abstract) subclasses of ``base``, recursively."""
    out: List[type] = []
    stack = list(base.__subclasses__())
    seen: Set[type] = set()
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.add(cls)
        stack.extend(cls.__subclasses__())
        if not inspect.isabstract(cls):
            out.append(cls)
    return sorted(out, key=lambda cls: f"{cls.__module__}.{cls.__qualname__}")


def _registration_anchor(
    module_name: str, project: Project
) -> Tuple[str, int]:
    """Anchor registration findings at the registering module's file."""
    if module_name.startswith("repro"):
        relpath = _module_relpath(module_name, project)
        if relpath is not None:
            return relpath, 1
    return "predictors/registry.py", 1


class RegistryChecker:
    """Every predictor must be registered with a working declarative spec."""

    name = "registry"
    description = (
        "TargetPredictor subclasses must be registered with spec examples "
        "that round-trip and parameterised labels"
    )

    def run(self, project: Project) -> List[Finding]:
        from repro.predictors.registry import registrations
        from repro.predictors.target_cache.base import TargetPredictor

        findings: List[Finding] = []
        entries = registrations()
        provided = {cls for reg in entries for cls in reg.provides}

        # Rule registry-unregistered-predictor: a concrete predictor class
        # in the installed package that no registration can build is dead
        # to the declarative stack (specs, sweeps, presets, cache keys).
        for cls in _concrete_subclasses(TargetPredictor):
            if cls in provided or not cls.__module__.startswith("repro."):
                continue
            relpath, line = _class_anchor(cls, project)
            findings.append(
                Finding(
                    "registry-unregistered-predictor", relpath, line,
                    f"{cls.__module__}.{cls.__qualname__} subclasses "
                    "TargetPredictor but no registry entry provides it; "
                    "register it (or list it in an existing registration's "
                    "'provides') so specs and sweeps can reach it",
                )
            )

        for reg in entries:
            relpath, line = _registration_anchor(reg.module, project)
            # Rule registry-missing-spec-examples: the spec examples ARE
            # the round-trip test hook; an empty tuple means nothing
            # exercises this kind's declarative form.
            if not reg.spec_examples:
                findings.append(
                    Finding(
                        "registry-missing-spec-examples", relpath, line,
                        f"kind '{reg.kind}' is registered without "
                        "spec_examples; tests and this checker cannot "
                        "verify its spec round-trip",
                    )
                )
            for example in reg.spec_examples:
                if example.kind != reg.kind:
                    findings.append(
                        Finding(
                            "registry-spec-roundtrip", relpath, line,
                            f"kind '{reg.kind}': spec example has kind "
                            f"'{example.kind}'",
                        )
                    )
                    continue
                try:
                    rebuilt = type(example).from_spec(example.to_spec())
                except (TypeError, ValueError) as exc:
                    findings.append(
                        Finding(
                            "registry-spec-roundtrip", relpath, line,
                            f"kind '{reg.kind}': spec round-trip raised "
                            f"{exc}",
                        )
                    )
                    continue
                if rebuilt != example:
                    findings.append(
                        Finding(
                            "registry-spec-roundtrip", relpath, line,
                            f"kind '{reg.kind}': from_spec(to_spec(cfg)) "
                            "!= cfg for a spec example; the declarative "
                            "form is lossy",
                        )
                    )
                # Rule registry-bare-label: a label that collapses to the
                # bare kind string loses the parameters in every table.
                if reg.label(example) == reg.kind:
                    findings.append(
                        Finding(
                            "registry-bare-label", relpath, line,
                            f"kind '{reg.kind}': label() returns the bare "
                            "kind string; give it a parameterised label",
                        )
                    )
        return findings
