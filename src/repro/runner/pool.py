"""Process-pool sweep executor.

:func:`run_cells` fans ``(benchmark, EngineConfig)`` cells out across
worker processes.  The design goals, in order:

1. **Bit-identical results** regardless of ``jobs``: every cell simulates a
   fresh engine over the identical trace, results are reassembled by cell
   index, and nothing about scheduling leaks into the outputs.
2. **Ship each trace once per worker**, not once per cell: workers receive
   only ``(benchmark, config)`` descriptors (small frozen dataclasses) and
   load traces themselves from the on-disk trace cache, memoising both the
   trace and its decoded branch rows for every subsequent cell.
3. **Pay for the per-branch walk once per (trace, base config)**: cells are
   grouped by :func:`~repro.predictors.streams.stream_signature`, each
   worker memoises the :class:`~repro.predictors.streams.BranchStreams`
   for the signatures it sees, and every cell runs through the fastest
   execution tier its config supports — the vectorized columnar kernel
   (:func:`~repro.predictors.vector.simulate_vector`) for kinds whose
   registered traits declare ``vectorizable``, the stream kernel
   (:func:`~repro.predictors.streams.simulate_streamed`) otherwise — both
   bit-identical to the reference engine, with per-cell cost proportional
   to the target-cache-relevant subset of branches.  Cells the stream
   kernel cannot represent (history wider than 64 bits) fall back to
   :func:`~repro.predictors.engine.simulate` per cell.  ``backend`` caps
   the ladder (``--backend`` on the CLI): ``auto``/``vector`` pick the
   fastest supported tier per cell, ``streams`` and ``engine`` force the
   lower tiers; unsupported cells always degrade downward, never error.
4. **Near-free warm re-runs**: cells whose
   :func:`~repro.runner.keys.cell_key` is already in the persistent
   :class:`~repro.runner.cache.ResultCache` never reach a worker.

The serial path (``jobs=1``) runs in-process with the same per-signature
stream memo, so even single-core sweeps amortise the per-branch walk.  A
worker pool that breaks mid-sweep (a worker killed by the OOM killer or a
signal) is downgraded to the serial path for whatever cells were still
outstanding, with a warning.

Every layer is instrumented through :mod:`repro.obs` (a no-op unless a
run ledger is enabled): per-cell spans with the kernel used, result-cache
hit/miss counters, stream build/reuse telemetry, chunk-scheduling events,
and pool lifecycle events (including ``BrokenProcessPool`` recovery).
When the parent's sink is a ledger, workers attach their own shard via
the pool initializer and flush at chunk boundaries.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.obs import attach_worker, get_sink
from repro.predictors import (
    BranchStreams,
    DecodedBranches,
    EngineConfig,
    PredictionStats,
    StreamConfig,
    build_streams,
    decode_branches,
    load_plugins,
    plugin_modules,
    simulate,
    simulate_streamed,
    simulate_vector,
    stream_signature,
    streams_supported,
    vector_supported,
)
from repro.runner.cache import ResultCache
from repro.runner.keys import cell_key
from repro.trace.trace import Trace
from repro.workloads import get_trace


#: Execution-tier caps accepted by :func:`run_cells` (and ``--backend``).
BACKENDS = ("auto", "engine", "streams", "vector")


def _cell_backend(config: EngineConfig, backend: str) -> str:
    """Resolve the execution tier serving one cell under a backend cap.

    ``backend`` caps the *maximum* tier; a cell whose config a tier cannot
    represent degrades to the next one down (vector -> streams -> engine),
    so results never depend on the cap — only speed does.  ``auto`` and
    ``vector`` behave identically: the cap is already the top of the
    ladder.
    """
    if backend == "engine":
        return "engine"
    if backend != "streams" and vector_supported(config):
        return "vector"
    if streams_supported(config):
        return "streams"
    return "engine"


@dataclass(frozen=True)
class SweepCell:
    """One sweep cell: simulate ``benchmark`` under ``config``.

    ``collect_mask`` asks for the per-instruction mispredict mask (needed
    by the timing model; costs one bool per instruction).
    """

    benchmark: str
    config: EngineConfig
    collect_mask: bool = False


def default_jobs() -> int:
    """Worker-process count when the caller does not specify one.

    ``REPRO_JOBS`` overrides; the default is 1 (serial) so library users
    and tests never fork unless asked to.
    """
    # Sizes the worker pool; results are reassembled by cell index and do
    # not depend on parallelism.
    value = os.environ.get("REPRO_JOBS", "").strip()  # repro-lint: ignore[det-env-read]
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            warnings.warn(f"ignoring non-integer REPRO_JOBS={value!r}")
    return 1


# ----------------------------------------------------------------------
# Worker side.  State lives in module globals set by the pool initializer;
# each worker loads/decodes a benchmark's trace at most once.
# ----------------------------------------------------------------------
_WORKER_STATE: Optional[Dict[str, Any]] = None


def _init_worker(trace_length: int, seed: int, use_trace_cache: bool,
                 trace_cache_dir: Optional[str],
                 ledger_path: Optional[str],
                 predictor_plugins: Tuple[str, ...] = (),
                 backend: str = "auto") -> None:
    # The whole point of the initializer is to install per-worker state;
    # it never leaks into results (cells are pure functions of their
    # spec) and each worker owns its copy exclusively.
    global _WORKER_STATE  # repro-lint: ignore[worker-global-write]
    if trace_cache_dir is not None:
        # Propagate the parent's cache location even under a spawn start
        # method, where mutated parent environment is not inherited.
        # Written once, before any task runs, in this process only.
        os.environ["REPRO_TRACE_CACHE"] = trace_cache_dir  # repro-lint: ignore[det-env-read, worker-env-mutate]
    if ledger_path is not None:
        # Replace any fork-inherited parent sink with a worker-role sink
        # writing this process's own ledger shard.
        attach_worker(ledger_path)
    if predictor_plugins:
        # Re-import the modules that registered third-party predictor
        # kinds in the parent so the same kinds resolve here.  Under the
        # fork start method the registrations are inherited anyway; this
        # covers spawn, where the worker starts from a fresh interpreter.
        load_plugins(predictor_plugins)
    _WORKER_STATE = {
        "trace_length": trace_length,
        "seed": seed,
        "use_trace_cache": use_trace_cache,
        "backend": backend,
        "decoded": {},
        "traces": {},
        "streams": {},
    }


def _worker_decoded(benchmark: str) -> DecodedBranches:
    state = _WORKER_STATE
    assert state is not None, "worker used before _init_worker"
    decoded = state["decoded"].get(benchmark)
    if decoded is None:
        trace = get_trace(
            benchmark, n_instructions=state["trace_length"],
            seed=state["seed"], use_cache=state["use_trace_cache"],
        )
        # Per-worker decode memo: keyed by benchmark, value deterministic
        # given the spec, so replication across workers cannot diverge.
        state["traces"][benchmark] = trace  # repro-lint: ignore[worker-global-write]
        decoded = decode_branches(trace)
        state["decoded"][benchmark] = decoded  # repro-lint: ignore[worker-global-write]
    return decoded


def _worker_streams(benchmark: str, signature: StreamConfig) -> BranchStreams:
    """Per-worker :class:`BranchStreams` memo, built at most once each."""
    state = _WORKER_STATE
    assert state is not None, "worker used before _init_worker"
    streams = state["streams"].get((benchmark, signature))
    if streams is None:
        with get_sink().span("streams.build", benchmark=benchmark):
            streams = build_streams(_worker_decoded(benchmark), signature)
        # Same per-worker memo discipline as _worker_decoded above.
        state["streams"][(benchmark, signature)] = streams  # repro-lint: ignore[worker-global-write]
    else:
        get_sink().incr("streams.reuse")
    return streams


def _run_chunk(benchmark: str,
               items: List[Tuple[int, EngineConfig, bool]]
               ) -> List[Tuple[int, PredictionStats]]:
    decoded = _worker_decoded(benchmark)
    assert _WORKER_STATE is not None
    trace = _WORKER_STATE["traces"][benchmark]
    # The tier cap is run-wide, so it rides in via the pool initializer
    # rather than widening the chunk-runner signature.
    backend = _WORKER_STATE["backend"]
    sink = get_sink()
    out: List[Tuple[int, PredictionStats]] = []
    for index, config, collect_mask in items:
        tier = _cell_backend(config, backend)
        sink.incr(f"runner.backend.{tier}")
        if tier == "vector":
            streams = _worker_streams(benchmark, stream_signature(config))
            with sink.span("cell", benchmark=benchmark, kernel="vector"):
                stats = simulate_vector(streams, config,
                                        collect_mask=collect_mask)
        elif tier == "streams":
            streams = _worker_streams(benchmark, stream_signature(config))
            with sink.span("cell", benchmark=benchmark, kernel="stream"):
                stats = simulate_streamed(streams, config,
                                          collect_mask=collect_mask)
        else:
            if backend != "engine":
                sink.incr("streams.fallback_reference")
            with sink.span("cell", benchmark=benchmark, kernel="reference"):
                stats = simulate(trace, config, collect_mask=collect_mask,
                                 decoded=decoded)
        out.append((index, stats))
    # Chunk boundary: persist this worker's shard so nothing is lost if
    # the pool later breaks (the parent merges whatever was flushed).
    sink.flush()
    return out


def _service_cell(benchmark: str, config: EngineConfig,
                  collect_mask: bool = False) -> PredictionStats:
    """Worker entry point for single-cell service submissions.

    The sweep service schedules cells one at a time (its shard scheduler
    owns batching, dedup and cache policy in the parent), so its pool
    tasks are single cells rather than chunks.  Delegates to
    :func:`_run_chunk` so the per-worker trace/stream memos and execution
    tiers behave identically to batch sweeps — a cell computes the same
    bytes no matter which front end submitted it.
    """
    return _run_chunk(benchmark, [(0, config, collect_mask)])[0][1]


# ----------------------------------------------------------------------
# Parent side.
# ----------------------------------------------------------------------
_T = TypeVar("_T")


def _group_by_signature(
    items: List[Tuple[int, EngineConfig, bool]]
) -> List[Tuple[int, EngineConfig, bool]]:
    """Reorder ``items`` so cells sharing a stream signature are adjacent.

    Chunked contiguously, cells with one signature land in as few workers
    as possible, so each :class:`BranchStreams` is built at most once per
    worker that needs it (results are reassembled by cell index, so the
    order here never leaks into outputs).  Unsupported cells group under
    ``None``.  First-seen signature order keeps the schedule deterministic.
    """
    groups: Dict[Optional[StreamConfig],
                 List[Tuple[int, EngineConfig, bool]]] = {}
    for item in items:
        config = item[1]
        signature = (
            stream_signature(config) if streams_supported(config) else None
        )
        groups.setdefault(signature, []).append(item)
    return [item for group in groups.values() for item in group]


def _split_chunks(items: List[_T], pieces: int) -> List[List[_T]]:
    if not items:
        return []
    pieces = max(1, min(pieces, len(items)))
    base, extra = divmod(len(items), pieces)
    chunks: List[List[_T]] = []
    start = 0
    for i in range(pieces):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


def run_cells(cells: Sequence[SweepCell], jobs: Optional[int] = None, *,
              trace_length: int = 400_000, seed: int = 1997,
              use_trace_cache: bool = True,
              result_cache: Optional[ResultCache] = None,
              trace_provider: Optional[Callable[[str], Trace]] = None,
              backend: str = "auto"
              ) -> List[PredictionStats]:
    """Simulate every cell, returning stats in the order given.

    ``result_cache`` (usually :meth:`ResultCache.from_env`) short-circuits
    cells simulated before; ``trace_provider`` lets a caller with traces
    already in memory (e.g. ``ExperimentContext.trace``) supply them
    instead of hitting the disk cache.  Duplicate cells are simulated once.
    ``backend`` caps the execution tier (see :data:`BACKENDS`); every tier
    is bit-identical, so cached results are shared across backends.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {', '.join(BACKENDS)}"
        )
    jobs = default_jobs() if jobs is None else max(1, jobs)
    sink = get_sink()
    results: List[Optional[PredictionStats]] = [None] * len(cells)

    # Deduplicate and consult the persistent cache.  A cell needs the mask
    # if *any* duplicate asked for it.
    unique: Dict[Tuple[str, EngineConfig], List[int]] = {}
    for index, cell in enumerate(cells):
        unique.setdefault((cell.benchmark, cell.config), []).append(index)
    pending: List[Tuple[str, EngineConfig, bool]] = []
    keys: Dict[Tuple[str, EngineConfig], str] = {}
    for (benchmark, config), indices in unique.items():
        need_mask = any(cells[i].collect_mask for i in indices)
        if result_cache is not None:
            key = cell_key(benchmark, config, trace_length, seed)
            keys[(benchmark, config)] = key
            hit = result_cache.load(key, need_mask=need_mask)
            if hit is not None:
                sink.incr("runner.cell_cache.hit")
                for i in indices:
                    results[i] = hit
                continue
            sink.incr("runner.cell_cache.miss")
        pending.append((benchmark, config, need_mask))

    if pending:
        computed = _compute(pending, jobs, trace_length, seed,
                            use_trace_cache, trace_provider, backend)
        for (benchmark, config, _), stats in zip(pending, computed):
            if result_cache is not None:
                key = keys.get((benchmark, config)) or cell_key(
                    benchmark, config, trace_length, seed
                )
                result_cache.store(key, stats)
            for i in unique[(benchmark, config)]:
                results[i] = stats
    return results  # type: ignore[return-value]


def _compute(pending: List[Tuple[str, EngineConfig, bool]], jobs: int,
             trace_length: int, seed: int, use_trace_cache: bool,
             trace_provider: Optional[Callable[[str], Trace]],
             backend: str = "auto"
             ) -> List[PredictionStats]:
    """Simulate ``pending`` cells, in order, serially or via the pool."""

    def load_trace(benchmark: str) -> Trace:
        if trace_provider is not None:
            return trace_provider(benchmark)
        return get_trace(benchmark, n_instructions=trace_length, seed=seed,
                         use_cache=use_trace_cache)

    by_benchmark: Dict[str, List[Tuple[int, EngineConfig, bool]]] = {}
    for position, (benchmark, config, need_mask) in enumerate(pending):
        by_benchmark.setdefault(benchmark, []).append(
            (position, config, need_mask)
        )

    sink = get_sink()
    out: List[Optional[PredictionStats]] = [None] * len(pending)
    if jobs <= 1 or len(pending) == 1:
        for benchmark, items in by_benchmark.items():
            trace = load_trace(benchmark)
            decoded = decode_branches(trace)
            streams_memo: Dict[StreamConfig, BranchStreams] = {}

            def serial_streams(signature: StreamConfig) -> BranchStreams:
                streams = streams_memo.get(signature)
                if streams is None:
                    with sink.span("streams.build", benchmark=benchmark):
                        streams = build_streams(decoded, signature)
                    streams_memo[signature] = streams
                else:
                    sink.incr("streams.reuse")
                return streams

            for position, config, need_mask in items:
                tier = _cell_backend(config, backend)
                sink.incr(f"runner.backend.{tier}")
                if tier == "vector":
                    streams = serial_streams(stream_signature(config))
                    with sink.span("cell", benchmark=benchmark,
                                   kernel="vector"):
                        out[position] = simulate_vector(
                            streams, config, collect_mask=need_mask
                        )
                elif tier == "streams":
                    streams = serial_streams(stream_signature(config))
                    with sink.span("cell", benchmark=benchmark,
                                   kernel="stream"):
                        out[position] = simulate_streamed(
                            streams, config, collect_mask=need_mask
                        )
                else:
                    if backend != "engine":
                        sink.incr("streams.fallback_reference")
                    with sink.span("cell", benchmark=benchmark,
                                   kernel="reference"):
                        out[position] = simulate(trace, config,
                                                 collect_mask=need_mask,
                                                 decoded=decoded)
        return out  # type: ignore[return-value]

    # Parallel path: make sure each trace exists on disk exactly once
    # before forking, so workers load rather than regenerate it.
    if use_trace_cache:
        for benchmark in by_benchmark:
            load_trace(benchmark)
    chunks = [
        (benchmark, chunk)
        for benchmark, items in by_benchmark.items()
        for chunk in _split_chunks(_group_by_signature(items), jobs)
    ]
    workers = min(jobs, len(chunks))
    sink.gauge("pool.jobs", workers)
    for benchmark, chunk in chunks:
        sink.event("pool.chunk", benchmark=benchmark, cells=len(chunk))
    pool_broke = False
    try:
        with sink.span("pool.run", jobs=workers, chunks=len(chunks),
                       cells=len(pending)):
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                # Forwarding the trace-cache location to workers relocates
                # files only; trace fingerprints key the cached contents.
                initargs=(trace_length, seed, use_trace_cache,
                          os.environ.get("REPRO_TRACE_CACHE"),  # repro-lint: ignore[det-env-read]
                          sink.ledger_path,
                          tuple(plugin_modules()),
                          backend),
            ) as pool:
                try:
                    futures = [
                        pool.submit(_run_chunk, benchmark, chunk)
                        for benchmark, chunk in chunks
                    ]
                    for future in as_completed(futures):
                        for position, stats in future.result():
                            out[position] = stats
                except BrokenProcessPool as exc:
                    # A worker died mid-sweep (OOM killer, signal, crash).
                    # Chunks that already returned are kept; everything
                    # else is recomputed serially below.
                    pool_broke = True
                    sink.event("pool.broken", error=str(exc))
                    warnings.warn(
                        f"worker pool broke mid-sweep ({exc}); finishing "
                        "the remaining cells serially"
                    )
    except (OSError, PermissionError) as exc:  # e.g. sandboxed /dev/shm
        sink.event("pool.unavailable", error=str(exc))
        warnings.warn(
            f"process pool unavailable ({exc}); running sweep serially"
        )
        return _compute(pending, 1, trace_length, seed, use_trace_cache,
                        trace_provider, backend)
    if pool_broke:
        remaining = [i for i, stats in enumerate(out) if stats is None]
        sink.event("pool.recovery", cells=len(remaining))
        redone = _compute([pending[i] for i in remaining], 1, trace_length,
                          seed, use_trace_cache, trace_provider, backend)
        for i, stats in zip(remaining, redone):
            out[i] = stats
    return out  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Reentrant pool handle (the sweep service's execution backend).
# ----------------------------------------------------------------------
class SweepPool:
    """A long-lived, reentrant pool handle for single-cell submissions.

    :func:`run_cells` owns its pool for the duration of one sweep and
    tears it down after; a long-running server wants the opposite — one
    warm pool whose workers keep their trace/stream memos across requests
    — and it submits from an asyncio event loop, one cell at a time, via
    ``loop.run_in_executor(pool.executor, ...)``.  ``jobs >= 1`` builds a
    :class:`ProcessPoolExecutor` with the same initializer as
    :func:`run_cells`, so every worker-side memo and execution-tier rule
    applies unchanged.  ``jobs == 0`` (or :meth:`degrade_to_thread` after
    a broken/unavailable process pool) swaps in a single-thread executor
    that runs :func:`_init_worker` in its one thread: the same worker
    machinery, serialised, with no fork — the fallback for sandboxed
    environments and the deterministic mode tests use.

    Thread mode deliberately passes ``ledger_path=None`` and
    ``trace_cache_dir=None`` to the initializer: the "worker" shares the
    parent process, whose sink and environment are already in place —
    attaching a worker-role sink in-process would clobber the parent's.
    """

    def __init__(self, jobs: Optional[int] = None, *,
                 trace_length: int = 400_000, seed: int = 1997,
                 use_trace_cache: bool = True, backend: str = "auto") -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from "
                f"{', '.join(BACKENDS)}"
            )
        self.jobs = default_jobs() if jobs is None else max(0, jobs)
        self.trace_length = trace_length
        self.seed = seed
        self.use_trace_cache = use_trace_cache
        self.backend = backend
        self._mode = "process" if self.jobs >= 1 else "thread"
        self._executor: Optional[Executor] = None

    @property
    def mode(self) -> str:
        """``"process"`` or ``"thread"`` (the degraded/inline mode)."""
        return self._mode

    @property
    def workers(self) -> int:
        return self.jobs if self._mode == "process" else 1

    @property
    def executor(self) -> Executor:
        """The live executor, built lazily on first use."""
        if self._executor is None:
            if self._mode == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_init_worker,
                    initargs=(self.trace_length, self.seed,
                              self.use_trace_cache,
                              os.environ.get("REPRO_TRACE_CACHE"),  # repro-lint: ignore[det-env-read]
                              get_sink().ledger_path,
                              tuple(plugin_modules()),
                              self.backend),
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix="repro-sweep",
                    initializer=_init_worker,
                    initargs=(self.trace_length, self.seed,
                              self.use_trace_cache, None, None, (),
                              self.backend),
                )
        return self._executor

    def submit_cell(self, benchmark: str, config: EngineConfig,
                    collect_mask: bool = False
                    ) -> "Future[PredictionStats]":
        """Submit one cell; returns the executor's future."""
        return self.executor.submit(
            _service_cell, benchmark, config, collect_mask
        )

    def degrade_to_thread(self) -> None:
        """Swap a broken/unavailable process pool for the thread fallback.

        Idempotent; pending futures on the old executor are abandoned to
        their owners (the scheduler resubmits), and results are unaffected
        — every execution mode is bit-identical by construction.
        """
        old = self._executor
        self._mode = "thread"
        self._executor = None
        get_sink().event("pool.degraded", mode="thread")
        if old is not None:
            old.shutdown(wait=False)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
