"""Stable cache keys for sweep cells.

A persistent result cache is only trustworthy if its keys cover *every*
input that can change a simulation's outcome:

* the full :class:`~repro.predictors.engine.EngineConfig` (which embeds the
  :class:`~repro.predictors.engine.HistoryConfig`, the direction-predictor
  and target-cache configs, and the BTB/RAS geometry);
* the trace identity — workload name, length, seed, and a hash of the
  generator sources (:func:`repro.workloads.trace_fingerprint`);
* the simulator code itself — a hash of every source file under
  ``repro.predictors`` plus the ISA and trace-schema modules, so editing a
  predictor invalidates stale results automatically, while unrelated
  changes (experiment tables, docs, environment variables) keep hitting.

Keys are hex SHA-256 digests of a canonical JSON rendering; nothing about
them depends on hash randomisation, dict order, or pickle details.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
from enum import Enum
from functools import lru_cache
from pathlib import Path
from typing import Any, Tuple

from repro.predictors import EngineConfig
from repro.workloads import trace_fingerprint


def _qualified_name(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def config_token(value: Any) -> Any:
    """Render a config object as a canonical JSON-serialisable structure.

    Dataclasses become ``[module-qualified name, {field: token, ...}]`` so
    two different config classes with identical field values never collide
    — not even same-named classes from different modules; enums become
    ``[module-qualified name, value]``.  Tuples render as
    ``["tuple", [...]]`` to stay distinct from lists.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: config_token(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return [_qualified_name(type(value)), fields]
    if isinstance(value, Enum):
        return [_qualified_name(type(value)), value.value]
    if isinstance(value, tuple):
        return ["tuple", [config_token(item) for item in value]]
    if isinstance(value, list):
        return [config_token(item) for item in value]
    if isinstance(value, dict):
        # Enum keys render as "ClassName.MEMBER" — str() of an IntEnum
        # changed between Python 3.10 and 3.12, and keys must not.
        def render(key: Any) -> str:
            if isinstance(key, Enum):
                return f"{type(key).__name__}.{key.name}"
            return str(key)

        return {
            render(k): config_token(v)
            for k, v in sorted(value.items(), key=lambda item: render(item[0]))
        }
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot tokenise {type(value).__name__} for a cache key")


#: Modules whose sources determine simulation results (beyond the configs).
_ENGINE_CODE_MODULES = (
    "repro.predictors",   # package: every .py underneath is hashed
    "repro.guest.isa",
    "repro.trace.trace",
)

#: Modules whose sources determine timing (cycle-count) results.
_TIMING_CODE_MODULES = (
    "repro.pipeline",     # package: every .py underneath is hashed
)


def _fingerprint_label(path: Path) -> str:
    """Stable per-file label mixed into the source fingerprint.

    The label is the path relative to the installed package root (posix
    separators), not the bare filename: two files named ``config.py`` in
    different subpackages must contribute distinct labels, and moving a
    file between subpackages must change the fingerprint.  Falls back to
    the filename for sources outside the package (not expected).
    """
    import repro

    package_root = Path(repro.__file__).parent.parent
    try:
        return path.resolve().relative_to(package_root.resolve()).as_posix()
    except ValueError:
        return path.name


def _source_fingerprint(module_names: Tuple[str, ...]) -> str:
    digest = hashlib.sha256()
    for module_name in module_names:
        module = importlib.import_module(module_name)
        if hasattr(module, "__path__"):
            paths = sorted(Path(module.__path__[0]).rglob("*.py"))
        else:
            paths = [Path(module.__file__)]
        for path in paths:
            digest.update(_fingerprint_label(path).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:12]


@lru_cache(maxsize=1)
def engine_code_fingerprint() -> str:
    """Short hash of the simulator sources behind every prediction run."""
    return _source_fingerprint(_ENGINE_CODE_MODULES)


@lru_cache(maxsize=1)
def timing_code_fingerprint() -> str:
    """Short hash of the pipeline-model sources behind every timing run."""
    return _source_fingerprint(_TIMING_CODE_MODULES)


#: Version of the cell-key payload layout.  Bumped to 2 when the config
#: side switched from the Python-class-qualified ``config_token`` rendering
#: to the declarative ``EngineConfig.to_spec()`` form, so registry-era keys
#: depend only on the spec (kind strings + field values), never on where
#: the implementing classes live.  The bump is a deliberate one-time
#: invalidation of pre-registry cached results (documented in
#: ``docs/PREDICTORS.md``); results re-fill on the next run.
CELL_KEY_VERSION = 2


def cell_key(benchmark: str, config: EngineConfig, trace_length: int,
             seed: int) -> str:
    """Result-cache key for one ``(benchmark, config)`` sweep cell.

    The config enters as its spec (:meth:`EngineConfig.to_spec`): two
    configs collide exactly when their specs are equal, which is also the
    condition under which the registry builds identical predictors.

    Deliberately independent of ``collect_mask``: a cached result that
    carries the mispredict mask satisfies both mask and no-mask requests,
    so the cache stores at most one entry per cell (see
    :meth:`repro.runner.cache.ResultCache.load`).
    """
    payload = json.dumps(
        {
            "version": CELL_KEY_VERSION,
            "trace": trace_fingerprint(benchmark, trace_length, seed),
            "engine_code": engine_code_fingerprint(),
            "spec": config.to_spec(),
        },
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def timing_key(benchmark: str, config: EngineConfig, trace_length: int,
               seed: int, machine: Any) -> str:
    """Result-cache key for one cell's *cycle count* on a machine.

    Builds on :func:`cell_key` (which already covers the trace and the
    predictor side) and adds the :class:`~repro.pipeline.MachineConfig`
    plus a hash of the pipeline-model sources, so editing the timing model
    or changing any machine parameter invalidates cached cycle counts
    without touching the prediction entries.
    """
    payload = json.dumps(
        {
            "cell": cell_key(benchmark, config, trace_length, seed),
            "timing_code": timing_code_fingerprint(),
            "machine": config_token(machine),
        },
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()
