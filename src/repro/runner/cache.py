"""Persistent on-disk cache of :class:`PredictionStats` results.

Re-running ``repro all`` re-simulates hundreds of ``(benchmark, config)``
cells whose inputs have not changed.  This cache makes the second run
near-free: each cell's stats are stored as one small compressed npz file
keyed by :func:`repro.runner.keys.cell_key` (trace fingerprint + engine
config + simulator-code hash), so any change that could alter a result
misses, and everything else hits.  Cycle counts from the timing model are
stored alongside as tiny json files keyed by
:func:`repro.runner.keys.timing_key` (cell key + machine config +
pipeline-code hash), so a warm re-run skips ``run_timing`` too.

Control knobs:

* ``REPRO_RESULT_CACHE=0`` (or ``off`` / ``no`` / ``false``) disables the
  cache entirely — equivalent to the CLI's ``--no-result-cache``;
* ``REPRO_RESULT_CACHE=/some/dir`` relocates it (default
  ``~/.cache/repro-results``);
* deleting the directory clears it.

Every load/store (and every corrupt-entry eviction) bumps a
``result_cache.*`` counter on the :mod:`repro.obs` sink, so an enabled
run ledger shows exactly how the cache behaved — free when obs is off.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.guest.isa import BranchKind
from repro.obs import get_sink
from repro.predictors import PredictionStats

_FORMAT_VERSION = 1

#: values of ``REPRO_RESULT_CACHE`` that turn the cache off
_OFF_VALUES = {"0", "off", "no", "false", ""}

#: Seconds after which an unreleased cell claim counts as abandoned (the
#: claiming process died); a fresh claimer may break and take it over.
DEFAULT_CLAIM_TTL_S = 120.0

#: Exceptions a corrupt/torn/stale cache entry may raise on load.  A
#: truncated npz manifests as ``zipfile.BadZipFile`` or ``EOFError``
#: depending on where the bytes stop; all of them mean "miss", never
#: "crash" — the multi-server sharing story depends on readers surviving
#: whatever a crashed writer left behind.
_CORRUPT_ENTRY_ERRORS = (
    ValueError, OSError, KeyError, EOFError, zipfile.BadZipFile,
)


def result_cache_enabled() -> bool:
    """Whether the environment allows persistent result caching."""
    # Toggles whether results are cached, never what they are.
    return os.environ.get(  # repro-lint: ignore[det-env-read]
        "REPRO_RESULT_CACHE", "on"
    ).lower() not in _OFF_VALUES


def default_result_cache_dir() -> Path:
    # Relocates the cache directory; cell keys make any location safe.
    override = os.environ.get("REPRO_RESULT_CACHE", "")  # repro-lint: ignore[det-env-read]
    if override and override.lower() not in _OFF_VALUES and override != "on":
        return Path(override)
    return Path.home() / ".cache" / "repro-results"


class ResultCache:
    """npz-file-per-cell store; writes are atomic, corrupt entries self-heal."""

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = (
            Path(directory) if directory is not None else default_result_cache_dir()
        )

    @classmethod
    def from_env(cls) -> Optional["ResultCache"]:
        """The cache the environment asks for, or ``None`` if disabled."""
        return cls() if result_cache_enabled() else None

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directory listings manageable for
        # multi-thousand-cell sweeps.
        return self.directory / key[:2] / f"{key}.npz"

    # ------------------------------------------------------------------
    def load(self, key: str, need_mask: bool = False) -> Optional[PredictionStats]:
        """Return the cached stats for ``key``, or ``None`` on a miss.

        ``need_mask=True`` additionally requires the entry to carry the
        per-instruction mispredict mask; maskless entries count as misses
        (and are overwritten by the maskful recompute).

        Crash-consistency contract (the flip side of :meth:`store`): a
        reader can observe either no file or a complete one under normal
        operation, but a machine crash between the rename and the data
        reaching disk can leave a *torn* (truncated or zero-byte) entry.
        Any such entry — along with any other undecodable bytes — is
        treated as a miss and evicted, never raised to the caller.
        """
        path = self._path(key)
        if not path.exists():
            get_sink().incr("result_cache.load.miss")
            return None
        try:
            with np.load(path) as archive:
                if int(archive["version"]) != _FORMAT_VERSION:
                    raise ValueError("format version mismatch")
                has_mask = bool(archive["has_mask"])
                if need_mask and not has_mask:
                    get_sink().incr("result_cache.load.miss")
                    return None
                stats = PredictionStats(
                    instructions=int(archive["instructions"]),
                    btb_lookups=int(archive["btb_lookups"]),
                    btb_hits=int(archive["btb_hits"]),
                )
                for value, executed, mispredicted in zip(
                    archive["kind_values"].tolist(),
                    archive["executed"].tolist(),
                    archive["mispredicted"].tolist(),
                ):
                    counter = stats.counters(BranchKind(value))
                    counter.executed = executed
                    counter.mispredicted = mispredicted
                if has_mask:
                    n = int(archive["mask_length"])
                    stats.mispredict_mask = np.unpackbits(
                        archive["mask_packed"], count=n
                    ).astype(bool)
                get_sink().incr("result_cache.load.hit")
                return stats
        except _CORRUPT_ENTRY_ERRORS:
            path.unlink(missing_ok=True)  # corrupt or stale entry
            get_sink().incr("result_cache.evict")
            return None

    def store(self, key: str, stats: PredictionStats) -> None:
        """Persist ``stats`` under ``key`` with atomic visibility.

        Write-path audit (deliberately ``fsync``-free): the payload is
        written to a ``mkstemp`` temporary *in the destination directory*
        (same filesystem, so the rename cannot degrade to copy+delete),
        then published with ``os.replace`` — readers see the old entry or
        the whole new one, never a partial write, and concurrent writers
        of the same key last-write-win with identical bytes (the key
        covers every input).  Skipping ``fsync`` trades durability for
        speed: an OS/power crash may leave the renamed file torn on disk,
        which :meth:`load` already treats as an evictable miss, so the
        worst case is one lost cache entry, never a wrong result.
        """
        get_sink().incr("result_cache.store")
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        kinds = sorted(stats.per_kind, key=lambda kind: kind.value)
        mask = stats.mispredict_mask
        payload = dict(
            version=np.int64(_FORMAT_VERSION),
            instructions=np.int64(stats.instructions),
            btb_lookups=np.int64(stats.btb_lookups),
            btb_hits=np.int64(stats.btb_hits),
            kind_values=np.array([k.value for k in kinds], dtype=np.int64),
            executed=np.array(
                [stats.per_kind[k].executed for k in kinds], dtype=np.int64
            ),
            mispredicted=np.array(
                [stats.per_kind[k].mispredicted for k in kinds], dtype=np.int64
            ),
            has_mask=np.bool_(mask is not None),
        )
        if mask is not None:
            payload["mask_packed"] = np.packbits(mask)
            payload["mask_length"] = np.int64(len(mask))
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **payload)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    # ------------------------------------------------------------------
    def _cycles_path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.cycles.json"

    def load_cycles(self, key: str) -> Optional[int]:
        """Cached cycle count under a :func:`~repro.runner.keys.timing_key`."""
        path = self._cycles_path(key)
        if not path.exists():
            get_sink().incr("result_cache.cycles.miss")
            return None
        try:
            payload = json.loads(path.read_text())
            if payload["version"] != _FORMAT_VERSION:
                raise ValueError("format version mismatch")
            get_sink().incr("result_cache.cycles.hit")
            return int(payload["cycles"])
        except (ValueError, OSError, KeyError, TypeError):
            path.unlink(missing_ok=True)  # corrupt or stale entry
            get_sink().incr("result_cache.evict")
            return None

    # ------------------------------------------------------------------
    # Cell claims: cross-process work coordination for the sweep service.
    # ------------------------------------------------------------------
    def _claim_path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.claim"

    def claim(self, key: str, ttl_s: float = DEFAULT_CLAIM_TTL_S) -> bool:
        """Atomically claim the right to compute ``key``; True if won.

        N server instances sharing one cache directory use claims to
        split a sweep: exactly one process wins ``O_CREAT | O_EXCL`` on
        the claim file and computes the cell; the others poll the cache
        until the winner's :meth:`store` lands (see
        :class:`repro.service.scheduler.ShardScheduler`).  A claim left
        behind by a dead process goes stale after ``ttl_s`` seconds and
        is broken by the next claimer — losing a claim therefore delays a
        cell, never loses it.  Claims gate *who computes*, not *what* the
        result is, so they are invisible in the cached bytes.
        """
        path = self._claim_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        for _ in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                age = self.claim_age(key)
                if age is not None and age <= ttl_s:
                    get_sink().incr("result_cache.claim.lost")
                    return False
                # Stale claim (holder died without releasing): break it.
                # Concurrent breakers both unlink, then O_EXCL arbitrates
                # the retry, so at most one claimer wins.
                path.unlink(missing_ok=True)
                get_sink().incr("result_cache.claim.broken")
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps({"pid": os.getpid()}))
            get_sink().incr("result_cache.claim.won")
            return True
        get_sink().incr("result_cache.claim.lost")
        return False

    def release(self, key: str) -> None:
        """Drop a claim taken by :meth:`claim` (idempotent)."""
        self._claim_path(key).unlink(missing_ok=True)

    def claim_age(self, key: str) -> Optional[float]:
        """Seconds since ``key`` was claimed, or ``None`` if unclaimed."""
        try:
            mtime = self._claim_path(key).stat().st_mtime
        except OSError:
            return None
        # Claim freshness is a scheduling hint between live processes;
        # results never read it (claims only decide who computes a cell).
        return max(0.0, time.time() - mtime)  # repro-lint: ignore[det-wall-clock]

    def store_cycles(self, key: str, cycles: int) -> None:
        get_sink().incr("result_cache.cycles.store")
        path = self._cycles_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"version": _FORMAT_VERSION, "cycles": int(cycles)})
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
