"""Parallel sweep execution with persistent result caching.

The paper's tables are design-space sweeps over hundreds of
``(benchmark, EngineConfig)`` cells.  This package is the execution layer
that makes them fast and repeatable:

* :func:`run_cells` — fan cells out over a process pool (``jobs`` workers,
  ``REPRO_JOBS`` default), each worker loading and decoding every trace at
  most once; results come back in deterministic cell order and are
  bit-identical to a serial run;
* :class:`ResultCache` — an on-disk store keyed by
  :func:`~repro.runner.keys.cell_key` (trace fingerprint + full engine
  config + simulator-code hash) so unchanged cells are never re-simulated,
  with ``REPRO_RESULT_CACHE=0`` / ``--no-result-cache`` as the bypass;
* :mod:`~repro.runner.keys` — the stable hashing underneath.

``ExperimentContext`` routes every experiment through this layer; use it
directly for custom sweeps::

    from repro.runner import SweepCell, run_cells
    stats = run_cells(
        [SweepCell("perl", config) for config in configs],
        jobs=8, trace_length=400_000, seed=1997,
    )
"""

from repro.runner.cache import (
    DEFAULT_CLAIM_TTL_S,
    ResultCache,
    default_result_cache_dir,
    result_cache_enabled,
)
from repro.runner.keys import (
    CELL_KEY_VERSION,
    cell_key,
    config_token,
    engine_code_fingerprint,
    timing_code_fingerprint,
    timing_key,
)
from repro.runner.pool import (
    BACKENDS,
    SweepCell,
    SweepPool,
    default_jobs,
    run_cells,
)

__all__ = [
    "BACKENDS",
    "CELL_KEY_VERSION",
    "DEFAULT_CLAIM_TTL_S",
    "ResultCache",
    "SweepCell",
    "SweepPool",
    "cell_key",
    "config_token",
    "default_jobs",
    "default_result_cache_dir",
    "engine_code_fingerprint",
    "result_cache_enabled",
    "run_cells",
    "timing_code_fingerprint",
    "timing_key",
]
