"""Table 9 — tagged target cache: 9 vs 16 pattern-history bits.

Tag storage frees the history length from the table size, so a tagged
cache can index/tag with more history than a 512-entry tagless cache's 9
bits.  Paper finding: "For caches with a high degree of set-associativity,
using more history bits results in a significant performance improvement
... For target caches with a small degree of set-associativity, using more
history bits degrades performance" — longer history means more distinct
(jump, history) pairs competing for sets.
"""

from __future__ import annotations

from repro.experiments.common import (
    FOCUS_BENCHMARKS,
    ExperimentContext,
    ExperimentTable,
)
from repro.experiments.configs import pattern_history, tagged_engine
from repro.predictors import EngineConfig

ASSOCIATIVITIES = [1, 2, 4, 8, 16, 32]
HISTORY_BITS = [9, 16]


def _config(assoc: int, bits: int) -> EngineConfig:
    return tagged_engine(
        assoc=assoc, history_bits=bits, history=pattern_history(bits)
    )


def run(ctx: ExperimentContext) -> ExperimentTable:
    cells = [(benchmark, EngineConfig()) for benchmark in FOCUS_BENCHMARKS]
    cells += [
        (benchmark, _config(assoc, bits))
        for benchmark in FOCUS_BENCHMARKS
        for assoc in ASSOCIATIVITIES
        for bits in HISTORY_BITS
    ]
    ctx.predictions(cells, collect_mask=True)
    rows = []
    for benchmark in FOCUS_BENCHMARKS:
        for assoc in ASSOCIATIVITIES:
            values = [
                ctx.execution_time_reduction(benchmark, _config(assoc, bits))
                for bits in HISTORY_BITS
            ]
            rows.append((f"{benchmark} {assoc}-way", values))
    return ExperimentTable(
        experiment_id="Table 9",
        title="Tagged target cache: 9 vs 16 pattern-history bits "
              "(exec-time reduction)",
        columns=[f"{bits} bits" for bits in HISTORY_BITS],
        rows=rows,
        notes="paper: longer history wins only at high associativity; at "
              "low associativity the extra contexts cause conflict misses",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
