"""Table 4 — tagless target cache index schemes (pattern history).

512-entry tagless caches indexed by GAg(9), GAs(8,1), GAs(7,2) and
gshare(9).  Paper values (indirect misprediction): perl 31.3% / 33.4% /
34.4%(?) / 31.4%; gcc 35.x% for GAg with GAs competitive, gshare best.
Reproduction targets: gshare <= GAg; GAs closer to GAg on gcc (many static
jumps, address bits carry information) than on perl (few static jumps,
history bits are worth more than address bits).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.experiments.common import (
    FOCUS_BENCHMARKS,
    ExperimentContext,
    ExperimentTable,
)
from repro.experiments.configs import pattern_history, tagless_engine
from repro.predictors import EngineConfig

#: Row labels come from ``TargetCacheConfig.label()`` — GAg(9), GAs(8,1),
#: GAs(7,2), gshare(9) — so the table and the registry can never disagree.
SCHEMES = [
    dict(scheme="gag", history_bits=9, address_bits=0),
    dict(scheme="gas", history_bits=8, address_bits=1),
    dict(scheme="gas", history_bits=7, address_bits=2),
    dict(scheme="gshare", history_bits=9, address_bits=0),
]


def _config(kwargs: Dict[str, Any]) -> EngineConfig:
    history = pattern_history(max(kwargs["history_bits"], 9))
    return tagless_engine(history=history, **kwargs)


def run(ctx: ExperimentContext) -> ExperimentTable:
    # one batch: every cell simulates in parallel / from the result cache
    ctx.predictions([
        (benchmark, _config(kwargs))
        for kwargs in SCHEMES for benchmark in FOCUS_BENCHMARKS
    ])
    rows = []
    for kwargs in SCHEMES:
        config = _config(kwargs)
        assert config.target_cache is not None
        values = [
            ctx.prediction(benchmark, config).indirect_mispred_rate
            for benchmark in FOCUS_BENCHMARKS
        ]
        rows.append((config.target_cache.label(), values))
    return ExperimentTable(
        experiment_id="Table 4",
        title="Tagless target cache (512 entries): index-scheme "
              "misprediction rates",
        columns=list(FOCUS_BENCHMARKS),
        rows=rows,
        notes="paper: gshare best (spreads entries), GAs competitive with "
              "GAg only on gcc (many static indirect jumps)",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
