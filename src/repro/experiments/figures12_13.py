"""Figures 12/13 — tagless (512 entries) vs tagged (256 entries).

The paper's closing comparison: for equal-ish cost, a tagless cache has
twice the entries but suffers interference; a tagged cache pays capacity
for isolation.  Finding: "a tagless target cache outperforms tagged target
caches with a small degree of set-associativity.  On the other hand, a
tagged target cache with 4 or more entries per set outperforms the tagless
target cache."  Both use gshare-style History-Xor indexing with 9-bit
global pattern history; metric is execution-time reduction, one series per
benchmark across the tagged cache's associativity.
"""

from __future__ import annotations

from repro.experiments.common import (
    FOCUS_BENCHMARKS,
    ExperimentContext,
    ExperimentTable,
)
from repro.experiments.configs import tagged_engine, tagless_engine
from repro.predictors import EngineConfig

ASSOCIATIVITIES = [1, 2, 4, 8, 16]


def run(ctx: ExperimentContext) -> ExperimentTable:
    cells = [(benchmark, EngineConfig()) for benchmark in FOCUS_BENCHMARKS]
    cells += [
        (benchmark, config)
        for benchmark in FOCUS_BENCHMARKS
        for config in [tagged_engine(assoc=a) for a in ASSOCIATIVITIES]
        + [tagless_engine()]
    ]
    ctx.predictions(cells, collect_mask=True)
    columns = [f"tagged {a}-way" for a in ASSOCIATIVITIES] + ["tagless 512"]
    rows = []
    for benchmark in FOCUS_BENCHMARKS:
        values = [
            ctx.execution_time_reduction(benchmark, tagged_engine(assoc=assoc))
            for assoc in ASSOCIATIVITIES
        ]
        values.append(
            ctx.execution_time_reduction(benchmark, tagless_engine())
        )
        rows.append((benchmark, values))
    return ExperimentTable(
        experiment_id="Figures 12-13",
        title="Tagless (512e) vs tagged (256e) target cache "
              "(exec-time reduction)",
        columns=columns,
        rows=rows,
        notes="paper crossover: tagless beats 1-2 way tagged; >=4-way "
              "tagged beats tagless",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
