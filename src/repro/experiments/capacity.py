"""Extension — target-cache capacity sensitivity.

The paper fixed its hardware budgets (512 tagless / 256 tagged entries,
"the target cache increases the predictor hardware budget by 10 percent").
This sweep shows where those budgets sit on the capacity curve: tagless
cache size from 64 to 4096 entries, per focus benchmark, with the §4.2.3
best history.  The knee of the curve is where the working set of
(jump, history) contexts fits; beyond it, extra entries only dilute
interference.
"""

from __future__ import annotations

from repro.experiments.common import (
    FOCUS_BENCHMARKS,
    ExperimentContext,
    ExperimentTable,
)
from repro.experiments.configs import (
    path_scheme_history,
    pattern_history,
    tagless_engine,
)
from repro.predictors import EngineConfig

HISTORY_BITS = [6, 7, 8, 9, 10, 11, 12]   # 64 .. 4096 entries


def _config(benchmark: str, bits: int) -> EngineConfig:
    if benchmark == "perl":
        history = path_scheme_history("ind jmp", bits=bits)
    else:
        history = pattern_history(bits)
    return tagless_engine(history_bits=bits, history=history)


def run(ctx: ExperimentContext) -> ExperimentTable:
    ctx.predictions([
        (benchmark, _config(benchmark, bits))
        for benchmark in FOCUS_BENCHMARKS for bits in HISTORY_BITS
    ])
    rows = []
    for benchmark in FOCUS_BENCHMARKS:
        values = [
            ctx.prediction(
                benchmark, _config(benchmark, bits)
            ).indirect_mispred_rate
            for bits in HISTORY_BITS
        ]
        rows.append((benchmark, values))
    return ExperimentTable(
        experiment_id="Extension: capacity",
        title="Tagless target-cache capacity sweep (misprediction rate)",
        columns=[f"{1 << bits}e" for bits in HISTORY_BITS],
        rows=rows,
        notes="the paper's 512-entry budget sits near the knee for both "
              "focus benchmarks",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
