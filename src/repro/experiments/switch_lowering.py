"""Extension — switch lowering x predictor kind on the interpreter cores.

The paper takes the dispatch shape as given: every switch is a dense jump
table, so every dispatch is one hard-to-predict indirect jump.  Compilers
actually get to choose (Bernstein's clustering, later refined by Menezes):
a balanced compare-and-branch tree has *no* indirect jumps at all, and a
density-clustered hybrid keeps tables only for the hot case runs.  The
structured ``switch`` construct (:mod:`repro.guest.lowering`) makes that
choice a one-knob axis over the same guest programs, so this sweep can ask
the question the paper could not: how much of the target cache's win
survives when the compiler simply lowers dispatch differently?

Each row is one ``benchmark@lowering`` pair; the predictor columns report
branch mispredictions per 1000 instructions (MPKI) over *all* branch kinds,
because the lowerings trade one kind for the other — an indirect-only rate
is meaningless for ``if_tree`` (no indirect jumps left to mispredict), and
a rate over branches shifts its denominator when the tree inflates the
branch count.  The two mix columns (dynamic indirect and conditional
branches per 1k instructions) show the exchange rate.  The qualitative result: ``if_tree``
eliminates indirect mispredicts but inflates the conditional stream,
``clustered`` sits between, and the history-based target caches claw back
most of ``jump_table``'s gap — the paper's mechanism, now visible as one
point on a compiler design axis rather than an absolute.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.experiments.configs import preset
from repro.guest.lowering import lowering_names
from repro.obs import get_sink
from repro.predictors import EngineConfig

#: The interpreter-heavy benchmarks where dispatch shape matters most
#: (§4.1 focuses on gcc and perl as the indirect-jump-dominated pair;
#: xlisp adds the tag-dispatch evaluator).
BENCHMARKS = ("perl", "gcc", "xlisp")

#: Predictor kinds swept per lowering: the BTB baseline, the tagless and
#: tagged pattern-history target caches, the cascaded and ITTAGE staged
#: predictors, and the two-level BTB backstop.
PREDICTOR_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("btb-only", "btb-only"),
    ("tagless", "tagless-gshare9"),
    ("tagged", "tagged-4way"),
    ("cascaded", "cascaded-256"),
    ("ittage", "ittage-lite"),
    ("btb2", "btb2-micro"),
)


def _row_label(benchmark: str, lowering: str) -> str:
    return f"{benchmark}@{lowering}"


def _configs() -> List[EngineConfig]:
    return [preset(name) for _, name in PREDICTOR_COLUMNS]


def run(ctx: ExperimentContext) -> ExperimentTable:
    lowerings = lowering_names()
    configs = _configs()
    # Prefetch one lowering at a time so the obs stream tags every cell
    # with the lowering it belongs to.
    for lowering in lowerings:
        cells = [
            (_row_label(benchmark, lowering), config)
            for benchmark in BENCHMARKS
            for config in configs
        ]
        with get_sink().span("lowering_sweep", lowering=lowering,
                             cells=len(cells)):
            ctx.predictions(cells)

    rows = []
    for benchmark in BENCHMARKS:
        for lowering in lowerings:
            name = _row_label(benchmark, lowering)
            trace = ctx.trace(name)
            per_k = 1000.0 / len(trace)
            indirect_per_k = float(np.count_nonzero(trace.is_indirect_jump))
            conditional_per_k = float(np.count_nonzero(trace.is_conditional))
            values = []
            for config in configs:
                stats = ctx.prediction(name, config)
                mpki = (1000.0 * stats.branch_mispredictions
                        / stats.instructions if stats.instructions else 0.0)
                values.append(mpki)
            values += [indirect_per_k * per_k, conditional_per_k * per_k]
            rows.append((name, values))
    return ExperimentTable(
        experiment_id="Extension: switch_lowering",
        title="Switch lowering x predictor "
              "(branch mispredictions per 1k instructions)",
        columns=[label for label, _ in PREDICTOR_COLUMNS]
                + ["ind/1k", "cond/1k"],
        rows=rows,
        value_format="float",
        notes="MPKI over all branch kinds: if_tree converts indirect "
              "dispatch into conditional-branch trees (ind/1k drops to "
              "zero, cond/1k inflates), clustered keeps tables only for "
              "hot case runs, and the target-cache columns show how much "
              "of the jump_table gap history prediction recovers",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
