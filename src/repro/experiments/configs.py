"""Canonical predictor configurations used across experiments.

Thin constructors over :class:`~repro.predictors.engine.EngineConfig` so
experiment modules read like the paper's table captions, plus the named
spec presets (:data:`PRESETS`) that ``repro sweep --spec`` files reference
by name instead of spelling out a full engine spec.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.predictors import EngineConfig, HistoryConfig, HistorySource
from repro.predictors.history import PathFilter
from repro.predictors.spec import Spec
from repro.predictors.target_cache import TaggedIndexing, TargetCacheConfig


def pattern_history(bits: int = 9) -> HistoryConfig:
    return HistoryConfig(source=HistorySource.PATTERN, bits=bits)


def path_history(path_filter: PathFilter, bits: int = 9,
                 bits_per_target: int = 1, address_bit: int = 2) -> HistoryConfig:
    return HistoryConfig(
        source=HistorySource.PATH_GLOBAL, bits=bits,
        bits_per_target=bits_per_target, address_bit=address_bit,
        path_filter=path_filter,
    )


def per_address_history(bits: int = 9, bits_per_target: int = 1,
                        address_bit: int = 2) -> HistoryConfig:
    return HistoryConfig(
        source=HistorySource.PATH_PER_ADDRESS, bits=bits,
        bits_per_target=bits_per_target, address_bit=address_bit,
    )


def tagless_engine(scheme: str = "gshare", history_bits: int = 9,
                   address_bits: int = 0,
                   history: Optional[HistoryConfig] = None) -> EngineConfig:
    """A 512-entry-class tagless target cache (2**(h+a) entries)."""
    if history is None:
        history = pattern_history(max(history_bits, 9))
    return EngineConfig(
        target_cache=TargetCacheConfig(
            kind="tagless", scheme=scheme,
            history_bits=history_bits, address_bits=address_bits,
        ),
        history=history,
    )


def tagged_engine(assoc: int, indexing: TaggedIndexing = TaggedIndexing.HISTORY_XOR,
                  entries: int = 256, history_bits: int = 9,
                  history: Optional[HistoryConfig] = None) -> EngineConfig:
    """A 256-entry tagged target cache (the paper's §4.3 configuration)."""
    if history is None:
        history = pattern_history(max(history_bits, 9))
    return EngineConfig(
        target_cache=TargetCacheConfig(
            kind="tagged", entries=entries, assoc=assoc,
            indexing=indexing, history_bits=history_bits,
        ),
        history=history,
    )


def btb2_engine(entries: int = 64, assoc: int = 4, l2_entries: int = 4096,
                l2_assoc: int = 8) -> EngineConfig:
    """A two-level BTB (small L1 backed by a large last-level BTB).

    The server-scale capacity configuration (``repro server_btb``); it
    uses no history, so the default :class:`HistoryConfig` is kept.
    """
    return EngineConfig(
        target_cache=TargetCacheConfig(
            kind="btb2", entries=entries, assoc=assoc,
            l2_entries=l2_entries, l2_assoc=l2_assoc,
        ),
    )


#: The path-history scheme labels of the paper's Tables 5, 6 and 8.
PATH_SCHEME_LABELS = ("per-addr", "branch", "control", "ind jmp", "call/ret")


def path_scheme_history(label: str, bits: int = 9, bits_per_target: int = 1,
                        address_bit: int = 2) -> HistoryConfig:
    """History config for one of the paper's path-history scheme labels."""
    if label == "per-addr":
        return per_address_history(bits, bits_per_target, address_bit)
    filters = {
        "branch": PathFilter.BRANCH,
        "control": PathFilter.CONTROL,
        "ind jmp": PathFilter.IND_JMP,
        "call/ret": PathFilter.CALL_RET,
    }
    return path_history(filters[label], bits, bits_per_target, address_bit)


#: Named engine-spec presets: partial :meth:`EngineConfig.from_spec` dicts.
#: ``repro sweep --spec`` cells reference these by name (``"preset":
#: "tagless-gshare9"``) instead of inlining a full engine spec, and
#: ``tests/test_spec.py`` pins them equal to the constructor-built
#: configurations above so a preset and its table cell can never drift.
PRESETS: Dict[str, Spec] = {
    "btb-only": {},
    "tagless-gshare9": {
        "target_cache": {"kind": "tagless", "scheme": "gshare",
                         "history_bits": 9},
        "history": {"source": "pattern", "bits": 9},
    },
    "tagged-4way": {
        "target_cache": {"kind": "tagged", "entries": 256, "assoc": 4},
        "history": {"source": "pattern", "bits": 9},
    },
    "cascaded-256": {
        "target_cache": {"kind": "cascaded", "entries": 256, "assoc": 4},
        "history": {"source": "pattern", "bits": 9},
    },
    "ittage-lite": {
        "target_cache": {"kind": "ittage", "entries": 128},
        "history": {"source": "path_global", "bits": 48,
                    "path_filter": "control"},
    },
    "btb2-micro": {
        "target_cache": {"kind": "btb2", "entries": 64, "assoc": 4,
                         "l2_entries": 4096, "l2_assoc": 8},
    },
    "oracle": {"target_cache": {"kind": "oracle"}},
    "last-target": {"target_cache": {"kind": "last_target"}},
}


def preset(name: str) -> EngineConfig:
    """Build the :class:`EngineConfig` a preset names."""
    try:
        spec: Dict[str, Any] = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {', '.join(preset_names())}"
        ) from None
    return EngineConfig.from_spec(spec)


def preset_names() -> List[str]:
    """Preset names in definition order (baseline first)."""
    return list(PRESETS)
