"""Extension — server-scale BTB capacity and the two-level BTB.

The paper's eight SPEC-like workloads fit the baseline 256-set x 4-way
BTB, so every BTB-miss fall-through prediction is noise, not signal.  The
server-like family (``repro.workloads.server_like``) inverts that:
thousands of lukewarm static branch sites thrash BTB *capacity*, and the
dominant indirect-jump loss is the fetch engine predicting fall-through
because the branch's entry was evicted — even though its target never
changed.  History-indexed target caches cannot recover these (they are
only consulted on BTB hits); a bigger backing level can.

This sweep runs the ``btb2`` kind — a small L1 BTB backed by a large
last-level BTB with miss-triggered prefetch into the L1 (the Micro BTB
structure, PAPERS.md) — across L2 geometry on the three server presets,
with perl and gcc as SPEC-like controls.  The capacity story has two
directions, both asserted by ``tests/test_server_btb.py``:

* on the server workloads the L2 recovers a substantial fraction of the
  baseline indirect mispredicts (the ``recovered`` column);
* on the SPEC-like controls btb2 is approximately neutral: their
  footprints fit the primary BTB, the backstop (almost) never fires, and
  the rate stays within a fraction of a point of the BTB-only baseline
  (exactly equal on perl).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.experiments.configs import btb2_engine
from repro.predictors import EngineConfig

#: The server presets under test and the SPEC-like neutrality controls.
SERVER_BENCHMARKS = ("webserver_like", "db_like", "rpc_like")
CONTROL_BENCHMARKS = ("perl", "gcc")

#: Swept L2 geometries (entries, assoc) behind a fixed 64-entry/4-way L1;
#: 0 entries disables the L2 (the L1-only degenerate point).
L2_GEOMETRIES: Tuple[Tuple[int, int], ...] = (
    (0, 1), (2048, 8), (4096, 8), (8192, 8),
)


def _column(l2_entries: int, l2_assoc: int) -> str:
    if not l2_entries:
        return "btb2 no-L2"
    return f"+L2 {l2_entries}e/{l2_assoc}w"


def _cells(benchmark: str) -> List[Tuple[str, EngineConfig]]:
    cells = [(benchmark, EngineConfig())]
    cells += [
        (benchmark, btb2_engine(l2_entries=entries, l2_assoc=assoc))
        for entries, assoc in L2_GEOMETRIES
    ]
    return cells


def run(ctx: ExperimentContext) -> ExperimentTable:
    benchmarks = list(SERVER_BENCHMARKS) + list(CONTROL_BENCHMARKS)
    ctx.predictions(
        [cell for benchmark in benchmarks for cell in _cells(benchmark)]
    )
    rows = []
    for benchmark in benchmarks:
        base = ctx.prediction(benchmark, EngineConfig())
        values = [base.indirect_mispred_rate]
        for entries, assoc in L2_GEOMETRIES:
            stats = ctx.prediction(
                benchmark, btb2_engine(l2_entries=entries, l2_assoc=assoc)
            )
            values.append(stats.indirect_mispred_rate)
        best = values[-1]  # the largest L2 geometry
        recovered = (
            (values[0] - best) / values[0] if values[0] else 0.0
        )
        btb_hit = (
            base.btb_hits / base.btb_lookups if base.btb_lookups else 0.0
        )
        values += [recovered, btb_hit]
        rows.append((benchmark, values))
    return ExperimentTable(
        experiment_id="Extension: server_btb",
        title="Two-level BTB on server-scale footprints "
              "(indirect misprediction rate)",
        columns=(
            ["btb-only"]
            + [_column(entries, assoc) for entries, assoc in L2_GEOMETRIES]
            + ["recovered", "BTB hit"]
        ),
        rows=rows,
        notes="recovered = fraction of baseline indirect mispredicts "
              "removed by the largest L2; server rows are capacity-bound "
              "(low BTB hit rate), while the perl/gcc controls fit the "
              "primary BTB so btb2 is approximately neutral there",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
