"""Table 5 — path history: which target-address bit to record.

Each qualifying instruction contributes one bit of its destination address
to the 9-bit path history register; this experiment sweeps *which* bit
(paper rows "addr bit 2..9" — bits 0-1 are always zero on a word-aligned
ISA).  Metric: reduction in execution time over the BTB-only machine, for
each path-history scheme (per-address, and the four global filters).

Paper finding: "the lower address bits provide more information than the
higher address bits" — the benefit decays as the recorded bit moves up.
"""

from __future__ import annotations

from repro.experiments.common import (
    FOCUS_BENCHMARKS,
    ExperimentContext,
    ExperimentTable,
)
from repro.experiments.configs import (
    PATH_SCHEME_LABELS,
    path_scheme_history,
    tagless_engine,
)
from repro.predictors import EngineConfig

ADDRESS_BITS = list(range(2, 8))


def _config(scheme: str, address_bit: int) -> EngineConfig:
    history = path_scheme_history(
        scheme, bits=9, bits_per_target=1, address_bit=address_bit
    )
    return tagless_engine(history=history)


def run(ctx: ExperimentContext) -> ExperimentTable:
    # exec-time cells need the mispredict mask; prefetch them (and the
    # BTB-only baselines) in one parallel batch
    cells = [(benchmark, EngineConfig()) for benchmark in FOCUS_BENCHMARKS]
    cells += [
        (benchmark, _config(scheme, address_bit))
        for benchmark in FOCUS_BENCHMARKS
        for address_bit in ADDRESS_BITS
        for scheme in PATH_SCHEME_LABELS
    ]
    ctx.predictions(cells, collect_mask=True)
    rows = []
    for benchmark in FOCUS_BENCHMARKS:
        for address_bit in ADDRESS_BITS:
            values = [
                ctx.execution_time_reduction(
                    benchmark, _config(scheme, address_bit)
                )
                for scheme in PATH_SCHEME_LABELS
            ]
            rows.append((f"{benchmark} bit {address_bit}", values))
    return ExperimentTable(
        experiment_id="Table 5",
        title="Path history address-bit selection: execution-time reduction",
        columns=list(PATH_SCHEME_LABELS),
        rows=rows,
        notes="paper: low bits carry the information; benefit decays for "
              "higher bits",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
