"""Extension — from the target cache to ITTAGE.

The calibration note on this reproduction observes that the paper
"influenced modern ITTAGE predictors"; this experiment makes the lineage
quantitative.  For every workload (the eight SPECint95-alikes plus the two
OO kernels) it compares:

* the BTB baseline (1997's status quo);
* the paper's best single-history target cache (512-entry tagless, history
  chosen per §4.2.3: ind-jmp path for the interpreter-like workloads,
  pattern for the rest);
* the cascaded filter (the immediate follow-on literature);
* ITTAGE-lite (geometric history lengths, tagged components, confidence
  counters — the design that won).

Expected shape: each generation dominates the previous, with the largest
steps exactly where history *length* requirements vary across jumps.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.experiments.configs import (
    path_scheme_history,
    pattern_history,
    tagless_engine,
)
from repro.predictors import EngineConfig, HistoryConfig, HistorySource
from repro.predictors.history import PathFilter
from repro.predictors.target_cache import TargetCacheConfig

BENCHMARKS = ("compress", "gcc", "go", "ijpeg", "m88ksim", "perl", "vortex",
              "xlisp", "richards", "deltablue")

#: workloads whose dispatch is an interpreter-style loop where path
#: history wins (m88ksim's decode switch prefers pattern history: the
#: operand-test branches before each dispatch encode the simulated pc)
_PATH_BENCHMARKS = {"perl", "richards", "deltablue"}


def best_classic_history(benchmark: str) -> HistoryConfig:
    if benchmark in _PATH_BENCHMARKS:
        return path_scheme_history("ind jmp", bits=10, bits_per_target=2)
    return pattern_history(9)


def ittage_engine(entries_per_component: int = 128) -> EngineConfig:
    return EngineConfig(
        target_cache=TargetCacheConfig(kind="ittage",
                                       entries=entries_per_component),
        history=HistoryConfig(source=HistorySource.PATH_GLOBAL, bits=48,
                              path_filter=PathFilter.CONTROL),
    )


def _cascade_engine(history: HistoryConfig) -> EngineConfig:
    return EngineConfig(
        target_cache=TargetCacheConfig(kind="cascaded", entries=256, assoc=4),
        history=history,
    )


def run(ctx: ExperimentContext) -> ExperimentTable:
    ctx.predictions([(benchmark, EngineConfig()) for benchmark in BENCHMARKS],
                    collect_mask=True)
    ctx.predictions([
        (benchmark, config)
        for benchmark in BENCHMARKS
        for config in (
            tagless_engine(history=best_classic_history(benchmark)),
            _cascade_engine(best_classic_history(benchmark)),
            ittage_engine(),
        )
    ])
    rows = []
    for benchmark in BENCHMARKS:
        base = ctx.baseline(benchmark).indirect_mispred_rate
        history = best_classic_history(benchmark)
        classic = ctx.prediction(
            benchmark, tagless_engine(history=history)
        ).indirect_mispred_rate
        cascade = ctx.prediction(
            benchmark, _cascade_engine(history)
        ).indirect_mispred_rate
        ittage = ctx.prediction(
            benchmark, ittage_engine()
        ).indirect_mispred_rate
        rows.append((benchmark, [base, classic, cascade, ittage]))
    # Generation columns carry the registry labels of the configs actually
    # simulated (history varies per benchmark; the cache geometry doesn't).
    classic_config = tagless_engine().target_cache
    cascade_config = _cascade_engine(pattern_history(9)).target_cache
    ittage_config = ittage_engine().target_cache
    assert classic_config is not None
    assert cascade_config is not None and ittage_config is not None
    return ExperimentTable(
        experiment_id="Extension: lineage",
        title="BTB -> target cache -> cascade -> ITTAGE-lite "
              "(indirect misprediction)",
        columns=["BTB", classic_config.label(), cascade_config.label(),
                 ittage_config.label()],
        rows=rows,
        notes="each generation of the paper's lineage; ITTAGE-lite uses "
              "4 components x 128 entries with geometric history lengths",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
