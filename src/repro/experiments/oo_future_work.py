"""§5 future work — target caches on object-oriented workloads.

The paper ends by predicting that "for object oriented programs where more
indirect branches may be executed, tagged caches should provide even
greater performance benefits", deferring C++ benchmarks to future work.
This experiment carries that work out on the two classic OO-polymorphism
kernels (richards and deltablue, rebuilt as guest workloads): BTB baseline
vs the tagless cache vs a set-associative tagged cache, with the best
history per the paper's own methodology (path history, since both kernels
are dispatch loops like perl).

Also reported: indirect-jump density, which is several times the SPECint95
numbers — the premise behind the paper's §5 prediction.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.experiments.configs import (
    path_scheme_history,
    tagged_engine,
    tagless_engine,
)
from repro.predictors import EngineConfig
from repro.trace.stats import branch_mix

BENCHMARKS = ("richards", "deltablue")

#: Both kernels dispatch through densely packed method tables, so one
#: address bit per target aliases; two bits per target is the §4.2.2-style
#: sweet spot here.
_HISTORY = path_scheme_history("ind jmp", bits=10, bits_per_target=2)


def run(ctx: ExperimentContext) -> ExperimentTable:
    ctx.predictions(
        [
            (benchmark, config)
            for benchmark in BENCHMARKS
            for config in (EngineConfig(), tagless_engine(history=_HISTORY),
                           tagged_engine(assoc=8, history=_HISTORY))
        ],
        collect_mask=True,
    )
    rows = []
    for benchmark in BENCHMARKS:
        trace = ctx.trace(benchmark)
        mix = branch_mix(trace)
        base = ctx.baseline(benchmark)
        tagless = ctx.prediction(benchmark, tagless_engine(history=_HISTORY))
        tagged = ctx.prediction(
            benchmark, tagged_engine(assoc=8, history=_HISTORY)
        )
        exec_reduction = ctx.execution_time_reduction(
            benchmark, tagged_engine(assoc=8, history=_HISTORY)
        )
        rows.append((benchmark, [
            mix.indirect_fraction,
            base.indirect_mispred_rate,
            tagless.indirect_mispred_rate,
            tagged.indirect_mispred_rate,
            exec_reduction,
        ]))
    return ExperimentTable(
        experiment_id="§5 future work",
        title="Target caches on OO workloads (richards / deltablue)",
        columns=["indirect density", "BTB mispred", "tagless TC",
                 "tagged 8-way TC", "exec reduction (tagged)"],
        rows=rows,
        notes="the paper's closing prediction: high indirect density makes "
              "the target cache's win on OO code even larger than on "
              "SPECint95 C code",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
