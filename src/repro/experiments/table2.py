"""Table 2 — default vs 2-bit BTB target-update strategy.

Calder & Grunwald's 2-bit strategy waits for two consecutive target misses
before replacing a BTB entry's stored target.  The paper's finding is that
it is a *mixed* win on C code: it "reduced the misprediction rates for the
compress, gcc, ijpeg, and perl benchmarks, but increased the misprediction
rates for the m88ksim, vortex, and xlisp benchmarks" — and either way it
remains far above what the target cache achieves.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.predictors import EngineConfig
from repro.predictors.btb import UpdateStrategy
from repro.workloads import workload_names


def run(ctx: ExperimentContext) -> ExperimentTable:
    rows = []
    two_bit = EngineConfig(btb_strategy=UpdateStrategy.TWO_BIT)
    ctx.predictions(
        [(name, EngineConfig()) for name in workload_names()],
        collect_mask=True,  # the baseline memo always carries the mask
    )
    ctx.predictions([(name, two_bit) for name in workload_names()])
    for name in workload_names():
        default_rate = ctx.baseline(name).indirect_mispred_rate
        two_bit_rate = ctx.prediction(name, two_bit).indirect_mispred_rate
        rows.append((name, [default_rate, two_bit_rate,
                            two_bit_rate - default_rate]))
    return ExperimentTable(
        experiment_id="Table 2",
        title="BTB indirect misprediction: default vs 2-bit update strategy",
        columns=["BTB", "2-bit BTB", "delta"],
        rows=rows,
        notes="paper: 2-bit helps compress/gcc/ijpeg/perl, hurts "
              "m88ksim/vortex/xlisp — a mixed result either way dwarfed by "
              "the target cache",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
