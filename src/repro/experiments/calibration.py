"""Calibration report — every workload's vital signs vs its targets.

Not a paper table: the operational check that the synthetic workloads still
produce the statistics they were designed for (after editing a workload,
run ``repro calibration``).  Columns:

* measured BTB indirect misprediction vs the paper's Table 1 value;
* indirect-jump density (the paper's §5 quotes 0.5-0.6% for gcc/perl; our
  substitutes run higher — DESIGN.md's known deviation);
* static indirect jump count and the largest jump's target count
  (Figures 1-8 shape).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.trace.stats import branch_mix, target_profile
from repro.workloads.registry import OO_WORKLOADS, WORKLOADS

COLUMNS = ["BTB mispred", "paper", "indirect density", "static jumps",
           "max targets"]


def run(ctx: ExperimentContext) -> ExperimentTable:
    rows = []
    for name, spec in list(sorted(WORKLOADS.items())) + list(
        sorted(OO_WORKLOADS.items())
    ):
        trace = ctx.trace(name)
        mix = branch_mix(trace)
        profile = target_profile(trace)
        stats = ctx.baseline(name)
        rows.append((name, [
            stats.indirect_mispred_rate,
            spec.paper_btb_mispred,
            mix.indirect_fraction,
            float(profile.static_jumps),
            float(profile.max_targets()),
        ]))
    return ExperimentTable(
        experiment_id="Calibration",
        title="Workload vital signs vs calibration targets",
        columns=COLUMNS,
        rows=rows,
        column_formats=["percent", "percent", "percent", "count", "count"],
        notes="richards/deltablue paper values are expectations, not "
              "published numbers (the paper deferred OO code to future work)",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
