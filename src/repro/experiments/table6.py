"""Table 6 — path history: bits recorded per target address.

With a fixed 9-bit register there is "a tradeoff between identifying more
branches in the past history and better identifying each branch": recording
k bits per target keeps only 9/k targets.  The paper finds the benefit
*decreases* as bits-per-target increases (especially for the Control and
Branch schemes, whose uncorrelated entries displace useful history), i.e.
one well-chosen bit from each of nine targets beats three bits from each of
three targets.
"""

from __future__ import annotations

from repro.experiments.common import (
    FOCUS_BENCHMARKS,
    ExperimentContext,
    ExperimentTable,
)
from repro.experiments.configs import (
    PATH_SCHEME_LABELS,
    path_scheme_history,
    tagless_engine,
)
from repro.predictors import EngineConfig

BITS_PER_TARGET = [1, 2, 3]


def _config(scheme: str, bits_per_target: int) -> EngineConfig:
    history = path_scheme_history(
        scheme, bits=9, bits_per_target=bits_per_target, address_bit=2
    )
    return tagless_engine(history=history)


def run(ctx: ExperimentContext) -> ExperimentTable:
    cells = [(benchmark, EngineConfig()) for benchmark in FOCUS_BENCHMARKS]
    cells += [
        (benchmark, _config(scheme, bits_per_target))
        for benchmark in FOCUS_BENCHMARKS
        for bits_per_target in BITS_PER_TARGET
        for scheme in PATH_SCHEME_LABELS
    ]
    ctx.predictions(cells, collect_mask=True)
    rows = []
    for benchmark in FOCUS_BENCHMARKS:
        for bits_per_target in BITS_PER_TARGET:
            values = [
                ctx.execution_time_reduction(
                    benchmark, _config(scheme, bits_per_target)
                )
                for scheme in PATH_SCHEME_LABELS
            ]
            rows.append((f"{benchmark} {bits_per_target}b/target", values))
    return ExperimentTable(
        experiment_id="Table 6",
        title="Path history bits-per-target: execution-time reduction",
        columns=list(PATH_SCHEME_LABELS),
        rows=rows,
        notes="paper: with 9 history bits, more bits per target = fewer "
              "targets remembered = less benefit",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
