"""Extension — cascaded (filtered) target prediction.

An experiment beyond the paper, implementing the idea of the follow-on
cascaded-predictor literature (Driesen & Hölzle): keep monomorphic jumps in
a cheap last-target stage and spend the history-indexed table only on the
jumps observed to change targets.  Sweeps the stage-2 capacity to show the
filtering effect: a cascaded stage-2 of N entries competes with a
monolithic tagged cache of ~2-4N entries.
"""

from __future__ import annotations

from repro.experiments.common import (
    FOCUS_BENCHMARKS,
    ExperimentContext,
    ExperimentTable,
)
from repro.experiments.configs import path_scheme_history, pattern_history
from repro.predictors import EngineConfig
from repro.predictors.target_cache import TargetCacheConfig

ENTRIES = [32, 64, 128, 256]

#: best per-benchmark history, following the paper's §4.2.3
_HISTORIES = {
    "perl": path_scheme_history("ind jmp"),
    "gcc": pattern_history(9),
}


def _engine(kind: str, entries: int, benchmark: str) -> EngineConfig:
    return EngineConfig(
        target_cache=TargetCacheConfig(kind=kind, entries=entries, assoc=4),
        history=_HISTORIES[benchmark],
    )


def run(ctx: ExperimentContext) -> ExperimentTable:
    ctx.predictions([
        (benchmark, _engine(kind, entries, benchmark))
        for benchmark in FOCUS_BENCHMARKS
        for entries in ENTRIES
        for kind in ("tagged", "cascaded")
    ])
    rows = []
    for benchmark in FOCUS_BENCHMARKS:
        for entries in ENTRIES:
            tagged = ctx.prediction(
                benchmark, _engine("tagged", entries, benchmark)
            ).indirect_mispred_rate
            cascaded = ctx.prediction(
                benchmark, _engine("cascaded", entries, benchmark)
            ).indirect_mispred_rate
            rows.append((f"{benchmark} {entries}e",
                         [tagged, cascaded, cascaded - tagged]))
    return ExperimentTable(
        experiment_id="Extension: cascade",
        title="Monolithic tagged vs cascaded (filtered) target cache "
              "(misprediction rate)",
        columns=["tagged", "cascaded", "delta"],
        rows=rows,
        notes="filtering monomorphic jumps into a last-target stage frees "
              "stage-2 capacity; the cascade wins once capacity binds",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
