"""Table 7 — tagged target cache: indexing scheme vs set-associativity.

256-entry tagged caches with global pattern history (9 bits).  Three
index/tag derivations (paper §4.3.1):

* *Address* — low address bits pick the set: every (history, target) pair
  of one jump lands in one set, so low associativity thrashes badly;
* *History Concatenate* — low history bits pick the set;
* *History XOR* — address XOR history picks the set, spreading one jump's
  contexts across all sets.

Paper finding: Address needs high associativity to be usable; the two
history-based schemes are nearly flat in associativity, with XOR best
overall.  Metric: execution-time reduction over the BTB-only machine.
"""

from __future__ import annotations

from repro.experiments.common import (
    FOCUS_BENCHMARKS,
    ExperimentContext,
    ExperimentTable,
)
from repro.experiments.configs import tagged_engine
from repro.predictors import EngineConfig
from repro.predictors.target_cache import TaggedIndexing

ASSOCIATIVITIES = [1, 2, 4, 8, 16, 32]
INDEXINGS = [
    ("Addr", TaggedIndexing.ADDRESS),
    ("Hist-Concat", TaggedIndexing.HISTORY_CONCAT),
    ("Hist-Xor", TaggedIndexing.HISTORY_XOR),
]


def run(ctx: ExperimentContext) -> ExperimentTable:
    cells = [(benchmark, EngineConfig()) for benchmark in FOCUS_BENCHMARKS]
    cells += [
        (benchmark, tagged_engine(assoc=assoc, indexing=indexing))
        for benchmark in FOCUS_BENCHMARKS
        for assoc in ASSOCIATIVITIES
        for _, indexing in INDEXINGS
    ]
    ctx.predictions(cells, collect_mask=True)
    rows = []
    for benchmark in FOCUS_BENCHMARKS:
        for assoc in ASSOCIATIVITIES:
            values = []
            for _, indexing in INDEXINGS:
                config = tagged_engine(assoc=assoc, indexing=indexing)
                values.append(ctx.execution_time_reduction(benchmark, config))
            rows.append((f"{benchmark} {assoc}-way", values))
    return ExperimentTable(
        experiment_id="Table 7",
        title="Tagged target cache (256 entries): indexing scheme vs "
              "associativity (exec-time reduction)",
        columns=[label for label, _ in INDEXINGS],
        rows=rows,
        notes="paper: Address indexing suffers conflict misses at low "
              "associativity; History-Xor is insensitive to it",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
