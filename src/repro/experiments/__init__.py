"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes ``run(ctx) -> ExperimentTable`` taking an
:class:`~repro.experiments.common.ExperimentContext` (which owns trace
generation, caching, and the machine configuration) and returning a
printable result table.  ``python -m repro <experiment>`` runs one from the
command line; ``python -m repro all`` regenerates everything.

=================  ========================================================
module             reproduces
=================  ========================================================
``table1``         Table 1 — benchmark statistics + BTB indirect
                   misprediction rates
``figures1_8``     Figures 1-8 — targets-per-indirect-jump histograms
``table2``         Table 2 — default vs 2-bit BTB update strategy
``table4``         Table 4 — tagless index schemes (GAg/GAs/gshare)
``table5``         Table 5 — path history: address-bit selection
``table6``         Table 6 — path history: bits recorded per target
``table7``         Table 7 — tagged target cache indexing schemes
``table8``         Table 8 — tagged target caches with path history
``table9``         Table 9 — 9 vs 16 pattern-history bits
``figures12_13``   Figures 12/13 — tagless vs tagged across associativity
``headline``       §1/§5 headline claims (misprediction + execution-time
                   reductions for perl and gcc)
=================  ========================================================
"""

from repro.experiments.common import (
    EXPERIMENT_MODULES,
    ExperimentContext,
    ExperimentTable,
    run_experiment,
)

__all__ = [
    "ExperimentContext",
    "ExperimentTable",
    "EXPERIMENT_MODULES",
    "run_experiment",
]
