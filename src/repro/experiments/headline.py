"""Headline claims (abstract / §5).

"For the perl and gcc benchmarks, this mechanism reduces the indirect jump
misprediction rate by 93.4% and 63.3% and the overall execution time by
14.9% and 4.3%" (numbers partly garbled in the source text; the shape is
what we reproduce: a huge relative misprediction reduction on both, a
double-digit execution-time win on perl and a smaller one on gcc).

The "best" configuration per benchmark follows §4.2.3: the Indirect-Jmp
global path history for perl, the gshare pattern history for gcc, both on
the 512-entry tagless cache (and a 16-way tagged cache as the paper's
best-overall design point).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.experiments.configs import (
    path_scheme_history,
    pattern_history,
    tagged_engine,
    tagless_engine,
)
from repro.predictors import EngineConfig

BEST_TAGLESS = {
    "perl": tagless_engine(history=path_scheme_history("ind jmp")),
    "gcc": tagless_engine(history=pattern_history(9)),
}
BEST_TAGGED = {
    "perl": tagged_engine(assoc=16, history=path_scheme_history("ind jmp")),
    "gcc": tagged_engine(assoc=16, history_bits=16,
                         history=pattern_history(16)),
}


def run(ctx: ExperimentContext) -> ExperimentTable:
    ctx.predictions(
        [
            (benchmark, config)
            for benchmark in ("perl", "gcc")
            for config in (EngineConfig(), BEST_TAGLESS[benchmark],
                           BEST_TAGGED[benchmark])
        ],
        collect_mask=True,
    )
    rows = []
    for benchmark in ("perl", "gcc"):
        base = ctx.baseline(benchmark).indirect_mispred_rate
        tagless_stats = ctx.prediction(benchmark, BEST_TAGLESS[benchmark])
        tagless_rate = tagless_stats.indirect_mispred_rate
        mispred_reduction = (base - tagless_rate) / base if base else 0.0
        exec_reduction = ctx.execution_time_reduction(
            benchmark, BEST_TAGLESS[benchmark]
        )
        tagged_exec = ctx.execution_time_reduction(
            benchmark, BEST_TAGGED[benchmark]
        )
        rows.append((benchmark, [
            base, tagless_rate, mispred_reduction, exec_reduction, tagged_exec,
        ]))
    return ExperimentTable(
        experiment_id="Headline",
        title="Abstract/§5 claims: target cache vs BTB on perl and gcc",
        columns=["BTB mispred", "TC mispred", "mispred reduction",
                 "exec reduction (tagless)", "exec reduction (16-way tagged)"],
        rows=rows,
        notes="paper: mispredictions cut 93.4% (perl) / 63.3% (gcc); "
              "execution time cut ~14% (perl) / ~5% (gcc) at ~0.6% indirect "
              "density — our synthetic workloads have 2-3x that density, so "
              "absolute exec reductions scale up accordingly",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
