"""Shared experiment infrastructure.

:class:`ExperimentContext` owns everything an experiment needs — traces
(disk-cached), the machine model, per-trace memory-penalty arrays, and the
baseline (BTB-only) prediction/timing results that every "reduction in
execution time" cell is measured against.  Every prediction run goes
through :mod:`repro.runner`: results are memoised in-process per
``(benchmark, config)``, persisted in the on-disk result cache, and — via
:meth:`ExperimentContext.predictions` — fanned out over a process pool
when ``jobs > 1``.  Experiments prefetch their whole cell list up front so
the sweep parallelises, then read individual cells from the memo.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.obs import get_sink
from repro.pipeline import MachineConfig, memory_penalties, run_timing
from repro.predictors import EngineConfig, PredictionStats
from repro.runner import (
    BACKENDS,
    ResultCache,
    SweepCell,
    default_jobs,
    run_cells,
    timing_key,
)
from repro.trace.trace import Trace
from repro.workloads import get_trace

#: Benchmarks the paper's design-space tables focus on ("We will
#: concentrate on the gcc and perl benchmarks, the two benchmarks with the
#: largest number of indirect jumps", §4.1).
FOCUS_BENCHMARKS = ("perl", "gcc")

#: Experiment name -> module path, for the CLI.
EXPERIMENT_MODULES: Dict[str, str] = {
    "table1": "repro.experiments.table1",
    "figures1_8": "repro.experiments.figures1_8",
    "table2": "repro.experiments.table2",
    "table4": "repro.experiments.table4",
    "table5": "repro.experiments.table5",
    "table6": "repro.experiments.table6",
    "table7": "repro.experiments.table7",
    "table8": "repro.experiments.table8",
    "table9": "repro.experiments.table9",
    "figures12_13": "repro.experiments.figures12_13",
    "headline": "repro.experiments.headline",
    "oo_future_work": "repro.experiments.oo_future_work",
    "cascaded": "repro.experiments.cascaded",
    "modern": "repro.experiments.modern",
    "capacity": "repro.experiments.capacity",
    "server_btb": "repro.experiments.server_btb",
    "switch_lowering": "repro.experiments.switch_lowering",
    "calibration": "repro.experiments.calibration",
}


def default_trace_length() -> int:
    """Trace length for experiments (``REPRO_TRACE_LENGTH`` overrides)."""
    return int(os.environ.get("REPRO_TRACE_LENGTH", "400000"))


@dataclass
class ExperimentTable:
    """A printable experiment result."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Tuple[str, List[float]]]
    #: how to render the numbers: "percent", "count", or "float"; applies
    #: to every column unless ``column_formats`` overrides per column
    value_format: str = "percent"
    column_formats: Optional[List[str]] = None
    notes: str = ""

    def _format_for(self, column_index: int) -> str:
        if self.column_formats is not None:
            return self.column_formats[column_index]
        return self.value_format

    def format(self) -> str:
        label_width = max([len("")] + [len(label) for label, _ in self.rows]) + 2
        # Per-column widths: a long registry label (e.g. a parameterised
        # cascaded(...) header) widens only its own column.
        widths = [max(12, len(c) + 2) for c in self.columns]
        lines = [f"== {self.experiment_id}: {self.title}"]
        header = " " * label_width + "".join(
            f"{c:>{w}}" for c, w in zip(self.columns, widths)
        )
        lines.append(header)
        for label, values in self.rows:
            rendered = []
            for column_index, value in enumerate(values):
                fmt = self._format_for(column_index)
                col_width = widths[column_index]
                if value is None or (isinstance(value, float) and np.isnan(value)):
                    rendered.append(f"{'-':>{col_width}}")
                elif fmt == "percent":
                    rendered.append(f"{100 * value:>{col_width - 1}.2f}%")
                elif fmt == "count":
                    rendered.append(f"{int(value):>{col_width},}")
                else:
                    rendered.append(f"{value:>{col_width}.3f}")
            lines.append(f"{label:<{label_width}}" + "".join(rendered))
        if self.notes:
            lines.append(f"   note: {self.notes}")
        return "\n".join(lines)

    def cell(self, row_label: str, column: str) -> float:
        """Fetch one value by row label and column name (for tests)."""
        column_index = self.columns.index(column)
        for label, values in self.rows:
            if label == row_label:
                return values[column_index]
        raise KeyError(row_label)


class ExperimentContext:
    """Memoised traces, baselines and timing for one experiment session.

    ``jobs`` sets the process-pool width for batched sweeps (default: the
    ``REPRO_JOBS`` environment variable, else 1); ``use_result_cache``
    controls the persistent on-disk result cache (default: on, unless
    ``REPRO_RESULT_CACHE=0``); ``backend`` caps the per-cell execution
    tier (``--backend`` on the CLI; every tier is bit-identical).
    """

    def __init__(self, trace_length: Optional[int] = None, seed: int = 1997,
                 machine: Optional[MachineConfig] = None,
                 use_trace_cache: bool = True,
                 jobs: Optional[int] = None,
                 use_result_cache: bool = True,
                 backend: str = "auto") -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from "
                f"{', '.join(BACKENDS)}"
            )
        self.trace_length = trace_length or default_trace_length()
        self.seed = seed
        self.machine = machine or MachineConfig()
        self.use_trace_cache = use_trace_cache
        self.backend = backend
        self.jobs = default_jobs() if jobs is None else max(1, jobs)
        self._result_cache = ResultCache.from_env() if use_result_cache else None
        self._traces: Dict[str, Trace] = {}
        self._penalties: Dict[str, "npt.NDArray[Any]"] = {}
        self._predictions: Dict[Tuple[str, EngineConfig], PredictionStats] = {}
        self._cycles: Dict[Tuple[str, EngineConfig], int] = {}

    # ------------------------------------------------------------------
    def trace(self, benchmark: str) -> Trace:
        if benchmark not in self._traces:
            self._traces[benchmark] = get_trace(
                benchmark, n_instructions=self.trace_length, seed=self.seed,
                use_cache=self.use_trace_cache,
            )
        return self._traces[benchmark]

    def penalty(self, benchmark: str) -> "npt.NDArray[Any]":
        if benchmark not in self._penalties:
            self._penalties[benchmark] = memory_penalties(
                self.trace(benchmark), self.machine
            )
        return self._penalties[benchmark]

    # ------------------------------------------------------------------
    def predictions(self, cells: Sequence[Tuple[str, EngineConfig]],
                    collect_mask: bool = False) -> List[PredictionStats]:
        """Batch prediction API: the sweep fast path.

        Returns one :class:`PredictionStats` per ``(benchmark, config)``
        cell, in order.  Cells already memoised (with a mask, if
        ``collect_mask``) are free; the rest go through
        :func:`repro.runner.run_cells` — persistent result cache first,
        then ``self.jobs`` worker processes.  Experiments call this once
        with every cell they will need, then read single cells through
        :meth:`prediction`, which hits the memo.
        """
        missing = [
            (benchmark, config) for benchmark, config in dict.fromkeys(cells)
            if not self._memoised(benchmark, config, collect_mask)
        ]
        if missing:
            sweep = [
                SweepCell(benchmark, config, collect_mask=collect_mask)
                for benchmark, config in missing
            ]
            with get_sink().span("predictions", cells=len(sweep),
                                 jobs=self.jobs):
                computed = run_cells(
                    sweep, jobs=self.jobs,
                    trace_length=self.trace_length, seed=self.seed,
                    use_trace_cache=self.use_trace_cache,
                    result_cache=self._result_cache,
                    trace_provider=self.trace,
                    backend=self.backend,
                )
            for (benchmark, config), stats in zip(missing, computed):
                self._predictions[(benchmark, config)] = stats
        return [self._predictions[cell] for cell in cells]

    def _memoised(self, benchmark: str, config: EngineConfig,
                  collect_mask: bool) -> bool:
        stats = self._predictions.get((benchmark, config))
        if stats is None:
            return False
        return not collect_mask or stats.mispredict_mask is not None

    def prediction(self, benchmark: str, config: EngineConfig,
                   collect_mask: bool = False) -> PredictionStats:
        """Fetch-engine simulation, memoised per ``(benchmark, config)``.

        A memo entry carrying the mispredict mask satisfies maskless
        requests too, so baseline-equal cells across tables simulate once.
        """
        return self.predictions([(benchmark, config)],
                                collect_mask=collect_mask)[0]

    def baseline(self, benchmark: str) -> PredictionStats:
        """BTB-only prediction stats with the mispredict mask, memoised."""
        return self.prediction(benchmark, EngineConfig(), collect_mask=True)

    def baseline_cycles(self, benchmark: str) -> int:
        """Cycles of the BTB-only base machine (the paper's reference)."""
        return self.cycles(benchmark, EngineConfig())

    def cycles(self, benchmark: str, config: EngineConfig) -> int:
        """Execution cycles of the machine with this predictor config.

        Memoised in-process and, when the result cache is on, persisted
        under a :func:`~repro.runner.timing_key` — so a warm re-run skips
        the timing model as well as the simulations.
        """
        key = (benchmark, config)
        if key not in self._cycles:
            self._cycles[key] = self._compute_cycles(benchmark, config)
        return self._cycles[key]

    def _compute_cycles(self, benchmark: str, config: EngineConfig) -> int:
        cache_key = None
        if self._result_cache is not None:
            cache_key = timing_key(benchmark, config, self.trace_length,
                                   self.seed, self.machine)
            cached = self._result_cache.load_cycles(cache_key)
            if cached is not None:
                return cached
        stats = self.prediction(benchmark, config, collect_mask=True)
        with get_sink().span("timing", benchmark=benchmark):
            result = run_timing(
                self.trace(benchmark), self.machine,
                stats.mispredict_mask, self.penalty(benchmark),
            )
        if cache_key is not None:
            self._result_cache.store_cycles(cache_key, result.cycles)
        return result.cycles

    def execution_time_reduction(self, benchmark: str,
                                 config: EngineConfig) -> float:
        """The paper's headline metric: (T_base - T_config) / T_base,
        where the base machine predicts indirect jumps with the BTB only."""
        base = self.baseline_cycles(benchmark)
        with_config = self.cycles(benchmark, config)
        return (base - with_config) / base if base else 0.0


def run_experiment(name: str, ctx: Optional[ExperimentContext] = None) -> ExperimentTable:
    """Run a named experiment and return its table."""
    if name not in EXPERIMENT_MODULES:
        raise KeyError(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(sorted(EXPERIMENT_MODULES))}"
        )
    module = importlib.import_module(EXPERIMENT_MODULES[name])
    with get_sink().span("experiment", experiment=name):
        return module.run(ctx or ExperimentContext())


def sweep_rows(labels: Sequence[str],
               values: Dict[str, List[float]]) -> List[Tuple[str, List[float]]]:
    """Build table rows from a dict keyed by row label."""
    return [(label, values[label]) for label in labels]
