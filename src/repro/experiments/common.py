"""Shared experiment infrastructure.

:class:`ExperimentContext` owns everything an experiment needs — traces
(disk-cached), the machine model, per-trace memory-penalty arrays, and the
baseline (BTB-only) prediction/timing results that every "reduction in
execution time" cell is measured against.  Keeping these memoised on the
context is what makes the paper's multi-hundred-cell sweeps tractable.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.pipeline import MachineConfig, memory_penalties, run_timing
from repro.predictors import EngineConfig, PredictionStats, simulate
from repro.trace.trace import Trace
from repro.workloads import get_trace

#: Benchmarks the paper's design-space tables focus on ("We will
#: concentrate on the gcc and perl benchmarks, the two benchmarks with the
#: largest number of indirect jumps", §4.1).
FOCUS_BENCHMARKS = ("perl", "gcc")

#: Experiment name -> module path, for the CLI.
EXPERIMENT_MODULES: Dict[str, str] = {
    "table1": "repro.experiments.table1",
    "figures1_8": "repro.experiments.figures1_8",
    "table2": "repro.experiments.table2",
    "table4": "repro.experiments.table4",
    "table5": "repro.experiments.table5",
    "table6": "repro.experiments.table6",
    "table7": "repro.experiments.table7",
    "table8": "repro.experiments.table8",
    "table9": "repro.experiments.table9",
    "figures12_13": "repro.experiments.figures12_13",
    "headline": "repro.experiments.headline",
    "oo_future_work": "repro.experiments.oo_future_work",
    "cascaded": "repro.experiments.cascaded",
    "modern": "repro.experiments.modern",
    "capacity": "repro.experiments.capacity",
    "calibration": "repro.experiments.calibration",
}


def default_trace_length() -> int:
    """Trace length for experiments (``REPRO_TRACE_LENGTH`` overrides)."""
    return int(os.environ.get("REPRO_TRACE_LENGTH", "400000"))


@dataclass
class ExperimentTable:
    """A printable experiment result."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Tuple[str, List[float]]]
    #: how to render the numbers: "percent", "count", or "float"; applies
    #: to every column unless ``column_formats`` overrides per column
    value_format: str = "percent"
    column_formats: Optional[List[str]] = None
    notes: str = ""

    def _format_for(self, column_index: int) -> str:
        if self.column_formats is not None:
            return self.column_formats[column_index]
        return self.value_format

    def format(self) -> str:
        label_width = max([len("")] + [len(label) for label, _ in self.rows]) + 2
        col_width = max([12] + [len(c) + 2 for c in self.columns])
        lines = [f"== {self.experiment_id}: {self.title}"]
        header = " " * label_width + "".join(f"{c:>{col_width}}" for c in self.columns)
        lines.append(header)
        for label, values in self.rows:
            rendered = []
            for column_index, value in enumerate(values):
                fmt = self._format_for(column_index)
                if value is None or (isinstance(value, float) and np.isnan(value)):
                    rendered.append(f"{'-':>{col_width}}")
                elif fmt == "percent":
                    rendered.append(f"{100 * value:>{col_width - 1}.2f}%")
                elif fmt == "count":
                    rendered.append(f"{int(value):>{col_width},}")
                else:
                    rendered.append(f"{value:>{col_width}.3f}")
            lines.append(f"{label:<{label_width}}" + "".join(rendered))
        if self.notes:
            lines.append(f"   note: {self.notes}")
        return "\n".join(lines)

    def cell(self, row_label: str, column: str) -> float:
        """Fetch one value by row label and column name (for tests)."""
        column_index = self.columns.index(column)
        for label, values in self.rows:
            if label == row_label:
                return values[column_index]
        raise KeyError(row_label)


class ExperimentContext:
    """Memoised traces, baselines and timing for one experiment session."""

    def __init__(self, trace_length: Optional[int] = None, seed: int = 1997,
                 machine: Optional[MachineConfig] = None,
                 use_trace_cache: bool = True) -> None:
        self.trace_length = trace_length or default_trace_length()
        self.seed = seed
        self.machine = machine or MachineConfig()
        self.use_trace_cache = use_trace_cache
        self._traces: Dict[str, Trace] = {}
        self._penalties: Dict[str, np.ndarray] = {}
        self._base_stats: Dict[str, PredictionStats] = {}
        self._base_cycles: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def trace(self, benchmark: str) -> Trace:
        if benchmark not in self._traces:
            self._traces[benchmark] = get_trace(
                benchmark, n_instructions=self.trace_length, seed=self.seed,
                use_cache=self.use_trace_cache,
            )
        return self._traces[benchmark]

    def penalty(self, benchmark: str) -> np.ndarray:
        if benchmark not in self._penalties:
            self._penalties[benchmark] = memory_penalties(
                self.trace(benchmark), self.machine
            )
        return self._penalties[benchmark]

    # ------------------------------------------------------------------
    def prediction(self, benchmark: str, config: EngineConfig,
                   collect_mask: bool = False) -> PredictionStats:
        """Run the fetch-engine simulation (not memoised: configs vary)."""
        return simulate(self.trace(benchmark), config, collect_mask=collect_mask)

    def baseline(self, benchmark: str) -> PredictionStats:
        """BTB-only prediction stats with the mispredict mask, memoised."""
        if benchmark not in self._base_stats:
            self._base_stats[benchmark] = self.prediction(
                benchmark, EngineConfig(), collect_mask=True
            )
        return self._base_stats[benchmark]

    def baseline_cycles(self, benchmark: str) -> int:
        if benchmark not in self._base_cycles:
            result = run_timing(
                self.trace(benchmark), self.machine,
                self.baseline(benchmark).mispredict_mask,
                self.penalty(benchmark),
            )
            self._base_cycles[benchmark] = result.cycles
        return self._base_cycles[benchmark]

    def cycles(self, benchmark: str, config: EngineConfig) -> int:
        """Execution cycles of the machine with this predictor config."""
        stats = self.prediction(benchmark, config, collect_mask=True)
        result = run_timing(
            self.trace(benchmark), self.machine,
            stats.mispredict_mask, self.penalty(benchmark),
        )
        return result.cycles

    def execution_time_reduction(self, benchmark: str,
                                 config: EngineConfig) -> float:
        """The paper's headline metric: (T_base - T_config) / T_base,
        where the base machine predicts indirect jumps with the BTB only."""
        base = self.baseline_cycles(benchmark)
        with_config = self.cycles(benchmark, config)
        return (base - with_config) / base if base else 0.0


def run_experiment(name: str, ctx: Optional[ExperimentContext] = None) -> ExperimentTable:
    """Run a named experiment and return its table."""
    if name not in EXPERIMENT_MODULES:
        raise KeyError(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(sorted(EXPERIMENT_MODULES))}"
        )
    module = importlib.import_module(EXPERIMENT_MODULES[name])
    return module.run(ctx or ExperimentContext())


def sweep_rows(labels: Sequence[str],
               values: Dict[str, List[float]]) -> List[Tuple[str, List[float]]]:
    """Build table rows from a dict keyed by row label."""
    return [(label, values[label]) for label in labels]
