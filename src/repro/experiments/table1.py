"""Table 1 — benchmark statistics and BTB indirect misprediction rates.

Paper columns: input, #instructions, #branches, #indirect jumps, and the
indirect-jump misprediction rate of a 1K-entry 4-way set-associative BTB.
Our synthetic workloads run at a configurable trace length instead of the
SPEC inputs, so the count columns scale with ``ctx.trace_length``; the
misprediction-rate column is the calibrated reproduction target (paper:
compress 14.4%, gcc 66.0%, go 37.6%, ijpeg 11.3%, m88ksim 37.3%,
perl 76.2%, vortex 8.3%, xlisp 20.7%).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.trace.stats import branch_mix
from repro.workloads import workload_names
from repro.workloads.registry import WORKLOADS

COLUMNS = ["instructions", "branches", "indirect jumps",
           "BTB mispred", "paper mispred"]


def run(ctx: ExperimentContext) -> ExperimentTable:
    rows = []
    for name in workload_names():
        trace = ctx.trace(name)
        mix = branch_mix(trace)
        stats = ctx.baseline(name)
        rows.append((name, [
            float(mix.instructions),
            float(mix.branches),
            float(mix.indirect_jumps),
            stats.indirect_mispred_rate,
            WORKLOADS[name].paper_btb_mispred,
        ]))
    table = ExperimentTable(
        experiment_id="Table 1",
        title="Benchmark statistics and BTB indirect misprediction rates",
        columns=COLUMNS,
        rows=rows,
        column_formats=["count", "count", "count", "percent", "percent"],
        notes=(
            "count columns scale with the configured trace length "
            f"({ctx.trace_length} instructions); the paper traced full "
            "SPECint95 runs"
        ),
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
