"""Table 8 — tagged target caches indexed with path history.

256-entry History-Xor tagged caches whose history is a 9-bit *path*
register (1 bit per target, the best §4.2.2 configuration), across the
five path schemes and a set-associativity sweep.  Paper finding: "as in
the tagless schemes, using pattern history results in better performance
for gcc and using global path history results in better performance for
perl" — compare against Table 9's pattern-history numbers.
"""

from __future__ import annotations

from repro.experiments.common import (
    FOCUS_BENCHMARKS,
    ExperimentContext,
    ExperimentTable,
)
from repro.experiments.configs import (
    PATH_SCHEME_LABELS,
    path_scheme_history,
    tagged_engine,
)
from repro.predictors import EngineConfig

ASSOCIATIVITIES = [1, 2, 4, 8, 16]


def _config(scheme: str, assoc: int) -> EngineConfig:
    history = path_scheme_history(scheme, bits=9, bits_per_target=1)
    return tagged_engine(assoc=assoc, history=history)


def run(ctx: ExperimentContext) -> ExperimentTable:
    cells = [(benchmark, EngineConfig()) for benchmark in FOCUS_BENCHMARKS]
    cells += [
        (benchmark, _config(scheme, assoc))
        for benchmark in FOCUS_BENCHMARKS
        for assoc in ASSOCIATIVITIES
        for scheme in PATH_SCHEME_LABELS
    ]
    ctx.predictions(cells, collect_mask=True)
    rows = []
    for benchmark in FOCUS_BENCHMARKS:
        for assoc in ASSOCIATIVITIES:
            values = [
                ctx.execution_time_reduction(benchmark, _config(scheme, assoc))
                for scheme in PATH_SCHEME_LABELS
            ]
            rows.append((f"{benchmark} {assoc}-way", values))
    return ExperimentTable(
        experiment_id="Table 8",
        title="Tagged target cache with 9-bit path history "
              "(exec-time reduction)",
        columns=list(PATH_SCHEME_LABELS),
        rows=rows,
        notes="compare to Table 9 pattern history: path wins on perl, "
              "pattern wins on gcc (paper §4.3.2)",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
