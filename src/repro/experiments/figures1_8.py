"""Figures 1-8 — "Number of Targets per Indirect Jump" histograms.

One figure per benchmark in the paper; here one row per benchmark with the
histogram condensed into the buckets that matter: 1, 2, 3-4, 5-9, 10-19,
>=20 distinct dynamic targets (percent of static indirect jumps).  The
qualitative reproduction target is the paper's split: gcc and perl are
dominated by many-target jumps, the other six by one- and two-target jumps.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.trace.stats import indirect_target_histogram
from repro.workloads import workload_names

BUCKETS = [(1, 1, "1"), (2, 2, "2"), (3, 4, "3-4"), (5, 9, "5-9"),
           (10, 19, "10-19"), (20, 30, ">=20")]


def condense(histogram: Dict[int, float]) -> Dict[str, float]:
    """Collapse the per-count histogram into the display buckets."""
    condensed = {}
    for low, high, label in BUCKETS:
        condensed[label] = sum(
            value for count, value in histogram.items() if low <= count <= high
        )
    return condensed


def run(ctx: ExperimentContext) -> ExperimentTable:
    rows = []
    for name in workload_names():
        histogram = indirect_target_histogram(ctx.trace(name), weight="static")
        condensed = condense(histogram)
        rows.append((name, [condensed[label] / 100.0
                            for _, _, label in BUCKETS]))
    return ExperimentTable(
        experiment_id="Figures 1-8",
        title="Number of targets per static indirect jump (% of jumps)",
        columns=[label for _, _, label in BUCKETS],
        rows=rows,
        notes="paper shape: gcc/perl dominated by many-target jumps, the "
              "other six by 1-2 target jumps",
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext()).format())


if __name__ == "__main__":  # pragma: no cover
    main()
