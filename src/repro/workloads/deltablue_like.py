"""deltablue-like OO workload: a constraint solver executing plans.

The second classic C++-polymorphism benchmark (with richards) from the
indirect-branch literature the paper's §5 anticipates.  DeltaBlue builds a
*plan* — an ordered list of constraints — and repeatedly executes it; each
constraint's ``execute`` method is virtual, so plan execution is a loop of
indirect calls whose receiver sequence is exactly the plan: long, fixed,
and polymorphic.  That makes it the OO analogue of perl's token script —
hopeless for a BTB, nearly free for a history-indexed target cache.

Guest structure:

* six constraint kinds (stay / edit / scale / offset / equality / chain),
  each with ``execute`` and ``check`` methods — two virtual slots, giving
  two hot indirect call sites with six targets each;
* constraint records ``[execute-ptr, check-ptr, in-var, out-var, k]``;
  variables live in a guest array;
* several pre-built plans; after each full execution the solver switches
  plans on a guest-random bit (re-planning), so the receiver stream is
  piecewise-periodic rather than trivially periodic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import GuestProgram
from repro.workloads import support
from repro.workloads.support import RNG, T0, T1, T2, T3

N_KINDS = 6

# constraint record layout (words): execute-ptr, check-ptr, in-var index,
# out-var index, coefficient
_CON_WORDS = 5
_OFF_EXEC, _OFF_CHECK, _OFF_IN, _OFF_OUT, _OFF_K = 0, 4, 8, 12, 16

# Guest registers
CON = 12    # current constraint pointer
PLAN = 13   # current plan base address
PLEN = 14   # current plan length
IDX = 10    # plan position
VBASE = 15  # variable array base
ACC = 20


@dataclass(frozen=True)
class DeltablueParams:
    seed: int = 1997
    n_variables: int = 24
    n_plans: int = 3
    plan_length: int = 40
    #: probability consecutive plan entries share a kind
    kind_self_bias: float = 0.2
    method_pad: int = 3


def build(params: DeltablueParams = DeltablueParams(),
          lowering: Optional[str] = None) -> GuestProgram:
    rng = random.Random(params.seed)
    b = ProgramBuilder(lowering=lowering)
    b.jmp("main")

    kind_names = ["stay", "edit", "scale", "offset", "equality", "chain"]

    # ------------------------------------------------------------------
    # Methods.  Convention: CON holds the receiver; VBASE the variables.
    # ------------------------------------------------------------------
    def load_vars() -> None:
        """T0 = &vars[in], T1 = &vars[out]."""
        b.load(T0, CON, _OFF_IN)
        b.shli(T0, T0, 2)
        b.add(T0, T0, VBASE)
        b.load(T1, CON, _OFF_OUT)
        b.shli(T1, T1, 2)
        b.add(T1, T1, VBASE)

    for kind, name in enumerate(kind_names):
        b.label(f"exec_{name}")
        support.pad_handler(b, rng, 1, params.method_pad, acc_reg=ACC)
        load_vars()
        if name == "stay":
            b.load(T2, T1)
            b.add(ACC, ACC, T2)
        elif name == "edit":
            support.emit_random_bit(b, T2, bit=9)
            b.load(T3, T1)
            b.add(T3, T3, T2)
            b.andi(T3, T3, 0xFFFF)
            b.store(T3, T1)
        elif name == "scale":
            b.load(T2, T0)
            b.load(T3, CON, _OFF_K)
            b.mul(T2, T2, T3)
            b.andi(T2, T2, 0xFFFF)
            b.store(T2, T1)
        elif name == "offset":
            b.load(T2, T0)
            b.load(T3, CON, _OFF_K)
            b.add(T2, T2, T3)
            b.andi(T2, T2, 0xFFFF)
            b.store(T2, T1)
        elif name == "equality":
            b.load(T2, T0)
            b.store(T2, T1)
        else:  # chain: out = in + previous out (dependency chain)
            b.load(T2, T0)
            b.load(T3, T1)
            b.add(T2, T2, T3)
            b.andi(T2, T2, 0xFFFF)
            b.store(T2, T1)
        b.ret()

        b.label(f"check_{name}")
        support.pad_handler(b, rng, 0, 2, acc_reg=ACC)
        load_vars()
        b.load(T2, T0)
        b.load(T3, T1)
        satisfied = b.unique_label(f"sat_{name}")
        if kind % 2 == 0:
            b.beq(T2, T3, satisfied)
        else:
            b.bge(T3, T2, satisfied)
        b.addi(ACC, ACC, 1)       # violation counter
        b.label(satisfied)
        b.ret()

    # ------------------------------------------------------------------
    # Data: variables, constraints, plans.
    # ------------------------------------------------------------------
    vars_base = b.data_table(
        [rng.randrange(1, 1 << 12) for _ in range(params.n_variables)]
    )

    constraints_base = b.data_cursor

    def constraint_address(index: int) -> int:
        return constraints_base + index * _CON_WORDS * 4

    plans_kinds: List[List[int]] = [
        support.markov_sequence(rng, params.plan_length, N_KINDS,
                                self_bias=params.kind_self_bias)
        for _ in range(params.n_plans)
    ]
    all_kinds = [kind for plan in plans_kinds for kind in plan]
    flat: List[int] = []
    for kind in all_kinds:
        flat.extend([
            0, 0,                                   # method ptrs (fixups)
            rng.randrange(params.n_variables),      # in-var
            rng.randrange(params.n_variables),      # out-var
            rng.randrange(1, 7),                    # coefficient
        ])
    placed = b.data_table(flat)
    assert placed == constraints_base
    for index, kind in enumerate(all_kinds):
        b.data_word(f"exec_{kind_names[kind]}",
                    address=constraint_address(index) + _OFF_EXEC)
        b.data_word(f"check_{kind_names[kind]}",
                    address=constraint_address(index) + _OFF_CHECK)

    # plan table: base address of each plan's first constraint
    plan_bases = [constraint_address(i * params.plan_length)
                  for i in range(params.n_plans)]
    plan_table = b.data_table(plan_bases)

    # ------------------------------------------------------------------
    # Solver loop: execute the current plan (execute + check per entry),
    # then re-plan on a random bit.
    # ------------------------------------------------------------------
    b.label("main")
    b.li(ACC, 1)
    b.li(RNG, params.seed & 0xFFFF)
    b.li(VBASE, vars_base)
    b.li(PLAN, plan_bases[0])
    b.li(PLEN, params.plan_length)
    b.label("execute_plan")
    b.li(IDX, 0)
    b.label("plan_loop")
    b.li(T0, _CON_WORDS * 4)
    b.mul(T0, IDX, T0)
    b.add(CON, T0, PLAN)
    b.load(T1, CON, _OFF_EXEC)
    b.callr(T1)                    # virtual execute
    b.load(T1, CON, _OFF_CHECK)
    b.callr(T1)                    # virtual check
    b.addi(IDX, IDX, 1)
    b.blt(IDX, PLEN, "plan_loop")
    # re-plan occasionally (~1 execution in 8)
    support.emit_lcg_step(b)
    b.shri(T2, RNG, 12)
    b.andi(T2, T2, 7)
    same_plan = b.unique_label("same_plan")
    b.bne(T2, 0, same_plan)
    support.emit_lcg_step(b)
    b.shri(T2, RNG, 7)
    b.li(T3, params.n_plans)
    b.mod(T2, T2, T3)
    b.shli(T2, T2, 2)
    b.addi(T2, T2, plan_table)
    b.load(PLAN, T2)
    b.label(same_plan)
    b.jmp("execute_plan")

    return b.build(entry="main")
