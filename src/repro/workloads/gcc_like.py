"""gcc-like workload: compiler passes walking ASTs through switch statements.

gcc is the paper's "many static indirect jumps" benchmark: its hundreds of
switch statements over tree codes mean address bits carry real information,
so GAs(8,1) is competitive with GAg(9) (§4.2.1), and pattern history beats
path history (§4.2.3).

This guest program reproduces that structure: four compiler-like passes,
each with its *own* recursive tree walker whose 16-way kind switch is a
distinct static indirect jump, plus a per-pass operator sub-switch inside
the binary-node handler — 8 static indirect jumps spread across the code
segment.  The forest of ASTs is generated host-side with parent-conditioned
kind distributions, so the dynamic kind sequence has exploitable structure
but high transition rates.

Calibration targets (from the paper):

* BTB indirect misprediction ~66% (Table 1): consecutive DFS dispatches
  rarely repeat a kind;
* Figure 2 histogram: most static jumps see 10+ distinct targets;
* target cache misprediction ~30% at 512 entries (§2): the forest's DFS
  sequences are long enough to pressure a 512-entry cache;
* one pass mutates node values in place, so behaviour drifts slowly across
  outer iterations instead of being perfectly periodic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import GuestProgram
from repro.workloads import support
from repro.workloads.support import T0, T1, T2, T3

# Register assignments
SP = 11     # guest data-stack pointer (for saving NODE across recursion)
NODE = 12   # current node pointer
KIND = 13   # current node kind
VAL = 14    # current node value
ACC = 20    # pass accumulator
TREE = 15   # tree index in the main loop
PASSV = 16  # pass index (diagnostic)

N_KINDS = 16
_LEAF_KINDS = range(0, 6)
_UNARY_KINDS = range(6, 10)
_BINARY_KINDS = range(10, 16)

# Node record layout (words): kind, value, nkids, kid0, kid1
_NODE_WORDS = 5
_OFF_KIND, _OFF_VALUE, _OFF_NKIDS, _OFF_KID0, _OFF_KID1 = 0, 4, 8, 12, 16


@dataclass(frozen=True)
class GccParams:
    seed: int = 1997
    #: number of distinct subtree templates ("code idioms": a + b,
    #: a[i] = b * c, if (x < y) ... — real source is built from a small
    #: vocabulary of recurring shapes, which is what makes its switch
    #: target stream *learnable* by a history-indexed cache while staying
    #: unpredictable for a last-target BTB)
    n_templates: int = 10
    template_nodes: int = 7
    max_depth: int = 5
    #: statements in the compiled "translation unit" (template instances)
    n_statements: int = 110
    #: probability a statement repeats the previous template
    template_self_bias: float = 0.25
    n_passes: int = 4


class _TreeGen:
    """Host-side AST generator with parent-conditioned kind selection."""

    def __init__(self, rng: random.Random, max_depth: int, target_nodes: int) -> None:
        self.rng = rng
        self.max_depth = max_depth
        self.target_nodes = target_nodes
        self.nodes: List[List[int]] = []  # [kind, value, nkids, kid0, kid1]

    # Skewed leaf-kind weights: CONST dominates, as identifiers/constants
    # dominate real ASTs.  The skew creates same-kind runs in DFS order,
    # pulling the last-target transition rate down toward the paper's ~66%.
    _LEAF_WEIGHTS = [10, 4, 2, 2, 1, 1]
    _BINARY_WEIGHTS = [6, 4, 3, 2, 2, 1]

    #: probability a leaf repeats the previously generated leaf kind —
    #: identifier/constant runs, the main lever on the transition rate
    _LEAF_PERSISTENCE = 0.65

    def _leaf(self) -> int:
        last = getattr(self, "_last_leaf", None)
        if last is not None and self.rng.random() < self._LEAF_PERSISTENCE:
            return last
        kind = self.rng.choices(
            list(_LEAF_KINDS), weights=self._LEAF_WEIGHTS, k=1
        )[0]
        self._last_leaf = kind
        return kind

    def _binary(self) -> int:
        return self.rng.choices(
            list(_BINARY_KINDS), weights=self._BINARY_WEIGHTS, k=1
        )[0]

    def _pick_kind(self, parent_kind: int, depth: int) -> int:
        rng = self.rng
        if depth >= self.max_depth or len(self.nodes) > self.target_nodes:
            return self._leaf()
        roll = rng.random()
        if parent_kind in _BINARY_KINDS:
            # expressions nest: children of binaries are often leaves, but
            # arithmetic parents prefer arithmetic children (correlation)
            if roll < 0.45:
                return self._leaf()
            if roll < 0.70:
                return 10 + (parent_kind - 10 + rng.randrange(2)) % 6
            if roll < 0.88:
                return self._binary()
            return rng.choice(list(_UNARY_KINDS))
        if parent_kind in _UNARY_KINDS:
            if roll < 0.5:
                return self._leaf()
            if roll < 0.8:
                return self._binary()
            return rng.choice(list(_UNARY_KINDS))
        # root
        return self._binary()

    def generate(self, parent_kind: int = -1, depth: int = 0) -> int:
        """Build a subtree; return its node index."""
        kind = self._pick_kind(parent_kind, depth) if depth else self._pick_kind(-1, 0)
        index = len(self.nodes)
        # Value layout: [random payload | op bits (9:8) | kind signature
        # (7:0)].  The padding branches test the kind-signature bits, so
        # the global pattern history encodes the *kinds* of recently
        # visited nodes — deterministic and repeating across the forest,
        # which is what lets a 512-entry target cache learn it (per-node
        # random bits would give every dispatch a unique history and
        # thrash the cache).  The op bits select the operator sub-handler,
        # skewed so its last-target prediction is moderately good.
        op_bits = self.rng.choices([0, 1, 2, 3], weights=[4, 3, 2, 1], k=1)[0]
        kind_signature = (kind * 37 + 11) & 0xFF
        value = (self.rng.randrange(1, 1 << 12) << 10) | (op_bits << 8) | kind_signature
        self.nodes.append([kind, value, 0, 0, 0])
        if kind in _UNARY_KINDS:
            kid = self.generate(kind, depth + 1)
            self.nodes[index][2] = 1
            self.nodes[index][3] = kid
        elif kind in _BINARY_KINDS:
            kid0 = self.generate(kind, depth + 1)
            kid1 = self.generate(kind, depth + 1)
            self.nodes[index][2] = 2
            self.nodes[index][3] = kid0
            self.nodes[index][4] = kid1
        return index


#: Spec-level case-frequency profile of the 16-way kind switch, taken
#: from the generator's kind-selection weights (leaves dominate real ASTs);
#: used by density-based lowerings, never by the walker itself.
_KIND_WEIGHTS = [float(w) for w in
                 _TreeGen._LEAF_WEIGHTS + [1] * 4 + _TreeGen._BINARY_WEIGHTS]
#: Operator sub-switch profile: the op-bit skew of the node generator.
_OP_WEIGHTS = [4.0, 3.0, 2.0, 1.0]


def _emit_pass(b: ProgramBuilder, rng: random.Random, pass_index: int,
               mutate_values: bool) -> str:
    """Emit one pass's walker; returns the walker's entry label."""
    walker = f"walk_p{pass_index}"
    done = f"ret_p{pass_index}"
    handlers = [f"p{pass_index}_k{kind}" for kind in range(N_KINDS)]
    dispatch_table = b.switch_table(handlers)
    op_handlers = [f"p{pass_index}_op{j}" for j in range(4)]
    op_table = b.switch_table(op_handlers)

    b.label(walker)
    b.load(KIND, NODE, _OFF_KIND)
    # Compare-chain prefix, as compilers emit for switches (paper Fig. 9):
    # class tests whose outcomes put the current node's kind into the
    # global pattern history before the jump-table dispatch.
    t1 = b.unique_label(f"p{pass_index}_isleaf")
    b.li(T3, 6)
    b.slt(T3, KIND, T3)
    b.beq(T3, 0, t1)
    b.addi(ACC, ACC, 1)
    b.label(t1)
    t2 = b.unique_label(f"p{pass_index}_isbin")
    b.li(T3, 10)
    b.slt(T3, KIND, T3)
    b.bne(T3, 0, t2)
    b.addi(ACC, ACC, 2)
    b.label(t2)
    t3 = b.unique_label(f"p{pass_index}_kbit")
    b.andi(T3, KIND, 1)
    b.beq(T3, 0, t3)
    b.xori(ACC, ACC, 5)
    b.label(t3)
    b.switch(KIND, dispatch_table, weights=_KIND_WEIGHTS,
             stem=f"p{pass_index}_ksw")

    for kind in range(N_KINDS):
        b.label(handlers[kind])
        support.pad_handler(b, rng, 1, 5, acc_reg=ACC)
        if kind in _LEAF_KINDS:
            b.load(VAL, NODE, _OFF_VALUE)
            b.add(ACC, ACC, VAL)
            # padding branches test successive bits of the node value —
            # deterministic per node, so the global pattern history
            # identifies the recent DFS context (the correlation the
            # paper's pattern-history target cache exploits on gcc)
            support.emit_operand_pad(b, VAL, 3, rng, acc_reg=ACC,
                                     first_bit=kind % 4)
            b.li(T3, 2)
            support.emit_work_loop(
                b, b.unique_label(f"p{pass_index}_leafwork"), T3, counter_reg=T2
            )
            if kind == 0:
                # CONST leaves branch on value parity (repeatable outcome)
                skip = b.unique_label(f"p{pass_index}_parity")
                b.andi(T0, VAL, 1)
                b.beq(T0, 0, skip)
                b.xori(ACC, ACC, 0x5A)
                b.label(skip)
            b.jmp(done)
        elif kind in _UNARY_KINDS:
            b.store(NODE, SP)
            b.addi(SP, SP, 4)
            b.load(NODE, NODE, _OFF_KID0)
            b.call(walker)
            b.addi(SP, SP, -4)
            b.load(NODE, SP)
            if mutate_values:
                b.store(ACC, NODE, _OFF_VALUE)  # fold result back (drift)
            b.load(VAL, NODE, _OFF_VALUE)
            support.emit_operand_pad(b, VAL, 2, rng, acc_reg=ACC,
                                     first_bit=kind % 4)
            b.xori(ACC, ACC, kind)
            b.jmp(done)
        else:  # binary
            b.store(NODE, SP)
            b.addi(SP, SP, 4)
            b.load(NODE, NODE, _OFF_KID0)
            b.call(walker)
            b.addi(SP, SP, -4)
            b.load(NODE, SP)
            b.store(NODE, SP)
            b.addi(SP, SP, 4)
            b.load(NODE, NODE, _OFF_KID1)
            b.call(walker)
            b.addi(SP, SP, -4)
            b.load(NODE, SP)
            # post-visit work (type checking / cost computation stand-in)
            b.load(VAL, NODE, _OFF_VALUE)
            support.emit_operand_pad(b, VAL, 3, rng, acc_reg=ACC,
                                     first_bit=(kind + 2) % 4)
            # operator sub-switch: second static indirect jump of this pass
            b.andi(T3, VAL, 3)
            b.switch(T3, op_table, weights=_OP_WEIGHTS,
                     stem=f"p{pass_index}_opsw")

    for j, name in enumerate(op_handlers):
        b.label(name)
        support.pad_handler(b, rng, 1, 3, acc_reg=ACC)
        if j == 0:
            b.add(ACC, ACC, VAL)
        elif j == 1:
            b.sub(ACC, ACC, VAL)
        elif j == 2:
            b.mul(T0, ACC, VAL)
            b.add(ACC, ACC, T0)
        else:
            b.shri(T0, ACC, 3)
            b.xor(ACC, ACC, T0)
        b.jmp(done)

    b.label(done)
    b.ret()
    return walker


def build(params: GccParams = GccParams(),
          lowering: Optional[str] = None) -> GuestProgram:
    """Assemble the four-pass AST walker over a generated forest."""
    rng = random.Random(params.seed)
    b = ProgramBuilder(lowering=lowering)
    b.jmp("main")

    walkers = [
        _emit_pass(b, rng, p, mutate_values=(p == 1))
        for p in range(params.n_passes)
    ]

    # ------------------------------------------------------------------
    # Forest data: a small vocabulary of subtree templates, instantiated
    # per "statement".  Each instance gets fresh payload and operator bits
    # but keeps the template's kind shape (and hence its kind-signature
    # branch pattern), so the history-indexed target cache can learn the
    # recurring idioms while the per-instance operator bits keep the
    # op-switch stream from becoming trivial.
    # ------------------------------------------------------------------
    templates: List[List[List[int]]] = []
    for _ in range(params.n_templates):
        gen = _TreeGen(rng, params.max_depth, params.template_nodes)
        gen.generate()   # root is local index 0
        templates.append(gen.nodes)

    statement_templates = support.markov_sequence(
        rng, params.n_statements, params.n_templates,
        self_bias=params.template_self_bias,
    )
    node_records: List[List[int]] = []
    root_indices: List[int] = []
    for template_id in statement_templates:
        template = templates[template_id]
        offset = len(node_records)
        for kind, value, nkids, kid0, kid1 in template:
            signature = value & 0xFF
            op_bits = rng.choices([0, 1, 2, 3], weights=[4, 3, 2, 1], k=1)[0]
            payload = rng.randrange(1, 1 << 12)
            fresh_value = (payload << 10) | (op_bits << 8) | signature
            node_records.append([
                kind,
                fresh_value,
                nkids,
                kid0 + offset if nkids >= 1 else 0,
                kid1 + offset if nkids == 2 else 0,
            ])
        root_indices.append(offset)
    n_statements = len(root_indices)

    nodes_base = b.data_cursor

    def node_address(index: int) -> int:
        return nodes_base + index * _NODE_WORDS * 4

    flat: List[int] = []
    for record in node_records:
        kind, value, nkids, kid0, kid1 = record
        flat.extend([
            kind,
            value,
            nkids,
            node_address(kid0) if nkids >= 1 else 0,
            node_address(kid1) if nkids == 2 else 0,
        ])
    placed_base = b.data_table(flat)
    assert placed_base == nodes_base

    roots_base = b.data_table([node_address(i) for i in root_indices])
    stack_base = b.data_zeros(1024)

    # ------------------------------------------------------------------
    # Main loop: forever { for each pass { for each tree { walk } } }
    # ------------------------------------------------------------------
    b.label("main")
    b.li(SP, stack_base)
    b.li(ACC, 1)
    b.label("outer")
    for p, walker in enumerate(walkers):
        b.li(PASSV, p)
        b.li(TREE, 0)
        b.label(f"trees_p{p}")
        b.shli(T0, TREE, 2)
        b.li(T1, roots_base)
        b.add(T0, T0, T1)
        b.load(NODE, T0)
        b.call(walker)
        b.addi(TREE, TREE, 1)
        b.li(T1, n_statements)
        b.blt(TREE, T1, f"trees_p{p}")
    b.jmp("outer")

    return b.build(entry="main")
