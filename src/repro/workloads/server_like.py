"""Server-like workload family: huge code footprints that thrash BTB capacity.

The paper's eight SPEC-like workloads stress target *polymorphism*: a
handful of hot indirect-jump sites whose targets change.  Their static
branch footprints fit comfortably inside the baseline 256-set x 4-way BTB,
so the BTB never forgets a branch exists.  Modern server binaries invert
the problem (PAPERS.md: *Micro BTB*, *FDIP Revisited*): request processing
fans out over thousands of lukewarm static branch sites with Zipf-skewed,
low per-site reuse, and the dominant indirect-jump loss is the BTB
*capacity* miss — the fetch engine predicts fall-through because the
branch's entry was evicted, even though its target never changed.

One generator core serves three presets, differing only in shape knobs:

* ``webserver_like`` — many routes, moderate handler depth, strong Zipf
  skew (a hot home page plus a long tail);
* ``db_like`` — fewer but deeper query plans, mildly polymorphic operator
  dispatch (``poly_ops=2``), flatter skew;
* ``rpc_like`` — very many tiny methods, shallow, nearly uniform traffic:
  the most extreme footprint / lowest per-site reuse of the three.

Guest structure, per simulated request:

1. read ``(route, payload)`` from a host-generated script table (Zipf
   draws via :func:`repro.workloads.support.zipf_weights`);
2. "parse" the payload with a short conditional-branch chain
   (:func:`~repro.workloads.support.emit_operand_pad`);
3. dispatch through one shared indirect-call site into the route's
   handler (``callr`` via a route table — the one genuinely polymorphic
   site, up to ``n_routes`` targets);
4. the handler is a *nested* chain of ``n_stages`` stage functions
   (deep call graph); every stage runs pad work, tests payload bits, and
   makes one indirect call through its own private data slot to a shared
   leaf function — ``n_routes * n_stages`` distinct static indirect-call
   sites, each monomorphic (``poly_ops=1``) or 2-way (``poly_ops=2``).

Calibration: the monomorphic stage sites never mispredict while their BTB
entries survive, so the baseline Table-1-style BTB misprediction rate of
these workloads is almost entirely *capacity-driven* — the knob is the
ratio of static branch sites (``n_routes * n_stages`` stages x ~5 sites
each) to the 1024-entry baseline BTB, and the Zipf exponent controls how
fast the tail churns the sets.  The rates recorded in
``SERVER_WORKLOADS`` are measured on the default 400k-instruction traces
(there is no paper number for this regime; they pin the generator the way
Table 1 pins the SPEC-like family).  ``repro workloads`` prints them next
to the measured footprint metrics from :mod:`repro.trace.stats`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import GuestProgram
from repro.workloads import support
from repro.workloads.support import RNG, T0, T1, T2

# Guest registers (see the conventions note in workloads/support.py)
REQ = 10    # request index into the script
ROUTE = 13  # current request's route id
PAY = 14    # current request's payload word
ACC = 20


@dataclass(frozen=True)
class ServerParams:
    """Shape knobs shared by the server presets (see the module docstring).

    ``n_routes * n_stages`` sets the static-site footprint; ``zipf_s``
    sets how skewed the per-route traffic is (larger = hotter head,
    colder tail); ``poly_ops`` (1 or 2) sets whether stage-level indirect
    calls are monomorphic or 2-way polymorphic.
    """

    seed: int = 1997
    n_routes: int = 224
    n_stages: int = 3
    n_leaves: int = 32
    #: candidate leaf functions per stage-level indirect-call site (1 or 2)
    poly_ops: int = 1
    zipf_s: float = 1.1
    script_len: int = 2048
    parse_branches: int = 2
    pad_branches: int = 2
    min_pad: int = 2
    max_pad: int = 7


@dataclass(frozen=True)
class WebserverParams(ServerParams):
    """URL-route fan-out: many handlers, hot head, long cold tail."""


@dataclass(frozen=True)
class DbParams(ServerParams):
    """Query plans: fewer but deeper chains, 2-way operator dispatch."""

    n_routes: int = 96
    n_stages: int = 5
    poly_ops: int = 2
    zipf_s: float = 0.8
    max_pad: int = 10


@dataclass(frozen=True)
class RpcParams(ServerParams):
    """Microservice stubs: very many tiny methods, near-uniform traffic."""

    n_routes: int = 384
    n_stages: int = 2
    zipf_s: float = 0.5
    min_pad: int = 1
    max_pad: int = 4


def build(params: ServerParams = ServerParams(),
          lowering: Optional[str] = None) -> GuestProgram:
    if params.poly_ops not in (1, 2):
        raise ValueError("poly_ops must be 1 (monomorphic) or 2 (2-way)")
    rng = random.Random(params.seed)
    b = ProgramBuilder(lowering=lowering)
    b.jmp("main")

    # ------------------------------------------------------------------
    # Shared leaf functions: the actual "work" every stage calls into.
    # ------------------------------------------------------------------
    leaf_names = support.handler_labels("leaf", params.n_leaves)
    for name in leaf_names:
        b.label(name)
        support.pad_handler(b, rng, 1, 5, acc_reg=ACC)
        b.ret()

    # ------------------------------------------------------------------
    # Stage dispatch slots: one private data word (or two, when 2-way
    # polymorphic) per (route, stage) holding the leaf address that site
    # calls.  Host-side draws fix the slot contents, so with poly_ops=1
    # every stage site is monomorphic: it only ever mispredicts when its
    # BTB entry has been evicted — the pure capacity signal.
    # ------------------------------------------------------------------
    n_slots = params.n_routes * params.n_stages * params.poly_ops
    slot_values: List[str] = [
        leaf_names[rng.randrange(params.n_leaves)] for _ in range(n_slots)
    ]
    slot_base = b.data_table(slot_values)

    def slot_address(route: int, stage: int) -> int:
        index = (route * params.n_stages + stage) * params.poly_ops
        return slot_base + support.word_offset(index)

    # ------------------------------------------------------------------
    # Stage functions: a nested call chain per route.  Each stage tests
    # payload bits (conditional sites), runs pad work, indirect-calls its
    # leaf, then calls the next stage; the last stage just returns.
    # ------------------------------------------------------------------
    for route in range(params.n_routes):
        for stage in range(params.n_stages):
            b.label(f"rt{route}_s{stage}")
            support.emit_operand_pad(
                b, PAY, params.pad_branches, rng, acc_reg=ACC,
                first_bit=rng.randrange(12),
            )
            support.pad_handler(b, rng, params.min_pad, params.max_pad,
                                acc_reg=ACC)
            if params.poly_ops == 1:
                b.li(T0, slot_address(route, stage))
            else:
                # 2-way operator dispatch: an unpredictable LCG bit picks
                # between the site's two candidate leaves.
                support.emit_random_bit(b, T2, bit=rng.randrange(8, 20))
                b.shli(T2, T2, 2)
                b.li(T0, slot_address(route, stage))
                b.add(T0, T0, T2)
            b.load(T1, T0)
            b.callr(T1)
            if stage + 1 < params.n_stages:
                b.call(f"rt{route}_s{stage + 1}")
            b.ret()

    # Route table: the one shared, genuinely polymorphic dispatch site.
    # (The per-stage leaf calls above go through private data slots, not a
    # selector-indexed table, so they are not switches and stay raw.)
    route_table = b.switch_table(
        [f"rt{route}_s0" for route in range(params.n_routes)]
    )

    # ------------------------------------------------------------------
    # Request script: (route, payload) pairs, routes Zipf-skewed.
    # ------------------------------------------------------------------
    weights = support.zipf_weights(params.n_routes, params.zipf_s)
    routes = support.weighted_sequence(rng, params.script_len, weights)
    script: List[int] = []
    for route in routes:
        script.append(route)
        script.append(rng.randrange(1, 1 << 12))
    script_base = b.data_table(script)

    # ------------------------------------------------------------------
    # Main request loop, wrapping around the script.
    # ------------------------------------------------------------------
    b.label("main")
    b.li(ACC, 1)
    b.li(RNG, params.seed & 0xFFFF)
    b.label("outer")
    b.li(REQ, 0)
    b.label("req_loop")
    b.shli(T0, REQ, 3)  # two words per request
    b.addi(T0, T0, script_base)
    b.load(ROUTE, T0, 0)
    b.load(PAY, T0, 4)
    support.emit_operand_pad(b, PAY, params.parse_branches, rng, acc_reg=ACC)
    b.switch(ROUTE, route_table, kind="call", weights=weights,
             stem="route_sw")
    b.addi(REQ, REQ, 1)
    b.li(T2, params.script_len)
    b.blt(REQ, T2, "req_loop")
    b.jmp("outer")

    return b.build(entry="main")
