"""richards-like OO workload: an OS task scheduler with virtual dispatch.

The paper closes with: "For object oriented programs where more indirect
branches may be executed, tagged caches should provide even greater
performance benefits.  In the future, we will evaluate the performance
benefit of target caches for C++ benchmarks."  Richards (the OS-simulation
kernel benchmark, a staple of the later Driesen/Hölzle indirect-branch
studies) is the canonical such program: a scheduler repeatedly selects the
highest-priority runnable task and invokes its virtual ``run`` method.

Guest structure:

* five task "classes" (idle, worker, device, handler-A, handler-B), each a
  ``run`` routine reached through a per-task function pointer — one hot
  indirect call site with five targets;
* task records ``[state, vtable-ptr, priority, work-counter]`` in guest
  memory; the scheduler scans them for the highest-priority runnable one
  (data-dependent conditionals);
* ``run`` methods move work between tasks (stores), block themselves and
  wake others — so the dynamic receiver sequence is the scheduling pattern:
  strongly structured but polymorphic, the regime where history-indexed
  target prediction shines and a BTB struggles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import GuestProgram
from repro.workloads import support
from repro.workloads.support import RNG, T0, T1, T2, T3

N_TASKS = 6   # one idle task + five real ones (types may repeat)
N_TYPES = 5

# task record layout (words): state (0 blocked / 1 runnable), run-ptr,
# priority, work counter
_TASK_WORDS = 4
_OFF_STATE, _OFF_RUN, _OFF_PRIO, _OFF_WORK = 0, 4, 8, 12

# Guest registers
TASK = 12    # current task pointer
BEST = 13    # best candidate task pointer during the scan
BESTP = 14   # best candidate priority
IDX = 10     # scan index
ACC = 20


@dataclass(frozen=True)
class RichardsParams:
    seed: int = 1997
    #: work units a worker performs before blocking
    worker_quantum: int = 3
    #: padding inside each run method (density calibration)
    method_pad: int = 4


def build(params: RichardsParams = RichardsParams(),
          lowering: Optional[str] = None) -> GuestProgram:
    rng = random.Random(params.seed)
    b = ProgramBuilder(lowering=lowering)
    b.jmp("main")

    # ------------------------------------------------------------------
    # Task table: type per slot (idle, worker, worker, device, hA, hB).
    # ------------------------------------------------------------------
    task_types = [0, 1, 1, 2, 3, 4]
    type_names = ["run_idle", "run_worker", "run_device", "run_handler_a",
                  "run_handler_b"]

    tasks_base = b.data_cursor

    def task_address(index: int) -> int:
        return tasks_base + index * _TASK_WORDS * 4

    flat = []
    for i, task_type in enumerate(task_types):
        flat.extend([
            1,                      # runnable
            0,                      # run-ptr (label fixed up below)
            (i * 3 + 2) % 7 + 1,    # priority
            0,                      # work counter
        ])
    placed = b.data_table(flat)
    assert placed == tasks_base
    # patch the run pointers with label fixups
    for i, task_type in enumerate(task_types):
        b.data_word(type_names[task_type],
                    address=task_address(i) + _OFF_RUN)

    def other_task(index: int, offset: int) -> int:
        return task_address((index + offset) % N_TASKS)

    # ------------------------------------------------------------------
    # run methods.  Convention: TASK holds the receiver; methods may
    # block the receiver ([state]=0) and wake another task ([state]=1).
    # ------------------------------------------------------------------
    def method_prologue(name: str) -> None:
        b.label(name)
        support.pad_handler(b, rng, 1, params.method_pad, acc_reg=ACC)

    method_prologue("run_idle")
    # idle spins briefly and wakes a pseudo-random task
    support.emit_random_bit(b, T2, bit=11)
    b.shli(T2, T2, 1)
    b.addi(T2, T2, 1)          # 1 or 3
    b.li(T0, _TASK_WORDS * 4)
    b.mul(T2, T2, T0)
    b.addi(T2, T2, tasks_base)
    b.li(T3, 1)
    b.store(T3, T2, _OFF_STATE)
    b.ret()

    method_prologue("run_worker")
    # do a quantum of work, then block self and wake the device task
    b.load(T2, TASK, _OFF_WORK)
    b.addi(T2, T2, 1)
    b.store(T2, TASK, _OFF_WORK)
    b.li(T3, params.worker_quantum)
    b.mod(T0, T2, T3)
    keep_running = b.unique_label("worker_keep")
    b.bne(T0, 0, keep_running)
    b.store(0, TASK, _OFF_STATE)              # block self
    b.li(T3, 1)
    b.li(T0, task_address(3))                 # wake the device task
    b.store(T3, T0, _OFF_STATE)
    b.label(keep_running)
    b.li(T3, 2)
    support.emit_work_loop(b, b.unique_label("worker_work"), T3,
                           counter_reg=T2)
    b.ret()

    method_prologue("run_device")
    # simulate an I/O completion: block self, wake both handlers
    b.store(0, TASK, _OFF_STATE)
    b.li(T3, 1)
    b.li(T0, task_address(4))
    b.store(T3, T0, _OFF_STATE)
    b.li(T0, task_address(5))
    b.store(T3, T0, _OFF_STATE)
    b.ret()

    method_prologue("run_handler_a")
    # consume a packet: data-dependent branch on the work counter parity
    b.load(T2, TASK, _OFF_WORK)
    b.addi(T2, T2, 1)
    b.store(T2, TASK, _OFF_WORK)
    b.andi(T0, T2, 1)
    done = b.unique_label("ha_done")
    b.beq(T0, 0, done)
    b.store(0, TASK, _OFF_STATE)              # block after odd packets
    b.li(T3, 1)
    b.li(T0, task_address(1))                 # wake worker 1
    b.store(T3, T0, _OFF_STATE)
    b.label(done)
    b.ret()

    method_prologue("run_handler_b")
    b.load(T2, TASK, _OFF_WORK)
    b.addi(T2, T2, 2)
    b.store(T2, TASK, _OFF_WORK)
    b.store(0, TASK, _OFF_STATE)              # always blocks
    b.li(T3, 1)
    b.li(T0, task_address(2))                 # wake worker 2
    b.store(T3, T0, _OFF_STATE)
    b.ret()

    # ------------------------------------------------------------------
    # Scheduler: scan for the highest-priority runnable task; if none is
    # runnable, wake the idle task.  Then dispatch through the task's
    # run pointer — the hot indirect call site.
    # ------------------------------------------------------------------
    b.label("main")
    b.li(ACC, 1)
    b.li(RNG, params.seed & 0xFFFF)
    b.label("schedule")
    b.li(BEST, 0)
    b.li(BESTP, -1)
    b.li(IDX, 0)
    b.label("scan")
    b.li(T0, _TASK_WORDS * 4)
    b.mul(T0, IDX, T0)
    b.addi(TASK, T0, tasks_base)
    b.load(T1, TASK, _OFF_STATE)
    skip = b.unique_label("scan_skip")
    b.beq(T1, 0, skip)                        # blocked
    b.load(T2, TASK, _OFF_PRIO)
    b.bge(BESTP, T2, skip)                    # not better
    b.mov(BEST, TASK)
    b.mov(BESTP, T2)
    b.label(skip)
    b.addi(IDX, IDX, 1)
    b.li(T3, N_TASKS)
    b.blt(IDX, T3, "scan")
    # nothing runnable? wake idle (slot 0)
    run_it = b.unique_label("run_it")
    b.bne(BEST, 0, run_it)
    b.li(BEST, tasks_base)
    b.li(T3, 1)
    b.store(T3, BEST, _OFF_STATE)
    b.label(run_it)
    b.mov(TASK, BEST)
    b.load(T1, TASK, _OFF_RUN)
    b.callr(T1)                               # virtual dispatch
    b.jmp("schedule")

    return b.build(entry="main")
