"""Synthetic SPECint95-like guest workloads.

The paper evaluates on the eight SPECint95 benchmarks.  Those binaries and
inputs are not available here, so this package provides eight guest programs
with the same *character*, each calibrated against the paper's published
statistics (Table 1 misprediction rates, Figures 1-8 target histograms, and
the §4.2.3 observations about which history type wins where):

========== ==================================================================
name        character
========== ==================================================================
compress    LZW-style byte compressor: hash probing, bit packing, one
            heavily-skewed dispatch (low indirect mispredict rate, ~14%)
gcc         compiler passes walking ASTs through many static switch
            statements (many static indirect jumps, BTB mispredicts ~66%)
go          board scanner with data-dependent pattern dispatch and
            hard-to-predict conditionals (~38%)
ijpeg       DCT-style block transforms with a skewed coefficient-class
            dispatch (~11%)
m88ksim     a CPU simulator simulating a toy processor: fetch/decode/execute
            switch over opcodes of a looping guest-guest program (~37%)
perl        a bytecode interpreter whose dispatch loop re-processes a
            looping token script — the paper's flagship path-history case
            (~76% BTB mispredict, few static indirect jumps)
vortex      OO-database-style method calls through per-class function
            tables, receivers arriving in homogeneous runs (~8%)
xlisp       a tag-dispatched expression evaluator with a mark-sweep-style
            heap scan (~21%)
========== ==================================================================

Use :func:`~repro.workloads.registry.get_trace` (also re-exported here) to
obtain cached traces.
"""

from repro.workloads.registry import (
    WORKLOADS,
    WorkloadSpec,
    build_program,
    get_trace,
    parse_workload_name,
    trace_fingerprint,
    workload_names,
    workload_spec,
)

__all__ = [
    "WORKLOADS",
    "WorkloadSpec",
    "build_program",
    "get_trace",
    "parse_workload_name",
    "trace_fingerprint",
    "workload_names",
    "workload_spec",
]
