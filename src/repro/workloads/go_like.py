"""go-like workload: board scanning with data-dependent pattern dispatch.

go (the game player) is the classic hard-to-predict benchmark: its
conditional branches depend on board contents, and its switch-like
dispatches (pattern matchers) follow the board too.  The paper's Table 1
puts its BTB indirect misprediction near 38% — the dispatch class changes
often, but empty-board regions give a dominant case.

Structure: a 19x19 board initialised host-side with a skewed
empty/black/white distribution; a scan loop classifying each interior
point from its own stone and its neighbours (a 6-class dispatch); per-point
evaluation with board-dependent conditionals; and a move-generation step
after each scan that flips a few random cells, so the board — and the
dispatch stream — drifts over time.

Class mapping (computed in guest code): empty points split into "quiet"
(fewer than two occupied neighbours; the dominant class) and "contested";
occupied points split by colour and by whether they have at least two
occupied neighbours (group interior vs isolated stone).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import GuestProgram
from repro.workloads import support
from repro.workloads.support import RNG, T0, T1, T2, T3

BOARD_DIM = 19
BOARD_CELLS = BOARD_DIM * BOARD_DIM
N_CLASSES = 6

# Guest registers
POS = 10     # board position index
STONE = 12   # stone at the position (0 empty / 1 black / 2 white)
NBRS = 13    # occupied-neighbour count
CLASSR = 14  # pattern class
ACC = 20


@dataclass(frozen=True)
class GoParams:
    seed: int = 1997
    #: P(empty), P(black); white gets the rest.  Emptiness skew is the
    #: calibration lever for the ~38% BTB rate.
    p_empty: float = 0.80
    p_black: float = 0.11
    #: an empty point is "quiet" while it has fewer than this many occupied
    #: neighbours (raising it enlarges the dominant class)
    quiet_threshold: int = 3
    #: cells flipped by the move generator after each scan
    moves_per_scan: int = 6
    #: per-point evaluation work iterations
    eval_iterations: int = 4


def build(params: GoParams = GoParams(),
          lowering: Optional[str] = None) -> GuestProgram:
    rng = random.Random(params.seed)
    b = ProgramBuilder(lowering=lowering)
    b.jmp("main")

    # Board data (host-initialised).
    stones = []
    for _ in range(BOARD_CELLS):
        roll = rng.random()
        if roll < params.p_empty:
            stones.append(0)
        elif roll < params.p_empty + params.p_black:
            stones.append(1)
        else:
            stones.append(2)
    board_base = b.data_table(stones)
    influence_base = b.data_zeros(BOARD_CELLS)
    class_names = [f"pat_{i}" for i in range(N_CLASSES)]
    class_table = b.switch_table(class_names)

    def load_cell(dst: int, index_reg: int, offset_cells: int) -> None:
        """dst = board[index_reg + offset_cells]; occupancy only."""
        b.addi(T0, index_reg, offset_cells)
        b.shli(T0, T0, 2)
        b.addi(T0, T0, board_base)
        b.load(dst, T0)

    b.label("main")
    b.li(ACC, 1)
    b.li(RNG, params.seed & 0xFFFF)

    # ------------------------------------------------------------------
    # Scan: interior points only, so the four neighbours always exist.
    # ------------------------------------------------------------------
    b.label("scan")
    b.li(POS, BOARD_DIM + 1)
    b.label("scan_loop")
    load_cell(STONE, POS, 0)
    # count occupied neighbours (left, right, up, down)
    b.li(NBRS, 0)
    for offset in (-1, 1, -BOARD_DIM, BOARD_DIM):
        load_cell(T1, POS, offset)
        b.slt(T2, 0, T1)          # T2 = 1 if neighbour occupied
        b.add(NBRS, NBRS, T2)
    # classify: empty -> 0 (quiet) or 1 (contested);
    #           stone -> 2+2*(colour-1) + (nbrs >= 2)
    b.li(T2, 2)
    empty_case = b.unique_label("cls_empty")
    stone_case = b.unique_label("cls_stone")
    classified = b.unique_label("cls_done")
    b.beq(STONE, 0, empty_case)
    b.label(stone_case)
    b.addi(CLASSR, STONE, -1)     # 0 for black, 1 for white
    b.shli(CLASSR, CLASSR, 1)
    b.addi(CLASSR, CLASSR, 2)     # 2 or 4
    b.slt(T3, NBRS, T2)           # T3 = 1 if nbrs < 2
    b.xori(T3, T3, 1)             # T3 = 1 if nbrs >= 2
    b.add(CLASSR, CLASSR, T3)     # +1 for group interior
    b.jmp(classified)
    b.label(empty_case)
    b.li(T2, params.quiet_threshold)
    b.slt(T3, NBRS, T2)
    b.xori(CLASSR, T3, 1)         # 0 if quiet, 1 if contested
    b.label(classified)
    b.switch(CLASSR, class_table, stem="pat_sw")

    for i, name in enumerate(class_names):
        b.label(name)
        support.pad_handler(b, rng, 1, 5, acc_reg=ACC)
        if i == 0:
            # quiet empty point: cheap influence decay
            b.shli(T2, POS, 2)
            b.addi(T2, T2, influence_base)
            b.load(T3, T2)
            b.shri(T3, T3, 1)
            b.store(T3, T2)
        elif i == 1:
            # contested empty point: territory estimate with a
            # board-dependent (hard-to-predict) conditional
            b.add(T2, NBRS, STONE)
            b.andi(T3, ACC, 1)
            side = b.unique_label("pat1_side")
            b.beq(T3, 0, side)
            b.add(ACC, ACC, T2)
            b.label(side)
            b.addi(ACC, ACC, 1)
        else:
            # stone classes: liberty-count style evaluation loop
            b.li(T3, params.eval_iterations + i)
            support.emit_work_loop(
                b, b.unique_label(f"pat{i}_eval"), T3, counter_reg=T2
            )
            b.shli(T2, POS, 2)
            b.addi(T2, T2, influence_base)
            b.store(NBRS, T2)
        b.jmp("point_done")

    b.label("point_done")
    b.addi(POS, POS, 1)
    b.li(T3, BOARD_CELLS - BOARD_DIM - 1)
    b.blt(POS, T3, "scan_loop")

    # ------------------------------------------------------------------
    # Move generation: flip a few random interior cells so the board and
    # the dispatch stream drift (no perfect periodicity).
    # ------------------------------------------------------------------
    b.li(T1, 0)
    b.label("moves_loop")
    support.emit_lcg_step(b)
    b.shri(T2, RNG, 5)
    b.li(T3, BOARD_CELLS - 2 * BOARD_DIM)
    b.mod(T2, T2, T3)
    b.addi(T2, T2, BOARD_DIM)     # interior position
    b.shli(T2, T2, 2)
    b.addi(T2, T2, board_base)
    # draw the new stone from (roughly) the initial distribution so the
    # board's emptiness skew is stationary over arbitrarily long traces —
    # cycling states instead would drift toward uniform occupancy and
    # silently decalibrate the BTB misprediction rate
    b.shri(T3, RNG, 9)
    b.andi(T3, T3, 15)
    b.li(T0, int(params.p_empty * 16))
    empty_stone = b.unique_label("mv_empty")
    colour_stone = b.unique_label("mv_done")
    b.blt(T3, T0, empty_stone)
    b.shri(T3, RNG, 13)
    b.andi(T3, T3, 1)
    b.addi(T3, T3, 1)             # black or white
    b.jmp(colour_stone)
    b.label(empty_stone)
    b.li(T3, 0)
    b.label(colour_stone)
    b.store(T3, T2)
    b.addi(T1, T1, 1)
    b.li(T3, params.moves_per_scan)
    b.blt(T1, T3, "moves_loop")
    b.jmp("scan")

    return b.build(entry="main")
