"""vortex-like workload: OO-database method calls through class tables.

vortex is an object-oriented database written in C with explicit
function-pointer "method" tables.  Its indirect calls are numerous but
*well-behaved*: each call site is dominated by one receiver class at a
time, so a BTB's last-target prediction is wrong only ~8% of the time
(paper Table 1) — the benchmark where the target cache has the least to
win, and where the 2-bit update strategy *increases* mispredictions
(Table 2).

Structure: six "classes", each with a table of three method pointers; a
collection of objects whose class sequence is generated with strong
self-bias (homogeneous runs); a main loop performing three operations per
object through three distinct indirect-call sites; methods of varying
length, one of which probes a hash index (load-heavy with data-dependent
conditionals).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import GuestProgram
from repro.workloads import support
from repro.workloads.support import RNG, T0, T1, T2, T3

N_CLASSES = 6
N_OPS = 3

# Guest registers
OBJI = 10   # object index
OBJ = 12    # object pointer
CLS = 13    # object class id
FLD = 14    # object field value
ACC = 20

# Object layout (words): class, key, payload, spare
_OBJ_WORDS = 4


@dataclass(frozen=True)
class VortexParams:
    seed: int = 1997
    n_objects: int = 160
    #: probability the next object repeats the previous class; calibrates
    #: the BTB misprediction rate to the paper's ~8%
    class_self_bias: float = 0.90
    hash_table_words: int = 128


def build(params: VortexParams = VortexParams(),
          lowering: Optional[str] = None) -> GuestProgram:
    rng = random.Random(params.seed)
    b = ProgramBuilder(lowering=lowering)
    b.jmp("main")

    # ------------------------------------------------------------------
    # Shared helper: hash-index probe (memory traffic + conditionals).
    # ------------------------------------------------------------------
    hash_base = b.data_zeros(params.hash_table_words)
    b.label("probe")
    b.andi(T2, FLD, params.hash_table_words - 1)
    b.shli(T2, T2, 2)
    b.addi(T2, T2, hash_base)
    b.load(T3, T2)
    found = b.unique_label("probe_found")
    b.beq(T3, FLD, found)
    b.store(FLD, T2)
    b.addi(ACC, ACC, 1)
    b.label(found)
    b.ret()

    # ------------------------------------------------------------------
    # Methods: N_CLASSES x N_OPS small routines of varying length.
    # ------------------------------------------------------------------
    method_names: List[str] = []
    for cls in range(N_CLASSES):
        for op in range(N_OPS):
            name = f"m_c{cls}_o{op}"
            method_names.append(name)
            b.label(name)
            support.pad_handler(b, rng, 1, 6, acc_reg=ACC)
            if op == 0:       # "lookup": read fields, probe the index
                b.load(FLD, OBJ, 4)
                b.call("probe")
                b.add(ACC, ACC, FLD)
            elif op == 1:     # "update": mutate the payload field
                b.load(FLD, OBJ, 8)
                b.addi(FLD, FLD, cls + 1)
                b.andi(FLD, FLD, 0xFFFF)
                b.store(FLD, OBJ, 8)
            else:             # "validate": branch on a payload predicate
                b.load(FLD, OBJ, 8)
                b.andi(T2, FLD, 1)
                ok = b.unique_label(f"val_ok_{cls}")
                b.beq(T2, 0, ok)
                b.xori(ACC, ACC, cls)
                b.label(ok)
                b.li(T3, 4 + cls)
                support.emit_work_loop(
                    b, b.unique_label(f"val_work_{cls}"), T3, counter_reg=T2
                )
            b.ret()

    # Method tables: one table per class, three pointers each, flattened.
    # Each op's call site is a strided switch over the shared table: case
    # ``cls`` of op ``op`` lives at word ``cls * N_OPS + op``.
    method_table = b.data_table(method_names)
    op_tables = [
        b.switch_table(
            [f"m_c{cls}_o{op}" for cls in range(N_CLASSES)],
            stride=N_OPS, offset=op, base=method_table,
        )
        for op in range(N_OPS)
    ]

    # ------------------------------------------------------------------
    # Objects: class sequence in homogeneous runs.
    # ------------------------------------------------------------------
    classes = support.markov_sequence(
        rng, params.n_objects, N_CLASSES, self_bias=params.class_self_bias
    )
    objects_base = b.data_cursor
    flat: List[int] = []
    for cls in classes:
        flat.extend([cls, rng.randrange(1, 1 << 12), rng.randrange(1, 1 << 12), 0])
    placed = b.data_table(flat)
    assert placed == objects_base

    # ------------------------------------------------------------------
    # Main loop: three ops per object, each a distinct indirect-call site.
    # ------------------------------------------------------------------
    b.label("main")
    b.li(ACC, 1)
    b.li(RNG, params.seed & 0xFFFF)
    b.label("outer")
    b.li(OBJI, 0)
    b.label("obj_loop")
    b.li(T0, _OBJ_WORDS * 4)
    b.mul(T0, OBJI, T0)
    b.addi(OBJ, T0, objects_base)
    b.load(CLS, OBJ, 0)
    for op in range(N_OPS):
        # method = method_table[cls * N_OPS + op]
        b.switch(CLS, op_tables[op], kind="call", t_addr=T0, t_handler=T1,
                 stem=f"vcall{op}_sw")
        # inter-call work: key comparison loop (B-tree descent stand-in)
        b.li(T3, 5)
        support.emit_work_loop(b, b.unique_label(f"descend_{op}"), T3, counter_reg=T2)
    b.addi(OBJI, OBJI, 1)
    b.li(T3, params.n_objects)
    b.blt(OBJI, T3, "obj_loop")
    b.jmp("outer")

    return b.build(entry="main")
