"""xlisp-like workload: a tag-dispatched expression evaluator with GC scans.

xlisp (a small Lisp interpreter) dispatches on object *type tags* — a
switch over a handful of types, most of whose dynamic instances are
fixnums and cons cells.  The tag stream therefore has long same-tag runs,
so a BTB is wrong only ~21% of the time (paper Table 1), and the 2-bit
update strategy *hurts* (Table 2) because when the tag does change it
usually stays changed.

Structure: a heap of 4-word tagged cells built host-side (expression trees
whose argument lists are fixnum-heavy), an ``eval`` routine with a 7-way
tag switch (static indirect jump #1) whose cons handler applies a builtin
through a function-pointer table (indirect call site), and a mark-phase
heap scan with its own tag switch (static indirect jump #2) executed every
outer iteration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import GuestProgram
from repro.workloads import support
from repro.workloads.support import T0, T1, T2, T3

# Tags
TAG_FIXNUM, TAG_CONS, TAG_SYMBOL, TAG_STRING, TAG_FLONUM, TAG_VECTOR, TAG_NIL = range(7)
N_TAGS = 7

# Cell layout (words): tag, a, b, c
#   fixnum: a = value
#   cons:   a = car ptr, b = cdr ptr, c = builtin id (0..7)
#   symbol: a = binding cell ptr
#   string: a = length (1..8), b = hash seed
#   vector: a = elem0 ptr, b = elem1 ptr
#   flonum: a = value
_CELL_WORDS = 4

# Guest registers
SP = 11    # guest save-stack pointer
OBJ = 12   # current object pointer
TAG = 13   # current tag
VAL = 14
ACC = 20
EXPR = 15  # top-level expression index
HEAPI = 16  # heap scan index


@dataclass(frozen=True)
class XlispParams:
    seed: int = 1997
    n_expressions: int = 36
    max_depth: int = 6
    #: probability an argument is a fixnum (tag-run calibration lever)
    fixnum_bias: float = 0.85
    #: number of linear GC phases per outer iteration (mark / sweep /
    #: compact).  GC dispatches dominate the indirect-jump stream, and —
    #: because xlisp allocates from per-type segments, which this workload
    #: models by tag-sorting the heap — their tag runs are long, pulling
    #: the overall BTB misprediction rate down to the paper's ~21%.
    gc_phases: int = 3


class _HeapGen:
    """Host-side heap builder; cells are [tag, a, b, c] word records."""

    def __init__(self, rng: random.Random, params: XlispParams) -> None:
        self.rng = rng
        self.params = params
        self.cells: List[List[int]] = []
        # a shared binding cell for symbols
        self.binding = self._alloc(TAG_FIXNUM, a=42)

    def _alloc(self, tag: int, a: int = 0, b: int = 0, c: int = 0) -> int:
        self.cells.append([tag, a, b, c])
        return len(self.cells) - 1

    def atom(self) -> int:
        rng = self.rng
        if rng.random() < self.params.fixnum_bias:
            return self._alloc(TAG_FIXNUM, a=rng.randrange(1, 500))
        roll = rng.random()
        if roll < 0.3:
            return self._alloc(TAG_SYMBOL, a=self.binding)
        if roll < 0.55:
            return self._alloc(TAG_STRING, a=rng.randrange(1, 8),
                               b=rng.randrange(1, 97))
        if roll < 0.75:
            return self._alloc(TAG_FLONUM, a=rng.randrange(1, 100))
        if roll < 0.9:
            return self._alloc(TAG_NIL)
        return self._alloc(TAG_VECTOR, a=self.atom(), b=self.atom())

    def expression(self, depth: int = 0) -> int:
        rng = self.rng
        if depth >= self.params.max_depth or rng.random() < 0.35 + 0.08 * depth:
            return self.atom()
        car = self.expression(depth + 1)
        cdr = self.expression(depth + 1)
        builtin = rng.choices(range(8), weights=[5, 4, 3, 2, 2, 1, 1, 1], k=1)[0]
        return self._alloc(TAG_CONS, a=car, b=cdr, c=builtin)


def build(params: XlispParams = XlispParams(),
          lowering: Optional[str] = None) -> GuestProgram:
    rng = random.Random(params.seed)
    b = ProgramBuilder(lowering=lowering)
    b.jmp("main")

    # ------------------------------------------------------------------
    # eval: dispatch on tag.
    # ------------------------------------------------------------------
    tag_handlers = [f"ev_{t}" for t in range(N_TAGS)]
    tag_table = b.switch_table(tag_handlers)
    builtin_names = [f"builtin_{i}" for i in range(8)]
    builtin_table = b.switch_table(builtin_names)
    gc_tables = [
        b.switch_table([f"gc{phase}_{t}" for t in range(N_TAGS)])
        for phase in range(params.gc_phases)
    ]
    # Spec-level tag frequencies (fixnum dominates per fixnum_bias; cons
    # cells are the interior nodes) for density-based lowerings.
    rest = 1.0 - params.fixnum_bias
    tag_weights = [
        params.fixnum_bias,   # fixnum
        0.5,                  # cons
        0.30 * rest,          # symbol
        0.25 * rest,          # string
        0.20 * rest,          # flonum
        0.10 * rest,          # vector
        0.15 * rest,          # nil
    ]
    builtin_weights = [5.0, 4.0, 3.0, 2.0, 2.0, 1.0, 1.0, 1.0]

    b.label("eval")
    b.load(TAG, OBJ, 0)
    b.switch(TAG, tag_table, weights=tag_weights, stem="ev_sw")

    b.label("ev_0")  # fixnum
    b.load(VAL, OBJ, 4)
    b.add(ACC, ACC, VAL)
    b.andi(T3, VAL, 3)
    b.addi(T3, T3, 2)
    support.emit_work_loop(b, "ev_fix_work", T3, counter_reg=T2)
    b.ret()

    b.label("ev_1")  # cons: eval car, eval cdr, apply builtin
    b.store(OBJ, SP)
    b.addi(SP, SP, 4)
    b.load(OBJ, OBJ, 4)
    b.call("eval")
    b.addi(SP, SP, -4)
    b.load(OBJ, SP)
    b.store(OBJ, SP)
    b.addi(SP, SP, 4)
    b.load(OBJ, OBJ, 8)
    b.call("eval")
    b.addi(SP, SP, -4)
    b.load(OBJ, SP)
    b.load(T2, OBJ, 12)           # builtin id
    b.switch(T2, builtin_table, kind="call", weights=builtin_weights,
             stem="builtin_sw")
    b.ret()

    b.label("ev_2")  # symbol: follow the binding
    b.load(T2, OBJ, 4)
    b.load(VAL, T2, 4)
    b.add(ACC, ACC, VAL)
    b.xori(ACC, ACC, 0x21)
    b.ret()

    b.label("ev_3")  # string: hash its characters
    b.load(T2, OBJ, 4)            # length
    b.load(VAL, OBJ, 8)           # seed
    b.li(T3, 0)
    b.label("ev_str_loop")
    b.shli(VAL, VAL, 1)
    b.xori(VAL, VAL, 0x35)
    b.andi(VAL, VAL, 0xFFFF)
    b.addi(T3, T3, 1)
    b.blt(T3, T2, "ev_str_loop")
    b.add(ACC, ACC, VAL)
    b.ret()

    b.label("ev_4")  # flonum
    b.load(VAL, OBJ, 4)
    b.fadd(25, 25, VAL)
    b.fmul(25, 25, 26)
    b.ret()

    b.label("ev_5")  # vector: eval both elements
    b.store(OBJ, SP)
    b.addi(SP, SP, 4)
    b.load(OBJ, OBJ, 4)
    b.call("eval")
    b.addi(SP, SP, -4)
    b.load(OBJ, SP)
    b.store(OBJ, SP)
    b.addi(SP, SP, 4)
    b.load(OBJ, OBJ, 8)
    b.call("eval")
    b.addi(SP, SP, -4)
    b.load(OBJ, SP)
    b.ret()

    b.label("ev_6")  # nil
    b.addi(ACC, ACC, 1)
    b.ret()

    # builtins: small variable-length bodies
    for i, name in enumerate(builtin_names):
        b.label(name)
        support.pad_handler(b, rng, 1, 4, acc_reg=ACC)
        if i % 3 == 0:
            b.add(ACC, ACC, VAL)
        elif i % 3 == 1:
            b.sub(ACC, ACC, VAL)
        else:
            b.shri(T0, ACC, 2)
            b.xor(ACC, ACC, T0)
        b.ret()

    # ------------------------------------------------------------------
    # Heap data: expressions, then the flat cell array for the GC scan.
    # ------------------------------------------------------------------
    gen = _HeapGen(rng, params)
    roots = [gen.expression() for _ in range(params.n_expressions)]

    # xlisp allocates objects from per-type segments; model that by
    # tag-sorting the heap (stable, so within a tag the allocation order
    # is preserved) and remapping every pointer field.
    order = sorted(range(len(gen.cells)), key=lambda i: gen.cells[i][0])
    remap = {old: new for new, old in enumerate(order)}
    sorted_cells = [gen.cells[i] for i in order]
    roots = [remap[r] for r in roots]

    heap_base = b.data_cursor

    def cell_address(index: int) -> int:
        return heap_base + index * _CELL_WORDS * 4

    flat: List[int] = []
    for tag, a_field, b_field, c in sorted_cells:
        if tag in (TAG_CONS, TAG_VECTOR):
            a_field = cell_address(remap[a_field])
            b_field = cell_address(remap[b_field])
        elif tag == TAG_SYMBOL:
            a_field = cell_address(remap[a_field])
        flat.extend([tag, a_field, b_field, c])
    placed = b.data_table(flat)
    assert placed == heap_base
    roots_base = b.data_table([cell_address(r) for r in roots])
    mark_base = b.data_zeros(len(gen.cells))
    stack_base = b.data_zeros(1024)
    n_cells = len(gen.cells)

    # ------------------------------------------------------------------
    # GC phases: linear scans, each with its own tag switch (mark, sweep,
    # compact — distinct static indirect jumps over the same tag stream).
    # ------------------------------------------------------------------
    for phase in range(params.gc_phases):
        b.label(f"gc_phase{phase}")
        b.li(HEAPI, 0)
        b.label(f"gc{phase}_loop")
        b.li(T0, _CELL_WORDS * 4)
        b.mul(T0, HEAPI, T0)
        b.addi(OBJ, T0, heap_base)
        b.load(TAG, OBJ, 0)
        b.switch(TAG, gc_tables[phase], weights=tag_weights,
                 stem=f"gc{phase}_sw")
        for t in range(N_TAGS):
            b.label(f"gc{phase}_{t}")
            support.pad_handler(b, rng, 0, 3, acc_reg=ACC)
            b.shli(T2, HEAPI, 2)
            b.addi(T2, T2, mark_base)
            b.li(T3, (phase << 4) | (t + 1))
            b.store(T3, T2)       # phase-tagged mark word
            if t == TAG_CONS:
                # follow one link (pointer chasing, as mark phases do)
                b.load(T3, OBJ, 4)
                b.load(T3, T3, 0)
                b.add(ACC, ACC, T3)
            b.jmp(f"gc{phase}_next")
        b.label(f"gc{phase}_next")
        b.addi(HEAPI, HEAPI, 1)
        b.li(T3, n_cells)
        b.blt(HEAPI, T3, f"gc{phase}_loop")
        b.ret()

    # ------------------------------------------------------------------
    # Main loop: eval every top-level expression, then a GC scan.
    # ------------------------------------------------------------------
    b.label("main")
    b.li(SP, stack_base)
    b.li(ACC, 1)
    b.label("outer")
    b.li(EXPR, 0)
    b.label("expr_loop")
    b.shli(T0, EXPR, 2)
    b.li(T1, roots_base)
    b.add(T0, T0, T1)
    b.load(OBJ, T0)
    b.call("eval")
    b.addi(EXPR, EXPR, 1)
    b.li(T3, params.n_expressions)
    b.blt(EXPR, T3, "expr_loop")
    for phase in range(params.gc_phases):
        b.call(f"gc_phase{phase}")
    b.jmp("outer")

    return b.build(entry="main")
