"""compress-like workload: LZW-style hashing, probing and bit packing.

compress spends its time in a tight byte loop — hash the next input byte,
probe the code table, extend or emit, pack output bits.  Indirect jumps
are rare and heavily skewed (one hot case dominates), so the BTB's
last-target prediction is wrong only ~14% of the time (paper Table 1) and
there is little for a target cache to win — compress is a *control*
benchmark showing the target cache does no harm where BTBs already work.

Structure: a guest-LCG input stream; a hash-probe with match/miss
conditional paths; shift/or bit packing with an occasional flush branch;
and one 3-way dispatch on a skewed "code length class" (92/6/2), executed
once per input byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import GuestProgram
from repro.workloads import support
from repro.workloads.support import RNG, T0, T1, T2, T3

# Guest registers
BYTE = 12    # current input byte
HASH = 13    # rolling hash
BITBUF = 14  # output bit buffer
BITCNT = 15  # bits in the buffer
CLASSR = 16  # code-length class
ACC = 20


@dataclass(frozen=True)
class CompressParams:
    seed: int = 1997
    table_words: int = 512
    #: class thresholds on the byte value: <= t0 -> class 0, <= t1 -> 1,
    #: else 2.  Defaults give ~92/6/2, calibrating the BTB rate to ~14%.
    threshold0: int = 235
    threshold1: int = 250
    #: padding work per byte (indirect-density calibration)
    work_iterations: int = 7


def build(params: CompressParams = CompressParams(),
          lowering: Optional[str] = None) -> GuestProgram:
    rng = random.Random(params.seed)
    b = ProgramBuilder(lowering=lowering)
    b.jmp("main")

    table_base = b.data_zeros(params.table_words)
    output_base = b.data_zeros(256)
    class_names = ["cls_short", "cls_mid", "cls_long"]
    class_table = b.switch_table(class_names)
    # Class shares implied by the byte-value thresholds (~92/6/2).
    class_weights = [
        float(params.threshold0),
        float(params.threshold1 - params.threshold0),
        float(256 - params.threshold1),
    ]

    b.label("main")
    b.li(RNG, params.seed & 0xFFFF)
    b.li(HASH, 17)
    b.li(BITBUF, 0)
    b.li(BITCNT, 0)
    b.li(ACC, 1)

    b.label("byte_loop")
    # next input byte from the guest LCG
    support.emit_lcg_step(b)
    b.shri(BYTE, RNG, 8)
    b.andi(BYTE, BYTE, 0xFF)
    # rolling hash and table probe
    b.li(T0, 33)
    b.mul(HASH, HASH, T0)
    b.xor(HASH, HASH, BYTE)
    b.andi(HASH, HASH, params.table_words - 1)
    b.shli(T0, HASH, 2)
    b.addi(T0, T0, table_base)
    b.load(T1, T0)
    miss = b.unique_label("probe_miss")
    after_probe = b.unique_label("after_probe")
    b.bne(T1, BYTE, miss)
    # match: extend the current run (short path)
    b.addi(ACC, ACC, 2)
    b.jmp(after_probe)
    b.label(miss)
    # miss: install the code and emit the pending run (longer path)
    b.store(BYTE, T0)
    b.shli(BITBUF, BITBUF, 4)
    b.andi(T2, BYTE, 0xF)
    b.or_(BITBUF, BITBUF, T2)
    b.addi(BITCNT, BITCNT, 4)
    b.label(after_probe)
    # flush the bit buffer when 16+ bits are pending
    b.li(T2, 16)
    noflush = b.unique_label("noflush")
    b.blt(BITCNT, T2, noflush)
    b.andi(T3, ACC, 63)
    b.shli(T3, T3, 2)
    b.addi(T3, T3, output_base)
    b.store(BITBUF, T3)
    b.li(BITBUF, 0)
    b.li(BITCNT, 0)
    b.label(noflush)
    # classify the code length: skewed 3-way dispatch
    b.li(T2, params.threshold0)
    b.li(CLASSR, 0)
    cls_done = b.unique_label("cls_done")
    b.blt(BYTE, T2, cls_done)
    b.li(T2, params.threshold1)
    b.li(CLASSR, 1)
    b.blt(BYTE, T2, cls_done)
    b.li(CLASSR, 2)
    b.label(cls_done)
    b.switch(CLASSR, class_table, weights=class_weights, stem="cls_sw")

    for i, name in enumerate(class_names):
        b.label(name)
        support.pad_handler(b, rng, 1, 4, acc_reg=ACC)
        if i == 0:
            b.addi(ACC, ACC, 1)
        elif i == 1:
            b.shli(BITBUF, BITBUF, 1)
            b.addi(BITCNT, BITCNT, 1)
        else:
            b.shli(BITBUF, BITBUF, 2)
            b.addi(BITCNT, BITCNT, 2)
            b.xori(ACC, ACC, 0x7)
        b.jmp("byte_done")

    b.label("byte_done")
    b.li(T3, params.work_iterations)
    support.emit_work_loop(b, "byte_work", T3, counter_reg=T2)
    b.jmp("byte_loop")

    return b.build(entry="main")
