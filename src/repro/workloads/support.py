"""Shared building blocks for the synthetic workloads.

Guest-side helpers emit common code shapes (jump-table dispatch, a linear
congruential generator for data-dependent branches, bounded work loops);
host-side helpers generate the data the workloads consume (token scripts,
Markov sequences, skewed categorical draws) with seeded ``random.Random``
instances so every trace is reproducible.

Register conventions used by all workloads (nothing enforces these; they
just keep the emitters composable):

* r1-r9    expression temporaries (freely clobbered by helpers)
* r10-r19  loop counters and pointers owned by the main loop
* r20-r27  workload accumulators / state
* r28      guest LCG state
* r29      call-scratch (helpers may clobber)
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import INSTRUCTION_BYTES
from repro.guest.lowering import emit_table_dispatch

# Expression temporaries (clobbered by emit_* helpers).
T0, T1, T2, T3 = 1, 2, 3, 4
#: Guest LCG state register.
RNG = 28

_LCG_A = 1103515245
_LCG_C = 12345
_LCG_MASK = 0x3FFFFFFF


def emit_dispatch(b: ProgramBuilder, table_base: int, token_reg: int,
                  t_addr: int = T0, t_handler: int = T1) -> int:
    """Emit a raw jump-table dispatch: ``jr table[token_reg]``.

    Returns the address of the ``jr`` instruction (the static indirect jump
    the target cache will predict).  ``t_addr``/``t_handler`` are scratch.

    This is the fixed-shape primitive; workloads should instead describe
    dispatch with :meth:`ProgramBuilder.switch`, which routes through the
    active lowering pass (this helper *is* its ``jump_table`` shape).
    """
    return emit_table_dispatch(
        b, table_base, token_reg, kind="jump",
        t_addr=t_addr, t_handler=t_handler,
    )


def emit_call_dispatch(b: ProgramBuilder, table_base: int, token_reg: int,
                       t_addr: int = T0, t_handler: int = T1) -> int:
    """Like :func:`emit_dispatch` but via an indirect call (``callr``).

    Used by OO-style dispatch (a virtual method call rather than a switch).
    """
    return emit_table_dispatch(
        b, table_base, token_reg, kind="call",
        t_addr=t_addr, t_handler=t_handler,
    )


def emit_lcg_step(b: ProgramBuilder, state_reg: int = RNG, t: int = T3) -> None:
    """Advance the guest LCG: ``state = (state * A + C) & MASK``.

    Gives workloads cheap data-dependent values for hard-to-predict
    conditional branches without host-side precomputation.
    """
    b.li(t, _LCG_A)
    b.mul(state_reg, state_reg, t)
    b.addi(state_reg, state_reg, _LCG_C)
    b.andi(state_reg, state_reg, _LCG_MASK)


def emit_random_bit(b: ProgramBuilder, out_reg: int, bit: int = 16,
                    state_reg: int = RNG, t: int = T3) -> None:
    """``out = (lcg_step() >> bit) & 1`` — a ~50/50 unpredictable bit."""
    emit_lcg_step(b, state_reg, t)
    b.shri(out_reg, state_reg, bit)
    b.andi(out_reg, out_reg, 1)


def emit_work_loop(b: ProgramBuilder, label: str, iterations_reg: int,
                   body: Optional[Callable[[], None]] = None,
                   counter_reg: int = T2) -> None:
    """Emit a simple counted loop running ``iterations_reg`` times.

    ``body`` emits the loop body (default: one accumulating add).  Used to
    pad handlers with realistic work so the dynamic indirect-jump density
    lands near the paper's 0.5-1.5% of instructions rather than the ~7% a
    bare dispatch loop would have.
    """
    b.li(counter_reg, 0)
    b.label(label)
    if body is not None:
        body()
    else:
        b.addi(20, 20, 1)
    b.addi(counter_reg, counter_reg, 1)
    b.blt(counter_reg, iterations_reg, label)


def emit_operand_pad(b: ProgramBuilder, value_reg: int, n_branches: int,
                     rng: random.Random, acc_reg: int = 20,
                     first_bit: int = 0, bit_modulo: int = 12) -> None:
    """Emit a chain of short conditional branches testing successive bits
    of ``value_reg``, with small filler arms.

    This is the padding style that keeps the *global pattern history*
    informative: each branch outcome is a bit of the handler's operand
    (deterministic for a given script position / AST node / decoded
    instruction), so the last-9-outcomes history register identifies the
    recent dynamic context — the correlation the paper's pattern-history
    target cache exploits.  A single long uniform loop would instead flood
    the history window with taken bits and carry no information.
    """
    for j in range(n_branches):
        bit = (first_bit + j) % bit_modulo
        b.shri(T3, value_reg, bit)
        b.andi(T3, T3, 1)
        skip = b.unique_label("pad_skip")
        b.beq(T3, 0, skip)
        b.addi(acc_reg, acc_reg, rng.randint(1, 9))
        if rng.random() < 0.5:
            b.xori(acc_reg, acc_reg, rng.randint(1, 63))
        b.label(skip)
        b.andi(acc_reg, acc_reg, 0xFFFFF)
        if rng.random() < 0.4:
            b.shri(T3, acc_reg, 2)


def handler_labels(stem: str, count: int) -> List[str]:
    """Names for ``count`` dispatch handlers."""
    return [f"{stem}_{i}" for i in range(count)]


# ----------------------------------------------------------------------
# Host-side data generation
# ----------------------------------------------------------------------

def zipf_weights(k: int, s: float = 1.0, normalize: bool = False) -> List[float]:
    """Zipf-like weights for ``k`` categories (rank-frequency ~ 1/rank^s).

    With ``normalize=True`` the weights are scaled to sum to 1, making
    them directly usable as a probability distribution (e.g. as switch
    case weights for the ``clustered`` lowering's hot-mass threshold).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    weights = [1.0 / (rank ** s) for rank in range(1, k + 1)]
    if normalize:
        total = sum(weights)
        weights = [w / total for w in weights]
    return weights


def weighted_sequence(rng: random.Random, n: int, weights: Sequence[float]) -> List[int]:
    """Draw ``n`` i.i.d. category indices with the given weights."""
    categories = list(range(len(weights)))
    return rng.choices(categories, weights=weights, k=n)


def markov_sequence(rng: random.Random, n: int, k: int,
                    self_bias: float = 0.0,
                    weights: Optional[Sequence[float]] = None) -> List[int]:
    """Draw a category sequence with tunable self-transition probability.

    ``self_bias`` is the probability of repeating the previous category; the
    complement is drawn from ``weights`` (uniform by default).  The expected
    fraction of *changed* consecutive categories calibrates the last-target
    (BTB) misprediction rate of a dispatch driven by the sequence.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    base = list(weights) if weights is not None else [1.0] * k
    categories = list(range(k))
    sequence: List[int] = []
    previous = rng.choices(categories, weights=base, k=1)[0]
    for _ in range(n):
        if sequence and rng.random() < self_bias:
            value = previous
        else:
            value = rng.choices(categories, weights=base, k=1)[0]
        sequence.append(value)
        previous = value
    return sequence


def transition_fraction(sequence: Sequence[int]) -> float:
    """Fraction of consecutive pairs that differ (calibration aid)."""
    if len(sequence) < 2:
        return 0.0
    changes = sum(1 for a, b in zip(sequence, sequence[1:]) if a != b)
    return changes / (len(sequence) - 1)


def pad_handler(b: ProgramBuilder, rng: random.Random, min_ops: int,
                max_ops: int, acc_reg: int = 20) -> None:
    """Emit a random-length straight-line body of mixed ALU work.

    Randomising the length makes handler start addresses differ in their
    low bits, which the paper's Table 5 path-history experiments rely on
    (low target-address bits must carry information).
    """
    ops = rng.randint(min_ops, max_ops)
    for _ in range(ops):
        choice = rng.randrange(6)
        if choice == 0:
            b.addi(acc_reg, acc_reg, rng.randint(1, 7))
        elif choice == 1:
            b.xori(acc_reg, acc_reg, rng.randint(1, 255))
        elif choice == 2:
            b.shli(T3, acc_reg, rng.randint(1, 3))
        elif choice == 3:
            b.andi(acc_reg, acc_reg, 0xFFFFF)
        elif choice == 4:
            b.add(acc_reg, acc_reg, T3)
        else:
            b.shri(T3, acc_reg, rng.randint(1, 4))


def word_offset(index: int) -> int:
    """Byte offset of the ``index``-th word of a guest table."""
    return index * INSTRUCTION_BYTES
