"""perl-like workload: a bytecode interpreter re-processing a looping script.

The paper explains why perl is the flagship target-cache case (§4.2.3):

    "The main loop of the interpreter parses the perl script to be executed.
    This parser consists of a set of indirect jumps whose targets are
    decided by the tokens which make up the current line of the perl script.
    The perl script used for our simulations contains a loop that executes
    for many iterations.  As a result ... the interpreter will process the
    same sequence of tokens for many iterations.  By capturing the path
    history in this situation, the target cache is able to accurately
    predict the targets of the indirect jumps which process these tokens."

This guest program is exactly that: a dispatch loop interpreting a token
script.  The script itself loops, and contains a handful of *conditional*
script-level jumps (taken on a guest-random bit) so the token stream is
strongly but not perfectly periodic — matching the paper's perl numbers
(path history helps enormously but does not reach zero mispredictions).

Calibration targets (from the paper):

* BTB indirect misprediction rate ~76% (Table 1): token types are drawn
  i.i.d. zipf-ish, so consecutive dispatch targets rarely repeat;
* few static indirect jumps (§4.2.1: "the perl benchmark executes only a
  few static indirect jumps", which is why GAg(9) beats GAs(8,1) on perl):
  this program has 2 — the main token dispatch and a binop sub-dispatch;
* Figure 6 histogram: the dominant static jump has ~20+ distinct targets;
* indirect jumps ~1% of dynamic instructions (paper: 0.6%): handlers carry
  real work (helper calls, small data loops, loads/stores).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import GuestProgram
from repro.workloads import support
from repro.workloads.support import RNG, T0, T1, T2, T3

# Main-loop register assignments
IP = 10          # script instruction pointer (token index)
SCRIPT_LEN = 11  # script length
TOK = 14         # current token
OPER = 15        # operand for the current script position
ACC = 20         # interpreter accumulator
STACKP = 21      # interpreter data-stack pointer
ITERS = 22       # completed outer iterations


@dataclass(frozen=True)
class PerlParams:
    """Tunable knobs; defaults reproduce the paper-calibrated behaviour."""

    seed: int = 1997
    token_types: int = 22
    script_length: int = 56
    #: number of conditional script-level jump sites (token JZ): these make
    #: the token stream aperiodic so history prediction is good, not perfect
    branch_tokens: int = 2
    #: zipf skew of the token distribution; the strong skew (real
    #: interpreters execute a few opcodes overwhelmingly often) also makes
    #: the 2-bit BTB update strategy profitable on perl, as in Table 2:
    #: hysteresis protects the dominant token's handler from transients
    zipf_s: float = 1.1
    #: probability that a script position repeats the previous token;
    #: calibrates the BTB (last-target) misprediction rate to the paper's
    #: ~76% — i.i.d. draws would overshoot to ~89%
    token_self_bias: float = 0.04
    #: operand values per script position (drives repeatable conditionals)
    operand_range: int = 1000
    #: iterations of padding work loops inside the heavier handlers;
    #: calibrates indirect-jump density toward the paper's ~0.6-1%
    work_iterations: int = 16


def build(params: PerlParams = PerlParams(),
          lowering: Optional[str] = None) -> GuestProgram:
    """Assemble the interpreter and its script; returns the guest program.

    ``lowering`` picks the dispatch control-flow shape (see
    :mod:`repro.guest.lowering`); ``None`` is the classic jump table.
    """
    rng = random.Random(params.seed)
    k = params.token_types
    length = params.script_length

    # ------------------------------------------------------------------
    # Script generation (host side).  Tokens are i.i.d. zipf-ish draws; a
    # few positions are rewritten into JZ tokens (token id k) whose operand
    # is a backward/forward jump destination inside the script.
    # ------------------------------------------------------------------
    weights = support.zipf_weights(k, params.zipf_s)
    tokens = support.markov_sequence(
        rng, length, k, self_bias=params.token_self_bias, weights=weights
    )
    operands = [rng.randrange(params.operand_range) for _ in range(length)]
    jz_token = k  # one extra token id for the script-level conditional jump
    branch_positions = rng.sample(range(4, length - 4), params.branch_tokens)
    for position in branch_positions:
        tokens[position] = jz_token
        # jump destination: somewhere else in the script (word index)
        operands[position] = rng.randrange(length)

    b = ProgramBuilder(lowering=lowering)
    b.jmp("main")

    # ------------------------------------------------------------------
    # Helper: a "string scan" routine — a short loop whose trip count
    # depends on the accumulator, giving call/ret traffic and mildly
    # unpredictable loop exits.
    # ------------------------------------------------------------------
    b.label("helper_scan")
    b.andi(T2, ACC, 7)
    b.addi(T2, T2, 3)          # 3..10 iterations
    b.li(T3, 0)
    b.label("helper_scan_loop")
    b.addi(ACC, ACC, 1)
    b.xori(ACC, ACC, 0x15)
    b.addi(T3, T3, 1)
    b.blt(T3, T2, "helper_scan_loop")
    b.ret()

    # Helper: hash-and-store into a scratch table (memory traffic).
    scratch = b.data_zeros(64)
    b.label("helper_store")
    b.andi(T2, ACC, 63)
    b.shli(T2, T2, 2)
    b.li(T3, scratch)
    b.add(T2, T2, T3)
    b.store(ACC, T2)
    b.load(T3, T2)
    b.add(ACC, ACC, T3)
    b.ret()

    # ------------------------------------------------------------------
    # Data segment: dispatch table, script, operands, a value stack.
    # ------------------------------------------------------------------
    handler_names = support.handler_labels("tok", k) + ["tok_jz"]
    dispatch_table = b.switch_table(handler_names)
    script_base = b.data_table(tokens)
    operand_base = b.data_table(operands)
    stack_base = b.data_zeros(256)

    # Secondary dispatch: the "binop" handler switches on an operator id.
    binop_names = support.handler_labels("binop", 5)
    binop_table = b.switch_table(binop_names)

    # Spec-derived case frequencies for density-based lowerings: the zipf
    # token profile plus the JZ token's expected script share.  Derived
    # from the params only — never from the realised random script.
    token_weights = support.zipf_weights(k, params.zipf_s, normalize=True)
    token_weights.append(params.branch_tokens / params.script_length)

    # ------------------------------------------------------------------
    # Main interpreter loop.
    # ------------------------------------------------------------------
    b.label("main")
    b.li(IP, 0)
    b.li(SCRIPT_LEN, length)
    b.li(ACC, 1)
    b.li(STACKP, stack_base)
    b.li(RNG, params.seed & 0xFFFF)
    b.label("loop")
    # TOK = script[IP]; OPER = operands[IP]
    b.shli(T0, IP, 2)
    b.li(T1, script_base)
    b.add(T1, T1, T0)
    b.load(TOK, T1)
    b.li(T1, operand_base)
    b.add(T1, T1, T0)
    b.load(OPER, T1)
    b.switch(TOK, dispatch_table, weights=token_weights, stem="tok_sw")

    # ------------------------------------------------------------------
    # Token handlers.  Variable-length bodies (pad_handler) keep target
    # addresses informative in their low bits.
    # ------------------------------------------------------------------
    work = params.work_iterations
    pad_units = max(2, work // 3)
    for i in range(k):
        b.label(f"tok_{i}")
        support.pad_handler(b, rng, 1, 6)
        flavour = i % 6
        if flavour == 0:
            # arithmetic on the operand, with a position-deterministic branch
            b.li(T2, params.operand_range // 2)
            skip = b.unique_label("arith_skip")
            b.blt(OPER, T2, skip)
            b.add(ACC, ACC, OPER)
            b.xori(ACC, ACC, 0x33)
            b.label(skip)
            b.addi(ACC, ACC, i)
            support.emit_operand_pad(b, OPER, pad_units, rng, first_bit=i % 4)
            # branches on the evolving accumulator: their outcomes are
            # noise in the pattern history (real handlers branch on
            # run-time values too), which is why path history ends up the
            # better signal for perl, as the paper finds
            support.emit_operand_pad(b, ACC, 2, rng, first_bit=(i + 3) % 8)
            b.li(T3, 2 + (i % 3))
            support.emit_work_loop(b, b.unique_label(f"tok{i}_work"), T3)
        elif flavour == 1:
            # push/pop on the interpreter value stack
            b.store(ACC, STACKP)
            b.addi(STACKP, STACKP, 4)
            b.andi(T2, ACC, 0xFF)
            b.addi(STACKP, STACKP, -4)
            b.load(T3, STACKP)
            b.add(ACC, ACC, T3)
            support.emit_operand_pad(b, OPER, pad_units, rng, first_bit=i % 4)
            b.li(T3, 2 + (i % 3))
            support.emit_work_loop(b, b.unique_label(f"tok{i}_work"), T3)
        elif flavour == 2:
            # binop: secondary dispatch on operator id (static ind jump #2)
            support.emit_operand_pad(b, OPER, pad_units - 1, rng, first_bit=i % 4)
            b.li(T2, 5)
            b.mod(T3, OPER, T2)
            b.switch(T3, binop_table, t_addr=T0, t_handler=T1, stem="binop_sw")
        elif flavour == 3:
            # helper call + padded work loop
            b.call("helper_scan")
            support.emit_operand_pad(b, OPER, pad_units + 1, rng, first_bit=i % 4)
            support.emit_operand_pad(b, ACC, 2, rng, first_bit=(i + 5) % 8)
        elif flavour == 4:
            # memory-heavy handler
            b.call("helper_store")
            support.emit_operand_pad(b, OPER, pad_units + 1, rng, first_bit=i % 4)
        else:
            # floating-point flavoured handler
            b.fadd(25, 25, 26)
            b.fmul(26, 26, 25)
            support.emit_operand_pad(b, OPER, pad_units + 2, rng, first_bit=i % 4)
        b.jmp("cont")

    # binop sub-handlers
    for i, name in enumerate(binop_names):
        b.label(name)
        support.pad_handler(b, rng, 1, 4)
        if i % 2 == 0:
            b.add(ACC, ACC, OPER)
        else:
            b.sub(ACC, ACC, OPER)
        b.jmp("cont")

    # JZ handler: on a guest-random bit, redirect the script ip.
    b.label("tok_jz")
    support.emit_random_bit(b, T2, bit=13)
    b.beq(T2, 0, "cont")
    b.mov(IP, OPER)
    b.jmp("loop_from_jump")

    # ------------------------------------------------------------------
    # Loop continuation: advance ip, wrap at end of script.
    # ------------------------------------------------------------------
    b.label("cont")
    b.addi(IP, IP, 1)
    b.label("loop_from_jump")
    b.blt(IP, SCRIPT_LEN, "loop")
    b.li(IP, 0)
    b.addi(ITERS, ITERS, 1)
    b.jmp("loop")

    return b.build(entry="main")
