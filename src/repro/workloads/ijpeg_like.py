"""ijpeg-like workload: block transforms with a skewed coefficient dispatch.

ijpeg (JPEG compression) alternates dense arithmetic kernels (DCT,
quantisation — multiply/add heavy) with entropy coding whose dispatch is
dominated by the zero/small-coefficient case.  Indirect jumps are rare and
skewed, so the BTB is wrong only ~11% of the time (paper Table 1): like
compress, ijpeg bounds how little a target cache can matter.

Structure: a set of 8x8 coefficient blocks generated host-side with a
heavy-tailed magnitude distribution; per block, a row-transform loop
(MUL/FADD work), per-row quantisation with saturation conditionals, and
one dispatch per row on the row's energy class (4 classes, ~93/4/2/1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import GuestProgram
from repro.workloads import support
from repro.workloads.support import T0, T1, T2, T3

BLOCK_DIM = 8

# Guest registers
BLK = 10     # block index
ROW = 11     # row index
COL = 12     # column index
COEF = 13    # current coefficient
SUM = 14     # row accumulator
CLASSR = 15  # row energy class
ACC = 20
FACC = 25    # floating accumulator


@dataclass(frozen=True)
class IjpegParams:
    seed: int = 1997
    n_blocks: int = 10
    #: fraction of rows whose energy lands in class 0 (zero-ish rows);
    #: calibrates the ~11% BTB rate via the class thresholds below
    p_zero_row: float = 0.95
    quant_threshold: int = 40
    saturate_limit: int = 200


def _generate_blocks(rng: random.Random, params: IjpegParams) -> List[int]:
    """Coefficient data: most rows near-zero, a few energetic ones."""
    words: List[int] = []
    for _ in range(params.n_blocks):
        for _row in range(BLOCK_DIM):
            energetic = rng.random() > params.p_zero_row
            for _col in range(BLOCK_DIM):
                if energetic:
                    words.append(rng.randrange(30, 255))
                else:
                    # mostly zeros with occasional small values
                    words.append(0 if rng.random() < 0.8 else rng.randrange(1, 6))
    return words


def build(params: IjpegParams = IjpegParams(),
          lowering: Optional[str] = None) -> GuestProgram:
    rng = random.Random(params.seed)
    b = ProgramBuilder(lowering=lowering)
    b.jmp("main")

    blocks_base = b.data_table(_generate_blocks(rng, params))
    output_base = b.data_zeros(params.n_blocks * BLOCK_DIM)
    class_names = ["enc_zero", "enc_small", "enc_mid", "enc_large"]
    class_table = b.switch_table(class_names)
    block_words = BLOCK_DIM * BLOCK_DIM

    b.label("main")
    b.li(ACC, 1)
    b.li(BLK, 0)

    b.label("block_loop")
    b.li(ROW, 0)
    b.label("row_loop")
    # ---- row transform: load 8 coefficients, accumulate products -------
    b.li(SUM, 0)
    b.li(COL, 0)
    b.label("col_loop")
    # addr = blocks_base + ((BLK*64 + ROW*8 + COL) * 4)
    b.li(T0, block_words)
    b.mul(T0, BLK, T0)
    b.shli(T1, ROW, 3)
    b.add(T0, T0, T1)
    b.add(T0, T0, COL)
    b.shli(T0, T0, 2)
    b.addi(T0, T0, blocks_base)
    b.load(COEF, T0)
    # butterfly-ish arithmetic: integer multiply + float accumulate
    b.addi(T1, COL, 3)
    b.mul(T2, COEF, T1)
    b.add(SUM, SUM, T2)
    b.fadd(FACC, FACC, COEF)
    b.fmul(FACC, FACC, 26)
    # quantisation with saturation (conditional on data)
    b.li(T1, params.saturate_limit)
    nosat = b.unique_label("nosat")
    b.blt(COEF, T1, nosat)
    b.li(COEF, params.saturate_limit)
    b.addi(ACC, ACC, 1)
    b.label(nosat)
    b.addi(COL, COL, 1)
    b.li(T3, BLOCK_DIM)
    b.blt(COL, T3, "col_loop")
    # ---- classify row energy and dispatch the encoder ------------------
    b.shri(SUM, SUM, 3)           # scale the accumulated energy
    b.li(CLASSR, 0)
    b.li(T1, params.quant_threshold)
    enc = b.unique_label("enc_go")
    b.blt(SUM, T1, enc)
    b.li(CLASSR, 1)
    b.li(T1, params.quant_threshold * 20)
    b.blt(SUM, T1, enc)
    b.li(CLASSR, 2)
    b.li(T1, params.quant_threshold * 40)
    b.blt(SUM, T1, enc)
    b.li(CLASSR, 3)
    b.label(enc)
    b.switch(CLASSR, class_table, stem="enc_sw")

    for i, name in enumerate(class_names):
        b.label(name)
        support.pad_handler(b, rng, 1, 4, acc_reg=ACC)
        if i == 0:
            # zero row: run-length increment only
            b.addi(ACC, ACC, 1)
        else:
            # emit Huffman-ish bits proportional to the class
            b.li(T3, 2 * i + 1)
            support.emit_work_loop(
                b, b.unique_label(f"enc_bits_{i}"), T3, counter_reg=T2
            )
            b.shli(ACC, ACC, 1)
            b.xori(ACC, ACC, i)
            b.andi(ACC, ACC, 0xFFFFF)
        b.jmp("row_done")

    b.label("row_done")
    # store the row summary
    b.shli(T0, ROW, 2)
    b.addi(T0, T0, output_base)
    b.store(SUM, T0)
    b.addi(ROW, ROW, 1)
    b.li(T3, BLOCK_DIM)
    b.blt(ROW, T3, "row_loop")
    b.addi(BLK, BLK, 1)
    b.li(T3, params.n_blocks)
    b.blt(BLK, T3, "block_loop")
    b.li(BLK, 0)
    b.jmp("block_loop")

    return b.build(entry="main")
