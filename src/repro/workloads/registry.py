"""Workload registry: name -> builder, with trace caching.

Workload names match the paper's benchmark names so experiment tables read
like the paper's.  Each entry records the paper statistics the workload was
calibrated against (Table 1 BTB indirect misprediction rate and the Figures
1-8 histogram character) — see each workload module's docstring for how the
calibration is achieved.
"""

from __future__ import annotations

import hashlib
import importlib
from dataclasses import dataclass
from functools import lru_cache
from types import ModuleType
from typing import Any, Dict, List, Optional

from repro.guest.isa import GuestProgram
from repro.guest.lowering import lowering_names
from repro.guest.vm import run_program
from repro.trace.io import cached_trace
from repro.trace.trace import Trace


@dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry for one synthetic benchmark."""

    name: str
    module: str
    params_class: str
    build_function: str
    description: str
    #: BTB indirect-jump misprediction rate the paper reports (Table 1);
    #: the synthetic workload is calibrated to land near this.
    paper_btb_mispred: float
    #: Qualitative Figures 1-8 shape: "many" = most jumps have 10+ targets,
    #: "few" = dominated by jumps with <= a handful of targets.
    paper_target_shape: str

    def _module(self) -> ModuleType:
        return importlib.import_module(self.module)

    def default_params(self, seed: Optional[int] = None) -> Any:
        params_cls = getattr(self._module(), self.params_class)
        if seed is None:
            return params_cls()
        return params_cls(seed=seed)

    def build(self, params: Any = None, seed: Optional[int] = None,
              lowering: Optional[str] = None) -> GuestProgram:
        module = self._module()
        if params is None:
            params = self.default_params(seed)
        return getattr(module, self.build_function)(params, lowering=lowering)


WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        WorkloadSpec(
            name="compress",
            module="repro.workloads.compress_like",
            params_class="CompressParams",
            build_function="build",
            description="LZW-style compressor: hash probes, bit packing, "
                        "one heavily skewed dispatch",
            paper_btb_mispred=0.144,
            paper_target_shape="few",
        ),
        WorkloadSpec(
            name="gcc",
            module="repro.workloads.gcc_like",
            params_class="GccParams",
            build_function="build",
            description="compiler passes walking ASTs through many static "
                        "switch statements",
            paper_btb_mispred=0.660,
            paper_target_shape="many",
        ),
        WorkloadSpec(
            name="go",
            module="repro.workloads.go_like",
            params_class="GoParams",
            build_function="build",
            description="board scanner with data-dependent pattern dispatch "
                        "and hard-to-predict conditionals",
            paper_btb_mispred=0.376,
            paper_target_shape="few",
        ),
        WorkloadSpec(
            name="ijpeg",
            module="repro.workloads.ijpeg_like",
            params_class="IjpegParams",
            build_function="build",
            description="DCT-style block transforms with a skewed "
                        "coefficient-class dispatch",
            paper_btb_mispred=0.113,
            paper_target_shape="few",
        ),
        WorkloadSpec(
            name="m88ksim",
            module="repro.workloads.m88ksim_like",
            params_class="M88ksimParams",
            build_function="build",
            description="CPU simulator decoding a looping toy-processor "
                        "program through an opcode switch",
            paper_btb_mispred=0.373,
            paper_target_shape="moderate",
        ),
        WorkloadSpec(
            name="perl",
            module="repro.workloads.perl_like",
            params_class="PerlParams",
            build_function="build",
            description="bytecode interpreter re-processing a looping token "
                        "script (the paper's flagship path-history case)",
            paper_btb_mispred=0.762,
            paper_target_shape="many",
        ),
        WorkloadSpec(
            name="vortex",
            module="repro.workloads.vortex_like",
            params_class="VortexParams",
            build_function="build",
            description="OO-database method calls through per-class function "
                        "tables, receivers in homogeneous runs",
            paper_btb_mispred=0.083,
            paper_target_shape="few",
        ),
        WorkloadSpec(
            name="xlisp",
            module="repro.workloads.xlisp_like",
            params_class="XlispParams",
            build_function="build",
            description="tag-dispatched expression evaluator with a "
                        "mark-sweep-style heap scan",
            paper_btb_mispred=0.207,
            paper_target_shape="few",
        ),
    ]
}


#: The paper's §5 future work: C++-style object-oriented workloads with
#: virtual dispatch.  Kept in a separate registry so the SPECint95 tables
#: stay exactly eight rows; ``repro.experiments.oo_future_work`` uses them.
OO_WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        WorkloadSpec(
            name="richards",
            module="repro.workloads.richards_like",
            params_class="RichardsParams",
            build_function="build",
            description="OS-simulation kernel: a scheduler dispatching "
                        "polymorphic task run methods",
            paper_btb_mispred=0.50,  # no paper number; expectation only
            paper_target_shape="moderate",
        ),
        WorkloadSpec(
            name="deltablue",
            module="repro.workloads.deltablue_like",
            params_class="DeltablueParams",
            build_function="build",
            description="constraint solver executing plans of virtual "
                        "execute/check methods",
            paper_btb_mispred=0.70,  # no paper number; expectation only
            paper_target_shape="many",
        ),
    ]
}

#: Server-scale workloads (ROADMAP open item 2): huge static branch
#: footprints with Zipf-skewed, low per-site reuse that thrash BTB
#: *capacity* rather than stressing target polymorphism.  Kept in their
#: own registry so the SPECint95 tables stay exactly eight rows;
#: ``repro.experiments.server_btb`` sweeps them.  There are no paper
#: numbers for this regime: the recorded rates are measured on the
#: default 400k-instruction traces (baseline ``EngineConfig()``) and pin
#: the generator the way Table 1 pins the SPEC-like family.
SERVER_WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        WorkloadSpec(
            name="webserver_like",
            module="repro.workloads.server_like",
            params_class="WebserverParams",
            build_function="build",
            description="URL-route fan-out: hundreds of handler chains, "
                        "hot head, long cold tail (Zipf s=1.1)",
            paper_btb_mispred=0.418,  # measured, not a paper number
            paper_target_shape="few",
        ),
        WorkloadSpec(
            name="db_like",
            module="repro.workloads.server_like",
            params_class="DbParams",
            build_function="build",
            description="query plans: deeper call chains with 2-way "
                        "polymorphic operator dispatch, flatter skew",
            paper_btb_mispred=0.731,  # measured, not a paper number
            paper_target_shape="moderate",
        ),
        WorkloadSpec(
            name="rpc_like",
            module="repro.workloads.server_like",
            params_class="RpcParams",
            build_function="build",
            description="microservice stubs: very many tiny methods, "
                        "near-uniform traffic, lowest per-site reuse",
            paper_btb_mispred=0.739,  # measured, not a paper number
            paper_target_shape="few",
        ),
    ]
}

#: Combined lookup used by get_trace / build_program.
_ALL_WORKLOADS: Dict[str, WorkloadSpec] = {
    **WORKLOADS, **OO_WORKLOADS, **SERVER_WORKLOADS,
}


def parse_workload_name(name: str) -> "tuple[str, Optional[str]]":
    """Split a composite benchmark name into (base, lowering).

    ``"perl"`` -> ``("perl", None)``; ``"perl@if_tree"`` ->
    ``("perl", "if_tree")``.  The explicit ``@jump_table`` spelling
    canonicalises to ``None`` — it *is* the default shape, and collapsing
    it keeps the trace/result caches from holding duplicate entries for
    one identical trace.  Unknown lowerings raise ``KeyError``.
    """
    base, sep, lowering = name.partition("@")
    if not sep:
        return base, None
    if lowering not in lowering_names():
        raise KeyError(
            f"unknown lowering {lowering!r} in workload name {name!r}; "
            f"available: {', '.join(lowering_names())}"
        )
    if lowering == "jump_table":
        return base, None
    return base, lowering


def _resolve(name: str,
             lowering: Optional[str] = None) -> "tuple[WorkloadSpec, str, Optional[str]]":
    """Resolve a (possibly composite) name plus an explicit lowering knob.

    Returns ``(spec, base_name, effective_lowering)``.  A lowering given
    both in the name and as a keyword must agree.
    """
    base, name_lowering = parse_workload_name(name)
    if lowering is not None and lowering == "jump_table":
        lowering = None
    if name_lowering is not None and lowering is not None \
            and name_lowering != lowering:
        raise ValueError(
            f"conflicting lowerings: name {name!r} vs lowering={lowering!r}"
        )
    effective = name_lowering if name_lowering is not None else lowering
    if base not in _ALL_WORKLOADS:
        raise KeyError(
            f"unknown workload {base!r}; available: "
            f"{', '.join(workload_names(include_oo=True, include_server=True))}"
        )
    return _ALL_WORKLOADS[base], base, effective


def workload_names(include_oo: bool = False,
                   include_server: bool = False) -> List[str]:
    names = sorted(WORKLOADS)
    if include_oo:
        names += sorted(OO_WORKLOADS)
    if include_server:
        names += sorted(SERVER_WORKLOADS)
    return names


def workload_spec(name: str) -> WorkloadSpec:
    """Registry entry for one workload (SPECint-alike, OO, or server).

    Accepts composite ``name@lowering`` benchmark names; the entry is the
    base workload's.
    """
    spec, _, _ = _resolve(name)
    return spec


def build_program(name: str, seed: Optional[int] = None,
                  lowering: Optional[str] = None) -> GuestProgram:
    """Assemble the named workload's guest program.

    The dispatch control-flow shape comes from the ``lowering`` knob or a
    composite ``name@lowering`` benchmark name (they must agree if both
    are given); ``None`` is the classic jump table.
    """
    spec, _, effective = _resolve(name, lowering)
    return spec.build(seed=seed, lowering=effective)


def get_trace(name: str, n_instructions: int = 400_000, seed: int = 1997,
              use_cache: bool = True, lowering: Optional[str] = None) -> Trace:
    """Return a validated trace of the named workload.

    Traces are cached on disk (see :func:`repro.trace.io.cached_trace`)
    keyed by (name, length, seed, lowering); pass ``use_cache=False`` to
    force regeneration.  ``name`` may be composite (``perl@if_tree``).
    """
    spec, _, effective = _resolve(name, lowering)

    def generate() -> Trace:
        program = spec.build(seed=seed, lowering=effective)
        trace = Trace.from_raw(run_program(program, max_instructions=n_instructions))
        trace.validate()
        return trace

    if not use_cache:
        return generate()
    return cached_trace(
        trace_fingerprint(name, n_instructions, seed, lowering), generate
    )


def trace_fingerprint(name: str, n_instructions: int = 400_000,
                      seed: int = 1997,
                      lowering: Optional[str] = None) -> str:
    """Stable, filesystem-safe identity of :func:`get_trace`'s result.

    Covers everything that determines the trace content: workload name,
    switch lowering, length, generator seed, and a hash of the generator
    sources (workload module, shared emitters, VM, builder, lowerings).
    Used as the trace-cache key and as the trace component of the sweep
    runner's result-cache keys — distinct lowerings therefore can never
    alias in either cache.
    """
    spec, base, effective = _resolve(name, lowering)
    fingerprint = _code_fingerprint(spec.module)
    stem = base if effective is None else f"{base}@{effective}"
    return f"{stem}_n{n_instructions}_s{seed}_{fingerprint}"


@lru_cache(maxsize=None)
def _code_fingerprint(module_name: str) -> str:
    """Short hash of the sources that determine a workload's trace.

    Included in the cache key so editing a workload (or the shared
    emitters / VM) invalidates stale cached traces automatically.
    """
    digest = hashlib.md5()
    for mod in (module_name, "repro.workloads.support", "repro.guest.vm",
                "repro.guest.builder", "repro.guest.lowering"):
        module = importlib.import_module(mod)
        with open(module.__file__, "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()[:10]
