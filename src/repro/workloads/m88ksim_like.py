"""m88ksim-like workload: a CPU simulator simulating a toy processor.

m88ksim (a Motorola 88100 simulator) spends its time in a fetch / decode /
execute loop whose decode step is a switch over opcodes — a single hot
static indirect jump whose target stream follows the *simulated* program's
instruction sequence.  Because simulated programs are loops, the opcode
stream repeats and history-based prediction works well, but consecutive
opcodes repeat often enough that a plain BTB is wrong only ~37% of the time
(paper Table 1: 37.3%).

This guest program is that loop: a toy 16-opcode ISA, a toy program
(checksum over an array, with inner loops and toy branches) encoded into
guest memory host-side, and a decode switch with one handler per opcode.
The toy program is written so consecutive dynamic opcodes repeat ~60% of
the time (runs of ADDs, paired LOAD/LOAD), calibrating the BTB rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import GuestProgram
from repro.workloads import support
from repro.workloads.support import T0, T1, T2

# Guest registers
SIMPC = 10    # simulated program counter (word index into toy program)
WORD = 12    # fetched toy instruction word
OPC = 13     # decoded opcode
RD = 14      # decoded destination register number
RS = 15      # decoded source register number
IMM = 16     # decoded immediate
VA = 17      # toy operand value a
VB = 18      # toy operand value b
ACC = 20     # host-side accumulator (padding work)

# Toy opcodes
(T_NOP, T_ADD, T_ADDI, T_SUB, T_SHL, T_AND, T_XOR, T_LOAD, T_STORE,
 T_MUL, T_BEQZ, T_BNEZ, T_JMP, T_MOVI) = range(14)
N_TOY_OPS = 14


def _enc(op: int, rd: int = 0, rs: int = 0, imm: int = 0) -> int:
    """Encode one toy instruction into a 32-bit-ish word."""
    return (op << 24) | ((rd & 0xFF) << 16) | ((rs & 0xFF) << 8) | (imm & 0xFF)


def _toy_program(rng: random.Random, array_len: int) -> List[int]:
    """The simulated guest-guest program: checksum an array in a loop.

    Toy registers: 0 = zero-ish scratch, 1 = index, 2 = limit, 3 = element,
    4 = checksum, 5 = inner counter, 6 = scratch, 7 = bit buffer.
    The toy array lives at toy-memory words [32, 32+array_len).
    """
    program: List[int] = []
    program.append(_enc(T_MOVI, 1, 0, 0))            # i = 0
    program.append(_enc(T_MOVI, 2, 0, array_len))    # limit
    program.append(_enc(T_MOVI, 4, 0, 1))            # checksum = 1
    loop_top = len(program)
    # The loop body is written with long same-opcode runs (unrolled loads,
    # add chains, addi chains) so consecutive dynamic opcodes repeat ~60%
    # of the time — the lever that calibrates the BTB misprediction rate
    # of the decode dispatch to the paper's ~37%.
    program.append(_enc(T_LOAD, 3, 1, 32))           # six-load run
    program.append(_enc(T_LOAD, 6, 1, 33))
    program.append(_enc(T_LOAD, 7, 1, 34))
    program.append(_enc(T_LOAD, 8, 1, 35))
    program.append(_enc(T_LOAD, 10, 1, 36))
    program.append(_enc(T_LOAD, 11, 1, 37))
    program.append(_enc(T_ADD, 4, 3, 0))             # six-add run
    program.append(_enc(T_ADD, 4, 6, 0))
    program.append(_enc(T_ADD, 4, 7, 0))
    program.append(_enc(T_ADD, 4, 8, 0))
    program.append(_enc(T_ADD, 9, 3, 0))
    program.append(_enc(T_ADD, 9, 6, 0))
    program.append(_enc(T_ADD, 9, 10, 0))
    program.append(_enc(T_ADD, 4, 11, 0))
    program.append(_enc(T_XOR, 4, 9, 0))             # three-xor run
    program.append(_enc(T_XOR, 9, 3, 0))
    program.append(_enc(T_XOR, 9, 11, 0))
    program.append(_enc(T_SHL, 9, 9, 1))             # two-shift run
    program.append(_enc(T_SHL, 4, 4, 1))
    program.append(_enc(T_MUL, 4, 3, 0))
    program.append(_enc(T_ADDI, 5, 5, 1))            # four-addi run
    program.append(_enc(T_ADDI, 5, 5, 2))
    program.append(_enc(T_ADDI, 9, 9, 3))
    program.append(_enc(T_ADDI, 9, 9, 1))
    program.append(_enc(T_AND, 6, 3, 3))
    # occasionally-taken data-dependent toy branch
    skip = len(program) + 2
    program.append(_enc(T_BEQZ, 0, 6, skip))
    program.append(_enc(T_SUB, 4, 6, 0))
    program.append(_enc(T_STORE, 4, 1, 96))          # four-store run
    program.append(_enc(T_STORE, 9, 1, 97))
    program.append(_enc(T_STORE, 5, 1, 98))
    program.append(_enc(T_STORE, 10, 1, 99))
    # advance and loop.  Toy SUB computes rd = rd - rs, so build
    # r6 = limit - i in two steps (r6 = limit, then r6 -= i); getting this
    # wrong would let i run away and the r1-indexed stores would trample
    # the toy program itself.
    program.append(_enc(T_ADDI, 1, 1, 1))
    program.append(_enc(T_AND, 6, 2, 0))             # r6 = limit & 0xFF
    program.append(_enc(T_SUB, 6, 1, 0))             # r6 -= i
    program.append(_enc(T_BNEZ, 0, 6, loop_top))
    program.append(_enc(T_MOVI, 1, 0, 0))            # reset index
    program.append(_enc(T_JMP, 0, 0, loop_top))      # restart forever
    return program


@dataclass(frozen=True)
class M88ksimParams:
    seed: int = 1997
    toy_array_len: int = 24
    #: bits of the decoded fields tested per instruction; 3 keeps the
    #: 9-bit pattern-history window spanning ~2.5 simulated instructions,
    #: enough context to identify the simulated pc
    accounting_iterations: int = 3


def build(params: M88ksimParams = M88ksimParams(),
          lowering: Optional[str] = None) -> GuestProgram:
    rng = random.Random(params.seed)
    b = ProgramBuilder(lowering=lowering)
    b.jmp("main")

    # ------------------------------------------------------------------
    # Toy machine state in guest memory: 16 toy registers, then toy memory
    # (the toy array at toy words 32.., results at 96..).
    # ------------------------------------------------------------------
    toy_regs = b.data_zeros(16)
    toy_mem = b.data_zeros(160)
    program_words = _toy_program(rng, params.toy_array_len)
    toy_prog = b.data_table(program_words)
    handlers = support.handler_labels("op", N_TOY_OPS)
    dispatch_table = b.switch_table(handlers)
    # Static opcode frequencies of the (deterministic) toy program: the
    # decode switch's case-density profile for clustering lowerings.
    opcode_weights = [
        float(sum(1 for word in program_words if word >> 24 == op))
        for op in range(N_TOY_OPS)
    ]

    # Fill the toy array host-side (via initialised data).
    for i in range(params.toy_array_len):
        b.data_word(rng.randrange(1, 200), address=toy_mem + (32 + i) * 4)

    def toy_reg_addr(reg_field: int, scratch: int) -> None:
        """scratch = &toy_regs[reg_field] (reg_field is a guest register)."""
        b.shli(scratch, reg_field, 2)
        b.addi(scratch, scratch, toy_regs)

    # ------------------------------------------------------------------
    # Fetch / decode / execute loop.
    # ------------------------------------------------------------------
    b.label("main")
    b.li(SIMPC, 0)
    b.li(ACC, 1)
    b.label("fetch")
    b.shli(T0, SIMPC, 2)
    b.li(T1, toy_prog)
    b.add(T0, T0, T1)
    b.load(WORD, T0)
    # decode fields
    b.shri(OPC, WORD, 24)
    b.andi(OPC, OPC, 0xFF)
    b.shri(RD, WORD, 16)
    b.andi(RD, RD, 0xFF)
    b.shri(RS, WORD, 8)
    b.andi(RS, RS, 0xFF)
    b.andi(IMM, WORD, 0xFF)
    b.addi(SIMPC, SIMPC, 1)  # default: next toy instruction
    b.switch(OPC, dispatch_table, weights=opcode_weights, stem="decode_sw")

    def read_toy(dst: int, reg_field: int) -> None:
        toy_reg_addr(reg_field, T0)
        b.load(dst, T0)

    def write_toy(reg_field: int, src: int) -> None:
        toy_reg_addr(reg_field, T0)
        b.store(src, T0)

    for op, name in enumerate(handlers):
        b.label(name)
        support.pad_handler(b, rng, 0, 3, acc_reg=ACC)
        if op == T_NOP:
            pass
        elif op == T_ADD:
            read_toy(VA, RD)
            read_toy(VB, RS)
            b.add(VA, VA, VB)
            write_toy(RD, VA)
        elif op == T_ADDI:
            read_toy(VA, RD)
            # imm 0xFF means -1 in the toy encoding
            b.li(T2, 0xFF)
            decr = b.unique_label("toy_decr")
            after = b.unique_label("toy_addi_done")
            b.beq(IMM, T2, decr)
            b.add(VA, VA, IMM)
            b.jmp(after)
            b.label(decr)
            b.addi(VA, VA, -1)
            b.label(after)
            write_toy(RD, VA)
        elif op == T_SUB:
            read_toy(VA, RD)
            read_toy(VB, RS)
            b.sub(VA, VA, VB)
            write_toy(RD, VA)
        elif op == T_SHL:
            read_toy(VA, RD)
            b.shli(VA, VA, 1)
            b.andi(VA, VA, 0xFFFF)
            write_toy(RD, VA)
        elif op == T_AND:
            read_toy(VA, RS)
            b.andi(VA, VA, 0xFF)
            write_toy(RD, VA)
        elif op == T_XOR:
            read_toy(VA, RD)
            read_toy(VB, RS)
            b.xor(VA, VA, VB)
            write_toy(RD, VA)
        elif op == T_LOAD:
            read_toy(VA, RS)            # base index register
            b.add(T2, VA, IMM)
            b.shli(T2, T2, 2)
            b.addi(T2, T2, toy_mem)
            b.load(VB, T2)
            write_toy(RD, VB)
        elif op == T_STORE:
            read_toy(VA, RS)
            b.add(T2, VA, IMM)
            b.shli(T2, T2, 2)
            b.addi(T2, T2, toy_mem)
            read_toy(VB, RD)
            b.store(VB, T2)
        elif op == T_MUL:
            read_toy(VA, RD)
            read_toy(VB, RS)
            b.mul(VA, VA, VB)
            b.andi(VA, VA, 0xFFFFF)
            write_toy(RD, VA)
        elif op in (T_BEQZ, T_BNEZ):
            read_toy(VA, RS)
            not_taken = b.unique_label("toy_nt")
            if op == T_BEQZ:
                b.bne(VA, 0, not_taken)
            else:
                b.beq(VA, 0, not_taken)
            b.mov(SIMPC, IMM)           # toy branch target (word index)
            b.label(not_taken)
        elif op == T_JMP:
            b.mov(SIMPC, IMM)
        elif op == T_MOVI:
            write_toy(RD, IMM)
        # per-instruction accounting: branches on bits of the fetched
        # word (deterministic per toy instruction), so the pattern history
        # identifies the simulated pc — plus a short stats loop
        # test the register-field bits: rs (bits 8..11) XOR rd (16..19)
        # differ *within* the toy program's same-opcode runs, so the
        # pattern history can tell run positions apart (the immediate
        # field is often zero and would carry nothing)
        b.shri(T0, WORD, 8)
        b.xor(T0, T0, RD)
        support.emit_operand_pad(b, T0, params.accounting_iterations,
                                 rng, acc_reg=ACC, first_bit=0,
                                 bit_modulo=6)
        # straight-line accounting work (no constant-outcome loop branches,
        # which would only dilute the history window)
        b.addi(ACC, ACC, op)
        b.andi(ACC, ACC, 0xFFFFF)
        b.shri(T2, ACC, 3)
        b.add(ACC, ACC, T2)
        b.xori(ACC, ACC, 0x11)
        b.addi(ACC, ACC, 1)
        b.shri(T2, ACC, 2)
        b.add(ACC, ACC, T2)
        b.jmp("fetch")

    return b.build(entry="main")
