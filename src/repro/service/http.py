"""Minimal HTTP/1.1 plumbing over asyncio streams — stdlib only.

The sweep service speaks plain HTTP+JSON so any client (curl, a browser,
the bundled load generator) can drive it, but the standard library has no
*async* HTTP server — so this module implements the thin slice the
service needs on top of ``asyncio`` streams: request parsing
(request-line, headers, ``Content-Length`` bodies), keep-alive JSON
responses, and chunked transfer encoding for the JSONL progress streams.
Deliberately not a general HTTP implementation: no request trailers, no
chunked *request* bodies, no TLS — the service sits behind loopback or a
real reverse proxy.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Upper bound on request body size (a spec document is a few KB).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Upper bound on the header block.
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class ProtocolError(ValueError):
    """A malformed or oversized HTTP request; the connection is dropped."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive") != "close"

    def json(self) -> Any:
        """Decode the body as JSON (raises ``ValueError`` on bad bytes)."""
        return json.loads(self.body.decode("utf-8"))


def _parse_target(target: str) -> Tuple[str, Dict[str, str]]:
    path, _, query_string = target.partition("?")
    query: Dict[str, str] = {}
    if query_string:
        for pair in query_string.split("&"):
            name, _, value = pair.partition("=")
            if name:
                query[name] = value
    return path, query


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read one request; ``None`` on a cleanly closed connection."""
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed between requests
        raise ProtocolError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("header block too large") from exc
    if len(header_block) > MAX_HEADER_BYTES:
        raise ProtocolError("header block too large")
    lines = header_block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    path, query = _parse_target(target)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise ProtocolError("malformed Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError("request body too large")
        body = await reader.readexactly(length)
    return Request(method=method.upper(), path=path, query=query,
                   headers=headers, body=body)


def write_response(writer: asyncio.StreamWriter, status: int, body: bytes,
                   content_type: str = "application/json",
                   keep_alive: bool = True) -> None:
    """Queue a complete response on ``writer`` (caller drains)."""
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + body)


def json_response(writer: asyncio.StreamWriter, status: int, payload: Any,
                  keep_alive: bool = True) -> None:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    write_response(writer, status, body, keep_alive=keep_alive)


class ChunkedWriter:
    """Chunked transfer encoding for streamed JSONL responses.

    Usage: ``begin()`` once, ``send_json(obj)`` per event (one JSON object
    per line, flushed immediately so clients see progress live), then
    ``finish()`` — after which the connection can keep serving requests.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer

    async def begin(self, status: int = 200,
                    content_type: str = "application/x-ndjson") -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1"))
        await self._writer.drain()

    async def send_json(self, payload: Any) -> None:
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        self._writer.write(data + b"\r\n")
        await self._writer.drain()

    async def finish(self) -> None:
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
