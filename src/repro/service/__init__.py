"""The ``repro serve`` sweep service: async HTTP front end over the pool.

This package turns the batch sweep machinery into a long-running,
shareable service:

* :mod:`~repro.service.http` — the stdlib-asyncio HTTP/1.1 slice
  (request parsing, keep-alive JSON responses, chunked JSONL streams);
* :mod:`~repro.service.scheduler` — :class:`ShardScheduler`, the sharded
  work-stealing cell scheduler with in-flight dedup, result-cache
  short-circuiting, and cross-instance claim files;
* :mod:`~repro.service.server` — :class:`SweepService`, the endpoints
  (``POST /sweeps``, ``GET /sweeps/{id}[/events]``, ``/healthz``,
  ``/stats``);
* :mod:`~repro.service.loadgen` — the ``repro loadgen`` benchmark client.

See ``docs/SERVICE.md`` for the wire format and the multi-instance
sharing story.
"""

from repro.service.scheduler import ShardScheduler
from repro.service.server import DEFAULT_PORT, SweepService, run_service

__all__ = [
    "DEFAULT_PORT",
    "ShardScheduler",
    "SweepService",
    "run_service",
]
