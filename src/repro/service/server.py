"""The ``repro serve`` HTTP server: sweeps as a long-running service.

Endpoints (HTTP+JSON over ``asyncio.start_server``; see
``docs/SERVICE.md`` for the full wire contract):

``POST /sweeps``
    Body is a spec document — byte-for-byte the ``repro sweep --spec``
    file format (:mod:`repro.sweepspec`).  Returns ``202`` with the sweep
    id immediately; cells run asynchronously through the
    :class:`~repro.service.scheduler.ShardScheduler`.
``GET /sweeps/{id}``
    Status and (once done) the result rows — the same misprediction
    rates ``repro sweep`` prints, as JSON.
``GET /sweeps/{id}/events``
    Chunked JSONL progress stream: one line per completed cell, then a
    terminal ``{"event": "done"}`` line.  Safe to connect late (events
    are replayed) and on keep-alive connections.
``GET /healthz``
    Liveness: ``{"ok": true, ...}``.
``GET /stats``
    Scheduler counters (dedup/cache/steal), queue depths, pool mode,
    and job counts — the numbers ``repro loadgen`` reports as rates.

Every request is wrapped in a ``service.request`` obs span and counted
under ``service.http.<status>``, so a run ledger breaks down server
behaviour with ``repro report`` exactly like a batch sweep.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import get_sink
from repro.predictors import PredictionStats, load_plugins
from repro.runner import ResultCache, SweepPool
from repro.service.http import (
    ChunkedWriter,
    ProtocolError,
    Request,
    json_response,
    read_request,
)
from repro.service.scheduler import ShardScheduler
from repro.sweepspec import SpecError, SweepPlan, parse_spec_document

#: Default TCP port ("serve" on a phone keypad starts with 7...).
DEFAULT_PORT = 8797


@dataclass
class SweepJob:
    """One submitted sweep request and its accumulated progress."""

    id: str
    plan: SweepPlan
    status: str = "running"  # running | done | error
    error: Optional[str] = None
    cells_total: int = 0
    cells_done: int = 0
    rows: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    changed: asyncio.Event = field(default_factory=asyncio.Event)

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)
        self.changed.set()

    def summary(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": self.id, "status": self.status,
            "cells": {"total": self.cells_total, "done": self.cells_done},
            "rows": self.rows if self.status == "done" else [],
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


class SweepService:
    """The asyncio HTTP server around one :class:`ShardScheduler`."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 pool: Optional[SweepPool] = None,
                 jobs: Optional[int] = None, shards: Optional[int] = None,
                 trace_length: int = 400_000, seed: int = 1997,
                 use_trace_cache: bool = True, backend: str = "auto",
                 result_cache: Optional[ResultCache] = None,
                 use_result_cache: bool = True) -> None:
        self.host = host
        self.port = port
        self.pool = pool if pool is not None else SweepPool(
            jobs, trace_length=trace_length, seed=seed,
            use_trace_cache=use_trace_cache, backend=backend,
        )
        if result_cache is None and use_result_cache:
            result_cache = ResultCache.from_env()
        # Enough shards to keep every pool worker fed while some shards
        # sit in cache polls or foreign-claim waits.
        self.scheduler = ShardScheduler(
            self.pool,
            shards=shards if shards is not None
            else max(4, 2 * self.pool.workers),
            result_cache=result_cache,
        )
        self._jobs: Dict[str, SweepJob] = {}
        self._job_tasks: "Dict[str, asyncio.Task[None]]" = {}
        self._connections: "set[asyncio.Task[Any]]" = set()
        self._next_job = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._started_monotonic = 0.0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        # Uptime bookkeeping for /healthz; telemetry only (the service
        # package is outside the determinism-lint scope by design: wall
        # time here schedules and reports, it never feeds a result).
        self._started_monotonic = time.monotonic()
        get_sink().event("service.start", host=self.host, port=self.port,
                         shards=self.scheduler.n_shards,
                         pool_mode=self.pool.mode)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # wait_closed() does not wait for in-flight connection handlers;
        # cancel them so shutdown is quiet and bounded.
        for task in list(self._connections):
            task.cancel()
        for task in list(self._connections):
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._connections.clear()
        for task in self._job_tasks.values():
            task.cancel()
        for task in self._job_tasks.values():
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._job_tasks.clear()
        await self.scheduler.close()
        self.pool.close()
        get_sink().event("service.stop")

    def _uptime_s(self) -> float:
        # Telemetry only (healthz/stats); never feeds a result.
        return max(0.0, time.monotonic() - self._started_monotonic)

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError:
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown; close the socket quietly
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns whether to keep the connection."""
        sink = get_sink()
        status = 500
        with sink.span("service.request", method=request.method,
                       path=request.path):
            try:
                status = await self._route(request, writer)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # one request must not kill the server
                sink.event("service.error", path=request.path,
                           error=str(exc))
                json_response(writer, 500, {"error": str(exc)},
                              keep_alive=request.keep_alive)
                status = 500
        sink.incr(f"service.http.{status}")
        return request.keep_alive

    async def _route(self, request: Request,
                     writer: asyncio.StreamWriter) -> int:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            json_response(writer, 200, {
                "ok": True, "uptime_s": round(self._uptime_s(), 3),
                "pool_mode": self.pool.mode,
            }, keep_alive=request.keep_alive)
            return 200
        if path == "/stats" and method == "GET":
            json_response(writer, 200, self.stats(),
                          keep_alive=request.keep_alive)
            return 200
        if path == "/sweeps" and method == "POST":
            return self._post_sweep(request, writer)
        if path.startswith("/sweeps/"):
            rest = path[len("/sweeps/"):]
            if rest.endswith("/events") and method == "GET":
                return await self._stream_events(
                    rest[:-len("/events")], request, writer
                )
            if method == "GET":
                job = self._jobs.get(rest)
                if job is None:
                    json_response(writer, 404,
                                  {"error": f"unknown sweep {rest!r}"},
                                  keep_alive=request.keep_alive)
                    return 404
                json_response(writer, 200, job.summary(),
                              keep_alive=request.keep_alive)
                return 200
        json_response(
            writer, 404,
            {"error": f"no route for {method} {path}",
             "routes": ["POST /sweeps", "GET /sweeps/{id}",
                        "GET /sweeps/{id}/events", "GET /healthz",
                        "GET /stats"]},
            keep_alive=request.keep_alive,
        )
        return 404

    # ------------------------------------------------------------------
    # Sweep submission and progress.
    # ------------------------------------------------------------------
    def _post_sweep(self, request: Request,
                    writer: asyncio.StreamWriter) -> int:
        try:
            document = request.json()
        except ValueError as exc:
            json_response(writer, 400,
                          {"error": f"request body is not valid JSON: {exc}"},
                          keep_alive=request.keep_alive)
            return 400
        try:
            plan = parse_spec_document(document)
        except SpecError as exc:
            json_response(writer, 400, {"error": str(exc)},
                          keep_alive=request.keep_alive)
            return 400
        load_plugins(list(plan.plugins))
        job = SweepJob(id=f"s{self._next_job:06d}", plan=plan)
        self._next_job += 1
        self._jobs[job.id] = job
        unique = list(dict.fromkeys(plan.cells()))
        job.cells_total = len(unique)
        futures = {
            cell: self.scheduler.submit(cell[0], cell[1])
            for cell in unique
        }
        self._job_tasks[job.id] = asyncio.get_running_loop().create_task(
            self._run_job(job, futures)
        )
        get_sink().event("service.sweep.submitted", job=job.id,
                         rows=len(plan.rows), cells=len(unique))
        json_response(writer, 202, {
            "id": job.id, "status": job.status,
            "rows": len(plan.rows), "cells": len(unique),
            "links": {"result": f"/sweeps/{job.id}",
                      "events": f"/sweeps/{job.id}/events"},
        }, keep_alive=request.keep_alive)
        return 202

    async def _run_job(
        self, job: SweepJob,
        futures: "Dict[Tuple[str, Any], asyncio.Future[PredictionStats]]",
    ) -> None:
        results: Dict[Tuple[str, Any], PredictionStats] = {}
        try:
            for cell, future in futures.items():
                stats = await asyncio.shield(future)
                results[cell] = stats
                job.cells_done += 1
                job.emit({
                    "event": "cell", "benchmark": cell[0],
                    "done": job.cells_done, "total": job.cells_total,
                    "indirect_mispredict_rate":
                        stats.indirect_mispred_rate,
                })
            for row in job.plan.rows:
                stats = results[(row.benchmark, row.config)]
                job.rows.append({
                    "label": row.label, "benchmark": row.benchmark,
                    "indirect": stats.indirect_mispred_rate,
                    "conditional": stats.conditional_mispred_rate,
                    "overall": stats.overall_mispred_rate,
                })
            job.status = "done"
        except asyncio.CancelledError:
            job.status = "error"
            job.error = "server shut down"
            raise
        except Exception as exc:
            job.status = "error"
            job.error = str(exc)
        finally:
            job.emit({"event": "done", "status": job.status,
                      **({"error": job.error} if job.error else {})})
            self._job_tasks.pop(job.id, None)

    async def _stream_events(self, job_id: str, request: Request,
                             writer: asyncio.StreamWriter) -> int:
        job = self._jobs.get(job_id)
        if job is None:
            json_response(writer, 404,
                          {"error": f"unknown sweep {job_id!r}"},
                          keep_alive=request.keep_alive)
            return 404
        stream = ChunkedWriter(writer)
        await stream.begin()
        sent = 0
        while True:
            while sent < len(job.events):
                await stream.send_json(job.events[sent])
                sent += 1
            if job.status != "running":
                break
            job.changed.clear()
            if sent < len(job.events):
                continue
            await job.changed.wait()
        await stream.finish()
        return 200

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        counters = dict(self.scheduler.counters)
        submitted = counters["submitted"]
        saved = counters["dedup"] + counters["cache_hit"]
        jobs_by_status: Dict[str, int] = {}
        for job in self._jobs.values():
            jobs_by_status[job.status] = jobs_by_status.get(job.status, 0) + 1
        return {
            "uptime_s": round(self._uptime_s(), 3),
            "pool": {"mode": self.pool.mode, "workers": self.pool.workers,
                     "backend": self.pool.backend},
            "scheduler": {
                **counters,
                "shards": self.scheduler.n_shards,
                "queue_depths": self.scheduler.queue_depths(),
                "dedup_rate": counters["dedup"] / submitted
                if submitted else 0.0,
                "cache_hit_rate": counters["cache_hit"] / submitted
                if submitted else 0.0,
                "saved_rate": saved / submitted if submitted else 0.0,
            },
            "jobs": {"total": len(self._jobs), **jobs_by_status},
            "params": {"trace_length": self.pool.trace_length,
                       "seed": self.pool.seed},
        }


async def run_service(service: SweepService) -> None:
    """Start ``service`` and block until cancelled (SIGINT/SIGTERM)."""
    await service.start()
    try:
        await service.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await service.close()
