"""``repro loadgen``: an async load generator for the sweep service.

Replays thousands of concurrent spec submissions against a running
``repro serve`` instance and reports what a capacity planner wants to
know: request latency percentiles (p50/p95/p99), sustained throughput,
and how much of the offered work the service *didn't* have to compute —
the in-flight dedup rate and persistent cache hit rate read from
``/stats`` deltas.

The request mix is **Zipf-skewed** over a population of single-row spec
documents built from the paper's Table 4 cells plus the named presets
(seeded ``random.Random``, so a run is reproducible): a few hot specs
dominate, a long tail keeps the cache honest — the shape a shared
service actually sees, and the one that exercises all three savings
levels of the scheduler.

Results are written as ``BENCH_serve.json``; the payload declares its
own ``gate_metrics`` (latency percentiles) and ``info_metrics``
(throughput, hit rates), which ``repro report --compare`` honours, so CI
gates service latency the same way it gates sweep kernel time.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.bench import vector_sweep_configs
from repro.experiments.configs import PRESETS
from repro.obs import get_sink

#: Zipf exponent for the spec popularity distribution: s=1.1 gives the
#: classic few-hot-many-cold shape without starving the tail entirely.
DEFAULT_ZIPF_S = 1.1

DEFAULT_REQUESTS = 1000
DEFAULT_CONCURRENCY = 64

#: How long to keep retrying the initial connection (server boot race in
#: CI: the server process is started in the background moments earlier).
CONNECT_RETRY_S = 30.0


# ----------------------------------------------------------------------
# Spec population.
# ----------------------------------------------------------------------
def spec_population(benchmarks: Tuple[str, ...] = ("perl", "gcc"),
                    ) -> List[Dict[str, Any]]:
    """Single-row spec documents: Table-4 cells plus the named presets.

    Each document is one ``(benchmark, config)`` cell, so dedup and cache
    hit rates map 1:1 onto request outcomes.
    """
    population: List[Dict[str, Any]] = []
    for benchmark in benchmarks:
        for config in vector_sweep_configs():
            population.append({
                "benchmarks": [benchmark],
                "cells": [{"engine": config.to_spec()}],
            })
        for name in sorted(PRESETS):
            if name == "oracle":
                continue  # oracle rows need mask collection; keep the mix uniform
            population.append({
                "benchmarks": [benchmark],
                "cells": [{"preset": name}],
            })
    return population


def zipf_weights(n: int, s: float = DEFAULT_ZIPF_S) -> List[float]:
    """Unnormalised Zipf weights ``1/rank**s`` for ranks ``1..n``."""
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


def build_mix(requests: int, *, seed: int = 1997,
              zipf_s: float = DEFAULT_ZIPF_S,
              benchmarks: Tuple[str, ...] = ("perl", "gcc"),
              ) -> List[Dict[str, Any]]:
    """The request sequence: ``requests`` Zipf-skewed draws (seeded)."""
    import random

    population = spec_population(benchmarks)
    rng = random.Random(seed)
    weights = zipf_weights(len(population), zipf_s)
    return rng.choices(population, weights=weights, k=requests)


# ----------------------------------------------------------------------
# Minimal async HTTP client (keep-alive, one connection per worker).
# ----------------------------------------------------------------------
class ServiceClient:
    """A keep-alive HTTP/1.1 client for one loadgen worker."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self, retry_s: float = 0.0) -> None:
        deadline = time.monotonic() + retry_s
        while True:
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
                return
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                await asyncio.sleep(0.2)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def request(self, method: str, path: str,
                      payload: Any = None) -> Tuple[int, Any]:
        """One request/response on the persistent connection."""
        if self._writer is None or self._reader is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2:
            raise ConnectionError(f"bad status line: {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if headers.get("transfer-encoding") == "chunked":
            chunks: List[bytes] = []
            while True:
                size_line = await self._reader.readline()
                size = int(size_line.strip() or b"0", 16)
                if size == 0:
                    await self._reader.readline()  # trailing CRLF
                    break
                chunks.append(await self._reader.readexactly(size))
                await self._reader.readexactly(2)  # chunk CRLF
            raw = b"".join(chunks)
            # Chunked bodies are JSONL event streams: one object per line.
            return status, [
                json.loads(line)
                for line in raw.splitlines() if line.strip()
            ]
        raw = await self._reader.readexactly(
            int(headers.get("content-length", "0"))
        )
        decoded = json.loads(raw) if raw.strip().startswith(b"{") else None
        return status, decoded


# ----------------------------------------------------------------------
# The run itself.
# ----------------------------------------------------------------------
async def _worker(client: ServiceClient, queue: "asyncio.Queue[Any]",
                  latencies: List[float], errors: List[str],
                  poll_interval_s: float) -> None:
    """Drain spec documents: submit, poll to completion, record latency."""
    await client.connect(retry_s=CONNECT_RETRY_S)
    try:
        while True:
            spec = await queue.get()
            if spec is None:
                return
            start = time.perf_counter()
            try:
                status, submitted = await client.request(
                    "POST", "/sweeps", spec
                )
                if status != 202 or submitted is None:
                    errors.append(f"submit -> {status}")
                    continue
                path = submitted["links"]["result"]
                while True:
                    status, job = await client.request("GET", path)
                    if status != 200 or job is None:
                        errors.append(f"poll -> {status}")
                        break
                    if job["status"] == "done":
                        latencies.append(time.perf_counter() - start)
                        break
                    if job["status"] == "error":
                        errors.append(job.get("error", "job error"))
                        break
                    await asyncio.sleep(poll_interval_s)
            except (OSError, ConnectionError, asyncio.IncompleteReadError):
                errors.append("connection lost")
                await client.close()
                await client.connect(retry_s=CONNECT_RETRY_S)
    finally:
        await client.close()


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0 on empty input)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


async def run_load(host: str, port: int, *,
                   requests: int = DEFAULT_REQUESTS,
                   concurrency: int = DEFAULT_CONCURRENCY,
                   seed: int = 1997, zipf_s: float = DEFAULT_ZIPF_S,
                   benchmarks: Tuple[str, ...] = ("perl", "gcc"),
                   poll_interval_s: float = 0.02) -> Dict[str, Any]:
    """Drive the service; return the ``BENCH_serve.json`` payload."""
    sink = get_sink()
    mix = build_mix(requests, seed=seed, zipf_s=zipf_s,
                    benchmarks=benchmarks)
    control = ServiceClient(host, port)
    await control.connect(retry_s=CONNECT_RETRY_S)
    status, _ = await control.request("GET", "/healthz")
    if status != 200:
        raise ConnectionError(f"/healthz -> {status}")
    _, stats_before = await control.request("GET", "/stats")

    queue: "asyncio.Queue[Any]" = asyncio.Queue()
    for spec in mix:
        queue.put_nowait(spec)
    n_workers = max(1, min(concurrency, requests))
    for _ in range(n_workers):
        queue.put_nowait(None)
    latencies: List[float] = []
    errors: List[str] = []
    clients = [ServiceClient(host, port) for _ in range(n_workers)]
    with sink.span("loadgen.run", requests=requests,
                   concurrency=n_workers):
        start = time.perf_counter()
        await asyncio.gather(*(
            _worker(client, queue, latencies, errors, poll_interval_s)
            for client in clients
        ))
        wall_s = time.perf_counter() - start

    _, stats_after = await control.request("GET", "/stats")
    await control.close()

    latencies.sort()
    done = len(latencies)
    before = (stats_before or {}).get("scheduler", {})
    after = (stats_after or {}).get("scheduler", {})

    def delta(name: str) -> int:
        return int(after.get(name, 0)) - int(before.get(name, 0))

    submitted = delta("submitted")
    saved = delta("dedup") + delta("cache_hit")
    payload: Dict[str, Any] = {
        "schema": 1,
        "bench": "serve",
        "params": {
            "requests": requests, "concurrency": n_workers,
            "seed": seed, "zipf_s": zipf_s,
            "benchmarks": list(benchmarks),
            "population": len(spec_population(benchmarks)),
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "server": (stats_after or {}).get("pool", {}),
            "server_params": (stats_after or {}).get("params", {}),
        },
        "latency": {
            "p50_s": percentile(latencies, 0.50),
            "p95_s": percentile(latencies, 0.95),
            "p99_s": percentile(latencies, 0.99),
            "mean_s": sum(latencies) / done if done else 0.0,
            "max_s": latencies[-1] if latencies else 0.0,
        },
        "throughput": {
            "wall_s": wall_s,
            "requests_done": done,
            "requests_failed": len(errors),
            "requests_per_s": done / wall_s if wall_s > 0 else 0.0,
        },
        "scheduler": {
            "submitted": submitted,
            "dedup": delta("dedup"),
            "cache_hit": delta("cache_hit"),
            "computed": delta("computed"),
            "steals": delta("steals"),
            "dedup_rate": delta("dedup") / submitted if submitted else 0.0,
            "cache_hit_rate":
                delta("cache_hit") / submitted if submitted else 0.0,
            "saved_rate": saved / submitted if submitted else 0.0,
        },
        "errors": errors[:20],
        # compare_bench reads these: latency percentiles gate (lower is
        # better, like the sweep-bench timings); the rest is context.
        "gate_metrics": ["latency.p50_s", "latency.p95_s", "latency.p99_s"],
        "info_metrics": ["throughput.requests_per_s",
                         "scheduler.dedup_rate",
                         "scheduler.cache_hit_rate",
                         "scheduler.saved_rate"],
    }
    sink.event("loadgen.done", requests=requests, done=done,
               failed=len(errors),
               p95_s=payload["latency"]["p95_s"],
               saved_rate=payload["scheduler"]["saved_rate"])
    return payload


def format_loadgen(payload: Dict[str, Any]) -> str:
    """Render a loadgen payload for the terminal."""
    latency = payload["latency"]
    throughput = payload["throughput"]
    scheduler = payload["scheduler"]
    lines = [
        f"loadgen: {throughput['requests_done']} done, "
        f"{throughput['requests_failed']} failed in "
        f"{throughput['wall_s']:.2f}s "
        f"({throughput['requests_per_s']:.1f} req/s)",
        f"  latency  p50 {latency['p50_s'] * 1e3:8.1f} ms   "
        f"p95 {latency['p95_s'] * 1e3:8.1f} ms   "
        f"p99 {latency['p99_s'] * 1e3:8.1f} ms",
        f"  cells    submitted {scheduler['submitted']}  "
        f"dedup {scheduler['dedup']}  cache {scheduler['cache_hit']}  "
        f"computed {scheduler['computed']}  steals {scheduler['steals']}",
        f"  saved    {100.0 * scheduler['saved_rate']:.1f}% "
        f"(dedup {100.0 * scheduler['dedup_rate']:.1f}% + "
        f"cache {100.0 * scheduler['cache_hit_rate']:.1f}%)",
    ]
    return "\n".join(lines)
