"""Sharded work-stealing cell scheduler: the service's execution core.

Every sweep request decomposes into ``(benchmark, EngineConfig)`` cells,
and concurrent requests overlap heavily (the whole point of a shared
service).  The scheduler turns that overlap into saved work at three
levels, in order of cheapness:

1. **In-flight dedup** — cells are keyed by
   :func:`repro.runner.keys.cell_key`; a cell already queued or computing
   hands the same :class:`asyncio.Future` to every requester
   (``service.cell.dedup``), so N identical concurrent submissions cost
   one simulation.
2. **Persistent cache short-circuit** — cells whose key is already in the
   shared :class:`~repro.runner.cache.ResultCache` resolve without
   touching the pool (``service.cell.cache_hit``).
3. **Cross-process claims** — before computing, a shard takes an atomic
   claim file in the cache directory
   (:meth:`~repro.runner.cache.ResultCache.claim`).  Losing the claim
   means another server instance sharing the cache directory is already
   computing the cell; the shard parks it and polls the cache instead of
   duplicating the work — which is how N servers split one sweep.

Cells are partitioned into **shards** by their key hash; each shard is an
asyncio task draining its own deque through the reentrant
:class:`~repro.runner.pool.SweepPool` (one in-flight pool submission per
shard, so the pool sees at most ``shards`` concurrent cells).  An idle
shard **steals** from the tail of the longest sibling queue
(``service.shard.steal``), so a burst that hashes unevenly still keeps
every shard busy.  Scheduling decides only *when and where* a cell runs —
the cell itself is a pure function of its spec, so results are
bit-identical to ``repro sweep`` no matter how the shards interleave.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from typing import Deque, Dict, List, NamedTuple, Optional

from repro.obs import get_sink
from repro.predictors import EngineConfig, PredictionStats
from repro.runner import DEFAULT_CLAIM_TTL_S, ResultCache, SweepPool, cell_key
from repro.runner.pool import _service_cell


class _Cell(NamedTuple):
    key: str
    benchmark: str
    config: EngineConfig
    collect_mask: bool


class ShardScheduler:
    """Dedup + shard + steal scheduler over a :class:`SweepPool`."""

    def __init__(self, pool: SweepPool, *, shards: int = 4,
                 result_cache: Optional[ResultCache] = None,
                 claim_ttl_s: float = DEFAULT_CLAIM_TTL_S,
                 poll_interval_s: float = 0.05) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.pool = pool
        self.result_cache = result_cache
        self.claim_ttl_s = claim_ttl_s
        self.poll_interval_s = poll_interval_s
        self.n_shards = shards
        self._queues: List[Deque[_Cell]] = [deque() for _ in range(shards)]
        self._inflight: Dict[str, "asyncio.Future[PredictionStats]"] = {}
        self._wakeup = [asyncio.Event() for _ in range(shards)]
        self._loops: List["asyncio.Task[None]"] = []
        self._closed = False
        #: Monotonic counters mirrored to the obs sink; ``/stats`` reads
        #: these without needing a ledger.
        self.counters: Dict[str, int] = {
            "submitted": 0, "dedup": 0, "cache_hit": 0, "computed": 0,
            "steals": 0, "claims_lost": 0, "claims_won": 0,
            "foreign_waits": 0, "errors": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the shard loops on the running event loop (idempotent)."""
        if self._loops:
            return
        self._loops = [
            asyncio.get_running_loop().create_task(self._shard_loop(i))
            for i in range(self.n_shards)
        ]

    async def close(self) -> None:
        self._closed = True
        for task in self._loops:
            task.cancel()
        for task in self._loops:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._loops = []
        for future in self._inflight.values():
            if not future.done():
                future.cancel()
        self._inflight.clear()

    def queue_depths(self) -> List[int]:
        return [len(queue) for queue in self._queues]

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------
    def submit(self, benchmark: str, config: EngineConfig,
               collect_mask: bool = False
               ) -> "asyncio.Future[PredictionStats]":
        """Queue one cell; returns a future shared by duplicate submits.

        The returned future must only be awaited (never cancelled by the
        caller: other requests may share it).
        """
        self.start()
        self.counters["submitted"] += 1
        key = cell_key(benchmark, config, self.pool.trace_length,
                       self.pool.seed)
        existing = self._inflight.get(key)
        if existing is not None:
            self.counters["dedup"] += 1
            get_sink().incr("service.cell.dedup")
            return existing
        future: "asyncio.Future[PredictionStats]" = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[key] = future
        shard = self._shard_of(key)
        self._queues[shard].append(
            _Cell(key, benchmark, config, collect_mask)
        )
        # Wake every shard, not just the owner: an idle sibling should
        # get the chance to steal immediately rather than on its next
        # scheduled pass.
        for event in self._wakeup:
            event.set()
        return future

    def _shard_of(self, key: str) -> int:
        # The key is a hex SHA-256 digest: its leading bits are already
        # uniform, so a modulus is a perfect shard hash.
        return int(key[:8], 16) % self.n_shards

    # ------------------------------------------------------------------
    # Shard loops.
    # ------------------------------------------------------------------
    def _take(self, shard: int) -> Optional[_Cell]:
        """Next cell for ``shard``: own queue first, else steal."""
        queue = self._queues[shard]
        if queue:
            return queue.popleft()
        victim = max(
            (i for i in range(self.n_shards) if i != shard),
            key=lambda i: len(self._queues[i]),
            default=None,
        )
        if victim is None or not self._queues[victim]:
            return None
        # Steal from the *tail*: the victim keeps draining its head, so
        # the two shards never contend for the same end of the deque.
        cell = self._queues[victim].pop()
        self.counters["steals"] += 1
        get_sink().incr("service.shard.steal")
        return cell

    async def _shard_loop(self, shard: int) -> None:
        wakeup = self._wakeup[shard]
        while not self._closed:
            cell = self._take(shard)
            if cell is None:
                wakeup.clear()
                # Re-check before sleeping: a submit between _take and
                # clear would otherwise be missed until the next one.
                if any(self._queues):
                    continue
                await wakeup.wait()
                continue
            await self._run_cell(cell)

    async def _run_cell(self, cell: _Cell) -> None:
        future = self._inflight[cell.key]
        try:
            stats = await self._resolve(cell)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.counters["errors"] += 1
            get_sink().event("service.cell.error", key=cell.key[:12],
                             error=str(exc))
            if not future.done():
                future.set_exception(exc)
        else:
            if not future.done():
                future.set_result(stats)
        finally:
            # Resolved cells leave the dedup map: the persistent cache
            # serves later requests.  Without a cache the future is the
            # only memo, so it stays (bounded by the config space).
            if self.result_cache is not None:
                self._inflight.pop(cell.key, None)

    async def _resolve(self, cell: _Cell) -> PredictionStats:
        cache = self.result_cache
        while True:
            if cache is not None:
                hit = cache.load(cell.key, need_mask=cell.collect_mask)
                if hit is not None:
                    self.counters["cache_hit"] += 1
                    get_sink().incr("service.cell.cache_hit")
                    return hit
                if not cache.claim(cell.key, ttl_s=self.claim_ttl_s):
                    # Another server instance owns this cell: park and
                    # poll the shared cache until its store lands (or the
                    # claim goes stale and we take over on a later lap).
                    self.counters["claims_lost"] += 1
                    self.counters["foreign_waits"] += 1
                    get_sink().incr("service.cell.foreign_wait")
                    await asyncio.sleep(self.poll_interval_s)
                    continue
                self.counters["claims_won"] += 1
            try:
                return await self._compute(cell)
            finally:
                if cache is not None:
                    cache.release(cell.key)

    async def _compute(self, cell: _Cell) -> PredictionStats:
        loop = asyncio.get_running_loop()
        try:
            stats = await loop.run_in_executor(
                self.pool.executor, _service_cell,
                cell.benchmark, cell.config, cell.collect_mask,
            )
        except (BrokenProcessPool, OSError, PermissionError) as exc:
            # A worker died or the sandbox refused to fork: degrade the
            # pool to its single-thread mode and recompute — same memo
            # machinery, same bytes, no lost cells.
            get_sink().event("service.pool.degraded", error=str(exc))
            self.pool.degrade_to_thread()
            stats = await loop.run_in_executor(
                self.pool.executor, _service_cell,
                cell.benchmark, cell.config, cell.collect_mask,
            )
        self.counters["computed"] += 1
        get_sink().incr("service.cell.computed")
        if self.result_cache is not None:
            self.result_cache.store(cell.key, stats)
        return stats
