"""Index schemes shared by the two-level predictors and the tagless target
cache.

The paper's §4.2.1 compares three ways of hashing the fetch address and the
branch history into a 512-entry tagless target cache:

* **GAg(h)** — history bits alone select the entry;
* **GAs(h, a)** — the cache is "conceptually partitioned into several
  tables": ``a`` address bits select the table, ``h`` history bits select
  the entry within it;
* **gshare(h)** — address XOR history, "effectively utilizes more of the
  entries".

The same schemes index the pattern history tables of the two-level direction
predictors, so they live in one module.  Addresses are word-aligned; the two
zero low bits are dropped before hashing (paper §4.2.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np
import numpy.typing as npt

from repro.guest.isa import INSTRUCTION_BYTES

_ADDR_SHIFT = INSTRUCTION_BYTES.bit_length() - 1  # drop alignment zeros


class IndexScheme(ABC):
    """Maps (fetch address, history value) to a table index."""

    #: number of entries the scheme addresses
    table_size: int

    @abstractmethod
    def index(self, pc: int, history: int) -> int:
        """Return the table index for this (address, history) pair."""

    def index_array(self, pcs: "npt.NDArray[np.int64]",
                    histories: "npt.NDArray[np.uint64]"
                    ) -> "npt.NDArray[np.int64]":
        """Whole-array :meth:`index` over parallel pc/history columns.

        Must be element-wise identical to per-row :meth:`index` calls —
        the vector execution tier (:mod:`repro.predictors.vector`)
        depends on it.  This base implementation replays the scalar
        method, so scheme subclasses stay correct by default; the
        built-in schemes override it with closed-form numpy expressions.
        """
        return np.fromiter(
            (self.index(int(pc), int(history))
             for pc, history in zip(pcs.tolist(), histories.tolist())),
            dtype=np.int64, count=len(pcs),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(table_size={self.table_size})"


class GAgIndex(IndexScheme):
    """History-only indexing: ``index = history mod 2**history_bits``."""

    def __init__(self, history_bits: int) -> None:
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.history_bits = history_bits
        self.table_size = 1 << history_bits
        self._mask = self.table_size - 1

    def index(self, pc: int, history: int) -> int:
        return history & self._mask

    def index_array(self, pcs: "npt.NDArray[np.int64]",
                    histories: "npt.NDArray[np.uint64]"
                    ) -> "npt.NDArray[np.int64]":
        return (histories & np.uint64(self._mask)).astype(np.int64)


class GAsIndex(IndexScheme):
    """Partitioned indexing: address bits pick the table, history bits pick
    the entry within it — GAs(history_bits, address_bits) in the paper."""

    def __init__(self, history_bits: int, address_bits: int) -> None:
        if history_bits <= 0 or address_bits < 0:
            raise ValueError("need history_bits > 0 and address_bits >= 0")
        self.history_bits = history_bits
        self.address_bits = address_bits
        self.table_size = 1 << (history_bits + address_bits)
        self._hist_mask = (1 << history_bits) - 1
        self._addr_mask = (1 << address_bits) - 1

    def index(self, pc: int, history: int) -> int:
        word = pc >> _ADDR_SHIFT
        return ((word & self._addr_mask) << self.history_bits) | (
            history & self._hist_mask
        )

    def index_array(self, pcs: "npt.NDArray[np.int64]",
                    histories: "npt.NDArray[np.uint64]"
                    ) -> "npt.NDArray[np.int64]":
        words = (pcs >> _ADDR_SHIFT) & self._addr_mask
        low = (histories & np.uint64(self._hist_mask)).astype(np.int64)
        return (words << self.history_bits) | low


class GShareIndex(IndexScheme):
    """XOR indexing: ``index = (pc_word ^ history) mod 2**history_bits``."""

    def __init__(self, history_bits: int) -> None:
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.history_bits = history_bits
        self.table_size = 1 << history_bits
        self._mask = self.table_size - 1

    def index(self, pc: int, history: int) -> int:
        return ((pc >> _ADDR_SHIFT) ^ history) & self._mask

    def index_array(self, pcs: "npt.NDArray[np.int64]",
                    histories: "npt.NDArray[np.uint64]"
                    ) -> "npt.NDArray[np.int64]":
        # XOR in uint64 so wide histories never overflow; the mask keeps
        # the result small enough for a lossless cast back to int64.
        words = (pcs.astype(np.uint64) >> np.uint64(_ADDR_SHIFT))
        return ((words ^ histories) & np.uint64(self._mask)).astype(np.int64)


def parse_scheme(name: str, history_bits: int, address_bits: int = 0) -> IndexScheme:
    """Build an index scheme from a config-friendly name.

    ``name`` is one of ``"gag"``, ``"gas"``, ``"gshare"`` (case-insensitive).
    """
    lowered = name.lower()
    if lowered == "gag":
        return GAgIndex(history_bits)
    if lowered == "gas":
        return GAsIndex(history_bits, address_bits)
    if lowered == "gshare":
        return GShareIndex(history_bits)
    raise ValueError(f"unknown index scheme {name!r}")
