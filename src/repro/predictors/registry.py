"""Predictor registry: the single home of target-cache kind dispatch.

Every concrete target predictor registers here under the ``kind`` string a
:class:`~repro.predictors.target_cache.config.TargetCacheConfig` selects,
with four things:

* a **factory** building the predictor from a config;
* a :class:`PredictorTraits` capability record — the questions the rest of
  the system used to answer with ``isinstance`` checks and kind-string
  ``if``/``elif`` chains (does it need a history value?  can the stream
  kernel drive it?  is it oracle-style?  which config fields does its spec
  schema use?);
* a parameterised **label** for experiment tables;
* **spec examples** — configs that tests and the ``repro lint`` registry
  checker push through the ``to_spec``/``from_spec`` round-trip, so a
  registration without a working declarative spec is a lint finding.

Downstream consumers only ever ask the registry: the fetch engine
(:class:`~repro.predictors.engine.FetchEngine`) builds and routes through
it, the stream kernel (:mod:`repro.predictors.streams`) queries traits,
the sweep runner fingerprints specs, and the CLI lists registrations via
``repro predictors``.  Adding a predictor — including a third-party one,
see ``examples/plugin_predictor.py`` and ``docs/PREDICTORS.md`` — is one
:func:`register` call; no other module changes.
"""

from __future__ import annotations

import importlib
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Type

from repro.predictors.btb2 import TwoLevelBTB
from repro.predictors.indexing import parse_scheme
from repro.predictors.target_cache.base import TargetPredictor
from repro.predictors.target_cache.cascaded import CascadedTargetCache
from repro.predictors.target_cache.config import TargetCacheConfig
from repro.predictors.target_cache.ittage import ITTageLite
from repro.predictors.target_cache.oracle import (
    LastTargetPredictor,
    OracleTargetPredictor,
)
from repro.predictors.target_cache.tagged import TaggedIndexing, TaggedTargetCache
from repro.predictors.target_cache.tagless import TaglessTargetCache

__all__ = [
    "PredictorTraits",
    "PredictorRegistration",
    "register",
    "unregister",
    "registration",
    "registrations",
    "registered_kinds",
    "traits_for",
    "build_target_cache",
    "predictor_label",
    "plugin_modules",
    "load_plugins",
]


@dataclass(frozen=True)
class PredictorTraits:
    """Capability record of one registered predictor kind.

    ``needs_history``
        Whether :meth:`~repro.predictors.target_cache.base.TargetPredictor.predict`
        / ``update`` consume their ``history`` argument.  ``False`` is a
        contract that both ignore it, which lets the stream kernel skip
        computing history variants for such cells entirely.
    ``streams_supported``
        Whether :func:`~repro.predictors.streams.simulate_streamed` may
        drive this predictor.  Any predictor whose behaviour is a pure
        function of its own ``predict``/``update``/``prime`` call sequence
        qualifies; set ``False`` to force the reference engine.
    ``vectorizable``
        Whether :func:`~repro.predictors.vector.simulate_vector` can
        replay this predictor as whole-array numpy passes.  This is a much
        stronger contract than ``streams_supported``: the kind's
        ``predict`` must be exactly "the target most recently stored at
        the same table index, else a structural miss" for an index that is
        a pure function of ``(pc, history)`` (the tagless family), an
        oracle primed with the actual target, or an unbounded per-pc
        last-target table.  Stateful replacement policies (tagged/LRU,
        cascaded, ITTAGE) must leave this ``False``; the sweep runner
        falls back to the stream kernel for them.  Defaults to ``False``
        so plugin kinds opt in deliberately.
    ``is_oracle``
        Oracle-style: the engine calls
        :meth:`~repro.predictors.target_cache.base.TargetPredictor.prime`
        with the actual target immediately before the fetch-time
        ``predict``.
    ``predicts_on_btb_miss``
        The predictor still identifies the branch when the primary BTB
        misses, so the engine consults it on BTB-missed indirect jumps
        instead of predicting fall-through (the two-level-BTB family: the
        backing level is itself a pc-tagged structure).  Requires
        ``needs_history=False`` — on a BTB miss the engine has no
        fetch-time history capture for the branch, so only kinds that
        contractually ignore the history value may backstop it (enforced
        by the ``trait-contract`` lint checker).  Prediction-only: the
        backstop never changes BTB, RAS, or history state.
    ``deterministic``
        The predictor's outputs are a pure function of its inputs (all
        internal randomness is seeded).  Required for result-cache
        soundness; ``repro lint`` treats ``False`` as information only,
        but the sweep runner refuses to cache such cells.
    ``spec_fields``
        The spec schema: which :class:`TargetCacheConfig` fields this kind
        consumes (beyond ``kind`` itself).  ``repro predictors`` prints
        it, and spec files should set only these fields.
    ``description``
        One line for ``repro predictors``.
    """

    description: str = ""
    needs_history: bool = True
    streams_supported: bool = True
    vectorizable: bool = False
    is_oracle: bool = False
    predicts_on_btb_miss: bool = False
    deterministic: bool = True
    spec_fields: Tuple[str, ...] = ()

    def backends(self) -> Tuple[str, ...]:
        """Execution tiers that can serve this kind, fastest first."""
        tiers: Tuple[str, ...] = ("engine",)
        if self.streams_supported:
            tiers = ("streams",) + tiers
            if self.vectorizable:
                tiers = ("vector",) + tiers
        return tiers


@dataclass(frozen=True)
class PredictorRegistration:
    """One registered predictor kind (see :func:`register`)."""

    kind: str
    factory: Callable[[TargetCacheConfig], TargetPredictor]
    traits: PredictorTraits
    #: concrete TargetPredictor classes the factory can return; the lint
    #: registry checker uses this to prove every subclass is registered
    provides: Tuple[Type[TargetPredictor], ...]
    #: parameterised table label for a config of this kind
    label: Callable[[TargetCacheConfig], str]
    #: configs exercised by the spec round-trip test hook (tests + lint)
    spec_examples: Tuple[TargetCacheConfig, ...]
    #: module that performed the registration (worker propagation)
    module: str


_REGISTRY: Dict[str, PredictorRegistration] = {}


def _default_label(
    kind: str, spec_fields: Tuple[str, ...]
) -> Callable[[TargetCacheConfig], str]:
    def label(config: TargetCacheConfig) -> str:
        inner = ",".join(
            f"{name}={getattr(config, name)}" for name in spec_fields
        )
        return f"{kind}({inner})"

    return label


def register(
    kind: str,
    *,
    factory: Callable[[TargetCacheConfig], TargetPredictor],
    traits: PredictorTraits,
    provides: Tuple[Type[TargetPredictor], ...],
    label: "Callable[[TargetCacheConfig], str] | None" = None,
    spec_examples: Tuple[TargetCacheConfig, ...] = (),
) -> PredictorRegistration:
    """Register a predictor kind; returns the stored registration.

    Re-registering a kind from the *same* module replaces the entry (so a
    plugin module can be re-imported, e.g. in a pool worker); registering
    a kind another module already owns is an error.
    """
    module = getattr(factory, "__module__", "") or ""
    existing = _REGISTRY.get(kind)
    if existing is not None and existing.module != module:
        raise ValueError(
            f"target-cache kind {kind!r} is already registered by "
            f"{existing.module}; pick another kind string"
        )
    entry = PredictorRegistration(
        kind=kind,
        factory=factory,
        traits=traits,
        provides=provides,
        label=label if label is not None else _default_label(
            kind, traits.spec_fields
        ),
        spec_examples=spec_examples,
        module=module,
    )
    _REGISTRY[kind] = entry
    return entry


def unregister(kind: str) -> None:
    """Remove a registration (plugin teardown and tests)."""
    try:
        del _REGISTRY[kind]
    except KeyError:
        raise ValueError(f"target-cache kind {kind!r} is not registered") from None


def registration(kind: str) -> PredictorRegistration:
    """Look up one kind; unknown kinds fail with the registered list."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown target-cache kind {kind!r}; registered kinds: "
            f"{', '.join(registered_kinds())}"
        ) from None


def registrations() -> List[PredictorRegistration]:
    """Every registration, sorted by kind (stable for display/tests)."""
    return [_REGISTRY[kind] for kind in registered_kinds()]


def registered_kinds() -> List[str]:
    """Sorted kind strings currently registered."""
    return sorted(_REGISTRY)


def traits_for(kind: str) -> PredictorTraits:
    """The capability record of one registered kind."""
    return registration(kind).traits


def build_target_cache(config: TargetCacheConfig) -> TargetPredictor:
    """Instantiate the predictor a :class:`TargetCacheConfig` describes."""
    return registration(config.kind).factory(config)


def predictor_label(config: TargetCacheConfig) -> str:
    """The parameterised table label of ``config`` (never the bare kind)."""
    return registration(config.kind).label(config)


def plugin_modules() -> List[str]:
    """Modules outside ``repro`` that registered predictor kinds.

    The sweep runner forwards this list to pool workers so plugin
    registrations exist wherever cells simulate (under the ``fork`` start
    method workers also inherit them directly).
    """
    return sorted(
        {
            entry.module
            for entry in _REGISTRY.values()
            if entry.module and not entry.module.startswith("repro")
        }
    )


def load_plugins(modules: "List[str] | Tuple[str, ...]") -> None:
    """Import plugin modules so their module-scope registrations run.

    ``__main__`` cannot be re-imported by name and is skipped (a plugin
    registered by a script relies on ``fork`` inheritance instead — make
    the plugin an importable module to support ``spawn`` platforms).
    Import failures warn rather than raise: a worker missing an optional
    plugin should fail on the unknown kind it actually needs, not here.
    """
    for name in modules:
        if name == "__main__":
            continue
        try:
            importlib.import_module(name)
        except ImportError as exc:
            warnings.warn(
                f"could not import plugin predictor module {name!r}: {exc}"
            )


# ----------------------------------------------------------------------
# Built-in registrations: the paper's design space plus its lineage.
# ----------------------------------------------------------------------
_TAGGED_SPEC_FIELDS = (
    "entries", "assoc", "indexing", "history_bits", "tag_bits", "replacement",
)


def _build_tagless(config: TargetCacheConfig) -> TargetPredictor:
    scheme = parse_scheme(config.scheme, config.history_bits, config.address_bits)
    return TaglessTargetCache(scheme)


def _label_tagless(config: TargetCacheConfig) -> str:
    if config.scheme == "gas":
        return f"GAs({config.history_bits},{config.address_bits})"
    if config.scheme == "gag":
        return f"GAg({config.history_bits})"
    return f"gshare({config.history_bits})"


def _tagged_stage(config: TargetCacheConfig) -> TaggedTargetCache:
    return TaggedTargetCache(
        entries=config.entries,
        assoc=config.assoc,
        indexing=config.indexing,
        history_bits=config.history_bits,
        tag_bits=config.tag_bits,
        replacement=config.replacement,
    )


def _build_tagged(config: TargetCacheConfig) -> TargetPredictor:
    return _tagged_stage(config)


def _build_cascaded(config: TargetCacheConfig) -> TargetPredictor:
    return CascadedTargetCache(_tagged_stage(config))


def _tagged_geometry(config: TargetCacheConfig) -> str:
    return (
        f"{config.entries}e/{config.assoc}w/"
        f"{config.indexing.value}/h{config.history_bits}"
    )


def _label_tagged(config: TargetCacheConfig) -> str:
    return f"tagged({_tagged_geometry(config)})"


def _label_cascaded(config: TargetCacheConfig) -> str:
    return f"cascaded({_tagged_geometry(config)})"


def _ittage_table_bits(config: TargetCacheConfig) -> int:
    return max(4, config.entries.bit_length() - 1)


def _build_ittage(config: TargetCacheConfig) -> TargetPredictor:
    return ITTageLite(table_bits=_ittage_table_bits(config))


def _label_ittage(config: TargetCacheConfig) -> str:
    return f"ittage(4x{1 << _ittage_table_bits(config)})"


def _build_btb2(config: TargetCacheConfig) -> TargetPredictor:
    return TwoLevelBTB(
        entries=config.entries,
        assoc=config.assoc,
        l2_entries=config.l2_entries,
        l2_assoc=config.l2_assoc,
    )


def _label_btb2(config: TargetCacheConfig) -> str:
    l1 = f"{config.entries}e/{config.assoc}w"
    if not config.l2_entries:
        return f"btb2({l1},no-L2)"
    return f"btb2({l1}+{config.l2_entries}e/{config.l2_assoc}w)"


def _build_oracle(config: TargetCacheConfig) -> TargetPredictor:
    return OracleTargetPredictor()


def _build_last_target(config: TargetCacheConfig) -> TargetPredictor:
    return LastTargetPredictor()


register(
    "tagless",
    factory=_build_tagless,
    traits=PredictorTraits(
        description="direct-mapped history-indexed table, no tags "
                    "(paper §3.2 Figure 10)",
        # last-write-per-index semantics: the vector tier replays the
        # whole table as one grouped shift-by-one pass (see vector.py)
        vectorizable=True,
        spec_fields=("scheme", "history_bits", "address_bits"),
    ),
    provides=(TaglessTargetCache,),
    label=_label_tagless,
    spec_examples=(
        TargetCacheConfig(kind="tagless"),
        TargetCacheConfig(kind="tagless", scheme="gag", history_bits=11),
        TargetCacheConfig(
            kind="tagless", scheme="gas", history_bits=8, address_bits=1
        ),
    ),
)

register(
    "tagged",
    factory=_build_tagged,
    traits=PredictorTraits(
        description="set-associative tag-matched target cache "
                    "(paper §3.2 Figure 11)",
        spec_fields=_TAGGED_SPEC_FIELDS,
    ),
    provides=(TaggedTargetCache,),
    label=_label_tagged,
    spec_examples=(
        TargetCacheConfig(kind="tagged"),
        TargetCacheConfig(
            kind="tagged", entries=512, assoc=8,
            indexing=TaggedIndexing.ADDRESS, tag_bits=6, replacement="random",
        ),
    ),
)

register(
    "cascaded",
    factory=_build_cascaded,
    traits=PredictorTraits(
        description="last-target filter in front of a tagged stage 2 "
                    "(Driesen & Hölzle lineage)",
        spec_fields=_TAGGED_SPEC_FIELDS,
    ),
    provides=(CascadedTargetCache,),
    label=_label_cascaded,
    spec_examples=(
        TargetCacheConfig(kind="cascaded"),
        TargetCacheConfig(kind="cascaded", entries=64, assoc=2),
    ),
)

register(
    "ittage",
    factory=_build_ittage,
    traits=PredictorTraits(
        description="ITTAGE-lite: tagged components with geometric history "
                    "lengths (the modern descendant)",
        spec_fields=("entries",),
    ),
    provides=(ITTageLite,),
    label=_label_ittage,
    spec_examples=(
        TargetCacheConfig(kind="ittage", entries=128),
        TargetCacheConfig(kind="ittage", entries=32),
    ),
)

register(
    "btb2",
    factory=_build_btb2,
    traits=PredictorTraits(
        description="two-level BTB: small L1 backed by a large last-level "
                    "BTB with miss-triggered prefetch (Micro BTB lineage)",
        # pc-tagged at both levels: the history value is ignored, and the
        # backing level still identifies the branch when the primary BTB
        # misses — so the engine backstops BTB misses with this kind.
        needs_history=False,
        predicts_on_btb_miss=True,
        spec_fields=("entries", "assoc", "l2_entries", "l2_assoc"),
    ),
    provides=(TwoLevelBTB,),
    label=_label_btb2,
    spec_examples=(
        TargetCacheConfig(kind="btb2", entries=64, assoc=4),
        TargetCacheConfig(kind="btb2", entries=64, assoc=4,
                          l2_entries=8192, l2_assoc=8),
        TargetCacheConfig(kind="btb2", entries=64, assoc=4, l2_entries=0),
    ),
)

register(
    "oracle",
    factory=_build_oracle,
    traits=PredictorTraits(
        description="perfect prediction (primed with the actual target); "
                    "the execution-time ceiling",
        needs_history=False,
        # primed predict always returns the actual target: the vector
        # tier needs no table replay at all
        vectorizable=True,
        is_oracle=True,
    ),
    provides=(OracleTargetPredictor,),
    label=lambda config: "oracle(perfect)",
    spec_examples=(TargetCacheConfig(kind="oracle"),),
)

register(
    "last_target",
    factory=_build_last_target,
    traits=PredictorTraits(
        description="unbounded per-pc last-target table (an infinite, "
                    "conflict-free BTB)",
        needs_history=False,
        # an unbounded last-write-per-pc table: the same grouped
        # shift-by-one recurrence with the pc itself as the index
        vectorizable=True,
    ),
    provides=(LastTargetPredictor,),
    label=lambda config: "last-target(unbounded)",
    spec_examples=(TargetCacheConfig(kind="last_target"),),
)
