"""Lossless dataclass <-> JSON spec codec for predictor configurations.

A *spec* is the declarative, JSON-serialisable form of a frozen config
dataclass: a plain dict mapping field names to scalars, enum values, or
nested specs.  Specs are the interchange format of the predictor registry
(:mod:`repro.predictors.registry`): the result cache fingerprints them
(:func:`repro.runner.keys.cell_key`), ``repro sweep --spec`` reads them
from JSON files, and :data:`repro.experiments.configs.PRESETS` names them.

The codec is generic over dataclasses whose fields are scalars, enums,
other such dataclasses, or ``Optional`` of those — which covers
:class:`~repro.predictors.engine.EngineConfig` and everything it embeds.
Encoding is total over every field (nothing is elided), and decoding
inverts it exactly, so ``from_spec(cls, to_spec(cfg)) == cfg`` holds over
the whole config space (property-tested in ``tests/test_spec.py``).
Decoding also accepts *partial* specs — omitted fields take the dataclass
defaults — so spec files and presets stay terse.

Enums encode as their ``.value`` (every config enum is string-valued),
never their Python name, so spec JSON is stable across renames of the
Python identifiers.
"""

from __future__ import annotations

import dataclasses
import typing
from enum import Enum
from typing import Any, Dict, Mapping, Type, TypeVar

_T = TypeVar("_T")

#: The JSON-ready rendering of one config dataclass.
Spec = Dict[str, Any]

try:  # ``X | Y`` annotations resolve to types.UnionType on 3.10+
    from types import UnionType as _UNION_TYPE
except ImportError:  # pragma: no cover - 3.9 fallback
    _UNION_TYPE = None  # type: ignore[assignment, misc]


def to_spec(config: Any) -> Spec:
    """Render a config dataclass as a plain JSON-serialisable dict.

    Every field is included (the rendering is lossless); nested config
    dataclasses become nested dicts and enums their ``.value``.
    """
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        raise TypeError(
            f"to_spec needs a dataclass instance, got {type(config).__name__}"
        )
    return {
        f.name: _encode(getattr(config, f.name), f"{type(config).__name__}.{f.name}")
        for f in dataclasses.fields(config)
    }


def _encode(value: Any, where: str) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_spec(value)
    if isinstance(value, Enum):
        return value.value
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"{where}: cannot encode {type(value).__name__} in a spec; spec "
        "fields must be scalars, enums, or config dataclasses"
    )


def from_spec(cls: Type[_T], spec: Mapping[str, Any]) -> _T:
    """Build ``cls`` from a (possibly partial) spec dict.

    Unknown keys are an error (a typo in a spec file must not be silently
    ignored); missing keys take the dataclass field defaults.  Values are
    validated against the field annotations, so a malformed spec fails
    with a message naming the offending field.
    """
    if not dataclasses.is_dataclass(cls) or not isinstance(cls, type):
        raise TypeError(f"from_spec needs a dataclass type, got {cls!r}")
    if not isinstance(spec, Mapping):
        raise ValueError(
            f"{cls.__name__} spec must be a mapping, got {type(spec).__name__}"
        )
    hints = typing.get_type_hints(cls)
    field_names = [f.name for f in dataclasses.fields(cls)]
    unknown = sorted(set(spec) - set(field_names))
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} spec field(s): {', '.join(unknown)}; "
            f"valid fields: {', '.join(field_names)}"
        )
    kwargs = {
        name: _decode(hints[name], spec[name], f"{cls.__name__}.{name}")
        for name in field_names
        if name in spec
    }
    return cls(**kwargs)


def _decode(tp: Any, value: Any, where: str) -> Any:
    origin = typing.get_origin(tp)
    if origin is typing.Union or (
        _UNION_TYPE is not None and origin is _UNION_TYPE
    ):
        args = typing.get_args(tp)
        if value is None and type(None) in args:
            return None
        concrete = [a for a in args if a is not type(None)]
        if len(concrete) == 1:
            return _decode(concrete[0], value, where)
        raise ValueError(f"{where}: unsupported union annotation {tp!r}")
    if isinstance(tp, type) and dataclasses.is_dataclass(tp):
        if not isinstance(value, Mapping):
            raise ValueError(
                f"{where}: expected a {tp.__name__} spec dict, got "
                f"{type(value).__name__}"
            )
        return from_spec(tp, value)
    if isinstance(tp, type) and issubclass(tp, Enum):
        try:
            return tp(value)
        except ValueError:
            valid = ", ".join(repr(member.value) for member in tp)
            raise ValueError(
                f"{where}: {value!r} is not a valid {tp.__name__} value "
                f"(one of {valid})"
            ) from None
    if tp is bool:
        if not isinstance(value, bool):
            raise ValueError(f"{where}: expected a bool, got {value!r}")
        return value
    if tp is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"{where}: expected an int, got {value!r}")
        return value
    if tp is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"{where}: expected a number, got {value!r}")
        return float(value)
    if tp is str:
        if not isinstance(value, str):
            raise ValueError(f"{where}: expected a string, got {value!r}")
        return value
    raise ValueError(f"{where}: cannot decode spec values of type {tp!r}")
