"""Branch-prediction structures.

This package implements every prediction structure the paper simulates:

* :mod:`~repro.predictors.btb` — 256-set x 4-way branch target buffer with
  the *default* and Calder/Grunwald *2-bit* target-update strategies
  (paper §2, Table 2);
* :mod:`~repro.predictors.ras` — return address stack (paper footnote 1);
* :mod:`~repro.predictors.direction` — two-level adaptive direction
  predictors (GAg / GAs / gshare / PAs) for conditional branches;
* :mod:`~repro.predictors.history` — global pattern history and the path
  history registers of §3.1 (global with Control / Branch / Call-ret /
  Ind-jmp filters, and per-address);
* :mod:`~repro.predictors.target_cache` — the paper's contribution: tagless
  (§3.2, Figure 10) and tagged (§3.2, Figure 11) target caches;
* :mod:`~repro.predictors.engine` — the fetch-engine composite that glues
  the above together exactly as §3 describes, plus the trace-driven
  simulator that produces misprediction statistics and the mispredict mask
  consumed by the timing models;
* :mod:`~repro.predictors.streams` — the stream-factored sweep kernel:
  precomputes the per-branch history/routing streams that are identical
  across every target-cache configuration sharing a base config, then
  simulates each cell over just the target-cache-relevant subset
  (bit-identical to :func:`~repro.predictors.engine.simulate`);
* :mod:`~repro.predictors.vector` — the vectorized columnar tier above the
  stream kernel: replays the tagless/gshare family (and the oracle /
  last-target bounding predictors) as whole-array numpy passes over the
  same :class:`BranchStreams`, with no per-branch Python loop — still
  bit-identical to the reference engine;
* :mod:`~repro.predictors.registry` — the predictor registry: every
  target-cache kind registers a factory, a :class:`PredictorTraits`
  capability record, a label, and spec examples; plugins add kinds with
  one :func:`register` call (see ``docs/PREDICTORS.md``);
* :mod:`~repro.predictors.spec` — the lossless dataclass <-> JSON spec
  codec behind ``to_spec``/``from_spec``, ``repro sweep --spec`` files,
  and the result-cache fingerprint.
"""

from repro.predictors.btb import BranchTargetBuffer, BTBEntry, UpdateStrategy
from repro.predictors.btb2 import TwoLevelBTB
from repro.predictors.direction import DirectionConfig, DirectionPredictor
from repro.predictors.engine import (
    DecodedBranches,
    EngineConfig,
    FetchEngine,
    HistoryConfig,
    HistorySource,
    PredictionStats,
    decode_branches,
    simulate,
    simulate_many,
)
from repro.predictors.history import (
    PathFilter,
    PathHistoryRegister,
    PatternHistoryRegister,
    PerAddressPathHistory,
)
from repro.predictors.indexing import (
    GAgIndex,
    GAsIndex,
    GShareIndex,
    IndexScheme,
)
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.registry import (
    PredictorRegistration,
    PredictorTraits,
    load_plugins,
    plugin_modules,
    register,
    registered_kinds,
    registration,
    registrations,
    traits_for,
    unregister,
)
from repro.predictors.spec import Spec, from_spec, to_spec
from repro.predictors.streams import (
    BranchStreams,
    StreamConfig,
    build_streams,
    simulate_many_streamed,
    simulate_streamed,
    stream_signature,
    streams_supported,
)
from repro.predictors.target_cache import (
    OracleTargetPredictor,
    TaggedIndexing,
    TaggedTargetCache,
    TaglessTargetCache,
    TargetCacheConfig,
    TargetPredictor,
    build_target_cache,
)
from repro.predictors.vector import (
    simulate_many_vector,
    simulate_vector,
    vector_supported,
)

__all__ = [
    "BranchTargetBuffer",
    "BTBEntry",
    "UpdateStrategy",
    "TwoLevelBTB",
    "DirectionPredictor",
    "DirectionConfig",
    "EngineConfig",
    "FetchEngine",
    "HistoryConfig",
    "HistorySource",
    "PredictionStats",
    "DecodedBranches",
    "decode_branches",
    "simulate",
    "simulate_many",
    "PathFilter",
    "PathHistoryRegister",
    "PatternHistoryRegister",
    "PerAddressPathHistory",
    "GAgIndex",
    "GAsIndex",
    "GShareIndex",
    "IndexScheme",
    "ReturnAddressStack",
    "PredictorRegistration",
    "PredictorTraits",
    "register",
    "unregister",
    "registration",
    "registrations",
    "registered_kinds",
    "traits_for",
    "plugin_modules",
    "load_plugins",
    "Spec",
    "to_spec",
    "from_spec",
    "BranchStreams",
    "StreamConfig",
    "build_streams",
    "simulate_many_streamed",
    "simulate_streamed",
    "stream_signature",
    "streams_supported",
    "simulate_many_vector",
    "simulate_vector",
    "vector_supported",
    "OracleTargetPredictor",
    "TaggedIndexing",
    "TaggedTargetCache",
    "TaglessTargetCache",
    "TargetCacheConfig",
    "TargetPredictor",
    "build_target_cache",
]
