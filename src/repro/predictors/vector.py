"""Vectorized columnar execution tier: whole-array cell simulation.

The stream kernel (:mod:`repro.predictors.streams`) already reduced a cell
to "drive one target-cache object over the target-cache-relevant subset",
but that drive is still a per-branch Python loop.  This module removes the
loop for the kinds whose semantics admit it, declared per registration via
``PredictorTraits.vectorizable``:

* **tagless family** — the table is write-through with no replacement
  policy, so ``predict(pc, history)`` is exactly *the target most recently
  stored at the same index*, a "last-write-per-index" recurrence.  Sorting
  the subset rows by table index (stable, so original order survives
  within an index group) turns the recurrence into a grouped running
  maximum over update positions; a shift-by-one keeps each row from seeing
  its own update, exactly encoding the engine's predict-before-update
  ordering.  Index values come from
  :meth:`~repro.predictors.indexing.IndexScheme.index_array` over the
  memoised pc/history columns — no per-branch work anywhere.
* **last_target** — the same recurrence with the fetch address itself as
  the index (an unbounded, conflict-free table).
* **oracle** — the engine primes it with the actual target immediately
  before every fetch-time ``predict``, so the prediction *is* the target;
  no table replay at all.

Stateful replacement policies (tagged / cascaded / ITTAGE) keep
``vectorizable=False`` and fall back to the stream kernel.

The contract is the stream kernel's, one tier up: bit-identical
:class:`~repro.predictors.engine.PredictionStats` (counters, BTB stats,
mispredict masks) to :func:`~repro.predictors.engine.simulate`, pinned by
``tests/test_vector.py`` across every Table 4/7/9 cell and all eight
workloads.  ``benchmarks/test_vector_speed.py`` guards the >=10x warm
per-cell speedup over :func:`~repro.predictors.streams.simulate_streamed`
on Table 4 cells.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.guest.isa import BranchKind
from repro.obs import get_sink
from repro.predictors.engine import (
    DecodedBranches,
    EngineConfig,
    PredictionStats,
)
from repro.predictors.indexing import IndexScheme
from repro.predictors.registry import registration
from repro.predictors.streams import (
    _N_KINDS,
    BranchStreams,
    StreamConfig,
    build_streams,
    stream_signature,
    streams_supported,
)

__all__ = [
    "vector_supported",
    "simulate_vector",
    "simulate_many_vector",
]


def vector_supported(config: EngineConfig) -> bool:
    """Whether :func:`simulate_vector` can reproduce ``config`` exactly.

    The vector tier sits strictly above the stream kernel: it consumes the
    same :class:`BranchStreams`, so every stream-kernel precondition
    applies, plus the target-cache kind (if any) must declare
    ``vectorizable`` in its registered traits.
    """
    if not streams_supported(config):
        return False
    target_cache = config.target_cache
    if target_cache is None:
        return True
    traits = registration(target_cache.kind).traits
    # The vector kernel only replays routed rows; a predicts_on_btb_miss
    # kind also predicts on BTB-missed rows, which it cannot express.
    return traits.vectorizable and not traits.predicts_on_btb_miss


def _last_write_predictions(
    indices: "npt.NDArray[np.int64]",
    updates: "npt.NDArray[np.bool_]",
    targets: "npt.NDArray[np.int64]",
    positions: "Optional[npt.NDArray[np.int64]]" = None,
) -> Tuple["npt.NDArray[np.bool_]", "npt.NDArray[np.int64]"]:
    """The last-write-per-index recurrence as whole-array passes.

    For each row ``j`` (in subset order): the target stored by the most
    recent update row ``k < j`` with ``indices[k] == indices[j]``, and
    whether such a row exists (a structural hit).  Rows are grouped by
    sorting on (index, position) — within an index group, sorted order
    *is* subset order — then a running maximum over update positions
    finds each row's predecessor; the shift-by-one excludes the row's own
    update, matching the engine's fetch-time-predict / resolve-time-update
    ordering.  ``indices`` must be non-negative; ``positions`` is
    ``arange(n)`` (passed in when the caller has it cached).
    """
    n = len(indices)
    if n == 0:
        empty_valid = np.zeros(0, dtype=bool)
        empty_hits = np.zeros(0, dtype=np.int64)
        return empty_valid, empty_hits
    if positions is None:
        positions = np.arange(n, dtype=np.int64)
    # The sort is the kernel's dominant cost; pick the cheapest stable
    # grouping the index range allows.  Small tables (every Table 4/7
    # geometry) take numpy's radix sort, which is stable and only kicks
    # in for <= 16-bit integers; mid-range indices get stability from the
    # default (faster, unstable) sort via the composite key
    # index*n + position, which ranks by index then original position;
    # anything that could overflow int64 falls back to a stable argsort.
    largest = int(indices.max())
    if largest < (1 << 15):
        order = np.argsort(indices.astype(np.int16), kind="stable")
    elif largest < (1 << 62) // n:
        order = np.argsort(indices * np.int64(n) + positions)
    else:
        order = np.argsort(indices, kind="stable")
    sorted_indices = indices[order]
    update_positions = np.where(updates[order], positions, np.int64(-1))
    last_update = np.maximum.accumulate(update_positions)
    previous = np.empty(n, dtype=np.int64)
    previous[0] = -1
    previous[1:] = last_update[:-1]
    # A predecessor is a real hit only when it lies in the same index
    # group; the running maximum never decreases, so a cross-group
    # predecessor shows up as an index mismatch.  previous == -1 (no
    # update anywhere yet) is clamped to 0 for the gather and rejected by
    # the explicit >= 0 term.
    clamped = np.maximum(previous, 0)
    valid_sorted = (previous >= 0) & (
        sorted_indices[clamped] == sorted_indices
    )
    hits_sorted = targets[order][clamped]
    valid = np.empty(n, dtype=bool)
    hits = np.empty(n, dtype=np.int64)
    valid[order] = valid_sorted
    hits[order] = hits_sorted
    return valid, hits


def simulate_vector(streams: BranchStreams, config: EngineConfig,
                    collect_mask: bool = False) -> PredictionStats:
    """Simulate one cell as whole-array passes over precomputed streams.

    Bit-identical to :func:`repro.predictors.engine.simulate` (and hence
    :func:`~repro.predictors.streams.simulate_streamed`) on the same trace
    and config; requires :func:`vector_supported`.
    """
    if stream_signature(config) != streams.config:
        raise ValueError(
            "config does not project onto these streams; build streams for "
            f"{stream_signature(config)!r}"
        )
    stats = PredictionStats(instructions=streams.instructions)
    executed = streams.executed_by_kind

    variable = np.zeros(_N_KINDS, dtype=np.int64)
    variable_rows: "npt.NDArray[np.int64]" = np.zeros(0, dtype=np.int64)
    if config.target_cache is None:
        # Without a target cache every routed row falls back to the BTB's
        # stored target — the base stream already measured exactly that.
        fixed = streams.base_mispredicts_by_kind
        fixed_rows = streams.base_mispredict_rows
    else:
        fixed = streams.fixed_mispredicts_by_kind
        fixed_rows = streams.fixed_mispredict_rows
        reg = registration(config.target_cache.kind)
        if not reg.traits.vectorizable:
            raise ValueError(
                f"target-cache kind {config.target_cache.kind!r} is not "
                "vectorizable; use simulate_streamed"
            )
        columns = streams.columns()
        routed = columns.routed
        if reg.traits.is_oracle:
            # Primed immediately before every routed predict, the oracle
            # returns the actual target: no table replay needed.
            predicted = columns.targets
        else:
            if reg.traits.needs_history:
                scheme = getattr(reg.factory(config.target_cache),
                                 "scheme", None)
                if not isinstance(scheme, IndexScheme):
                    raise ValueError(
                        f"vectorizable kind {config.target_cache.kind!r} "
                        "with needs_history must expose an IndexScheme "
                        "via a 'scheme' attribute"
                    )
                indices = scheme.index_array(
                    columns.pcs, streams.tc_history_array(config)
                )
            else:
                # last-target family: an unbounded per-pc table — the
                # fetch address is the index.
                indices = columns.pcs
            valid, hits = _last_write_predictions(
                indices, columns.updates, columns.targets, columns.positions
            )
            predicted = np.where(valid, hits, columns.fallbacks)
        mispredicted = routed & (predicted != columns.next_pcs)
        variable = np.bincount(
            columns.kind_values[mispredicted], minlength=_N_KINDS
        )
        variable_rows = columns.rows[mispredicted]

    counters = {kind: stats.counters(kind) for kind in BranchKind}
    for kind in BranchKind:  # repro-lint: ignore[vector-python-loop]
        counter = counters[kind]
        counter.executed = int(executed[kind])
        counter.mispredicted = int(fixed[kind]) + int(variable[kind])
    stats.btb_lookups = streams.btb_lookups
    stats.btb_hits = streams.btb_hits
    if collect_mask:
        mask = np.zeros(streams.instructions, dtype=bool)
        mask[fixed_rows] = True
        mask[variable_rows] = True
        stats.mispredict_mask = mask
    return stats


def simulate_many_vector(
    decoded: DecodedBranches, configs: List[EngineConfig],
    collect_mask: bool = False,
    memo: Optional[Dict[StreamConfig, BranchStreams]] = None,
) -> List[PredictionStats]:
    """Vector-tier counterpart of :func:`simulate_many_streamed`.

    Builds (or reuses, via ``memo``) one :class:`BranchStreams` per
    signature appearing in ``configs``.  Every config must satisfy
    :func:`vector_supported`; mixed sweeps should go through
    :func:`repro.runner.run_cells`, which falls back per cell.
    """
    streams_by_signature = memo if memo is not None else {}
    results: List[PredictionStats] = []
    sink = get_sink()
    for config in configs:  # repro-lint: ignore[vector-python-loop]
        signature = stream_signature(config)
        streams = streams_by_signature.get(signature)
        if streams is None:
            with sink.span("streams.build"):
                streams = build_streams(decoded, signature)
            streams_by_signature[signature] = streams
        else:
            sink.incr("streams.reuse")
        results.append(
            simulate_vector(streams, config, collect_mask=collect_mask)
        )
    return results
