"""Branch-history registers: pattern history and path history (paper §3.1).

Two kinds of history can index a target cache:

* **Pattern history** — "a recording of the last n conditional branches"
  (their taken/not-taken outcomes), the same global branch history register
  the two-level direction predictor maintains, so "no extra hardware is
  required".
* **Path history** — "the target addresses of branches that lead to the
  current branch".  A register of ``bits`` total bits receives
  ``bits_per_target`` low-order bits from each qualifying instruction's
  destination address; since guest instructions are word aligned, the two
  alignment zeros are skipped by default and the paper's Table 5 studies
  which bit offset works best (``address_bit`` here).

Path history comes in a *global* flavour, filtered by the kind of
instruction recorded (Control / Branch / Call-ret / Ind-jmp — paper §3.1),
and a *per-address* flavour where "one path history register is associated
with each distinct static indirect branch" and records that jump's own last
targets.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict

from repro.guest.isa import BranchKind


class PatternHistoryRegister:
    """Global history of conditional-branch outcomes, newest bit lowest."""

    def __init__(self, bits: int) -> None:
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.bits = bits
        self._mask = (1 << bits) - 1
        self.value = 0

    def update(self, taken: bool) -> None:
        self.value = ((self.value << 1) | int(bool(taken))) & self._mask

    def snapshot(self) -> int:
        """Checkpoint for speculative-repair experiments."""
        return self.value

    def restore(self, snapshot: int) -> None:
        self.value = snapshot & self._mask

    def __repr__(self) -> str:
        return f"PatternHistoryRegister(bits={self.bits}, value={self.value:#x})"


class PathFilter(Enum):
    """Which instructions contribute to a global path history (paper §3.1).

    * ``CONTROL`` — every instruction that can redirect the stream;
    * ``BRANCH`` — conditional branches only;
    * ``CALL_RET`` — procedure calls and returns only;
    * ``IND_JMP`` — indirect jumps (and indirect calls) only.
    """

    CONTROL = "control"
    BRANCH = "branch"
    CALL_RET = "call_ret"
    IND_JMP = "ind_jmp"

    def accepts(self, kind: BranchKind) -> bool:
        if self is PathFilter.CONTROL:
            return kind.redirects_stream
        if self is PathFilter.BRANCH:
            return kind is BranchKind.COND_DIRECT
        if self is PathFilter.CALL_RET:
            return kind.is_call or kind is BranchKind.RETURN
        return kind.is_predicted_by_target_cache  # IND_JMP


class PathHistoryRegister:
    """Fixed-width shift register of destination-address fragments.

    Each qualifying instruction shifts ``bits_per_target`` bits of its
    destination address (the address the instruction stream actually went
    to) into the register, after discarding ``address_bit`` low bits.  The
    paper records taken targets; for a not-taken conditional branch the
    destination is the fall-through address, which still identifies the path
    (Nair-style path history).
    """

    def __init__(self, bits: int, bits_per_target: int = 1, address_bit: int = 2,
                 path_filter: PathFilter = PathFilter.CONTROL) -> None:
        if bits <= 0:
            raise ValueError("bits must be positive")
        if not 1 <= bits_per_target <= bits:
            raise ValueError("bits_per_target must be in [1, bits]")
        if address_bit < 0:
            raise ValueError("address_bit must be non-negative")
        self.bits = bits
        self.bits_per_target = bits_per_target
        self.address_bit = address_bit
        self.path_filter = path_filter
        self._mask = (1 << bits) - 1
        self._target_mask = (1 << bits_per_target) - 1
        self.value = 0

    @property
    def targets_recorded(self) -> int:
        """How many past destinations the register can distinguish."""
        return self.bits // self.bits_per_target

    def update(self, kind: BranchKind, destination: int,
               redirected: bool = True) -> None:
        """Record ``destination`` if ``kind`` passes the filter.

        ``redirected`` is False for a not-taken conditional branch: the
        paper's path history records *target addresses*, so a branch that
        falls through contributes nothing.
        """
        if not redirected or not self.path_filter.accepts(kind):
            return
        fragment = (destination >> self.address_bit) & self._target_mask
        self.value = ((self.value << self.bits_per_target) | fragment) & self._mask

    def force_update(self, destination: int) -> None:
        """Record unconditionally (used by the per-address scheme)."""
        fragment = (destination >> self.address_bit) & self._target_mask
        self.value = ((self.value << self.bits_per_target) | fragment) & self._mask

    def snapshot(self) -> int:
        return self.value

    def restore(self, snapshot: int) -> None:
        self.value = snapshot & self._mask

    def __repr__(self) -> str:
        return (
            f"PathHistoryRegister(bits={self.bits}, "
            f"bits_per_target={self.bits_per_target}, "
            f"address_bit={self.address_bit}, filter={self.path_filter.value})"
        )


class PerAddressPathHistory:
    """One path-history register per static indirect branch (paper §3.1).

    "Each n-bit path history register records the last k target addresses
    for the associated indirect jump" — i.e. the register for jump *J* holds
    fragments of *J*'s own previous targets.
    """

    def __init__(self, bits: int, bits_per_target: int = 1, address_bit: int = 2) -> None:
        self.bits = bits
        self.bits_per_target = bits_per_target
        self.address_bit = address_bit
        self._registers: Dict[int, PathHistoryRegister] = {}

    def _register_for(self, pc: int) -> PathHistoryRegister:
        register = self._registers.get(pc)
        if register is None:
            register = PathHistoryRegister(
                self.bits, self.bits_per_target, self.address_bit
            )
            self._registers[pc] = register
        return register

    def value(self, pc: int) -> int:
        register = self._registers.get(pc)
        return register.value if register is not None else 0

    def update(self, pc: int, target: int) -> None:
        """Record the resolved target of the indirect jump at ``pc``."""
        self._register_for(pc).force_update(target)

    @property
    def tracked_jumps(self) -> int:
        return len(self._registers)
