"""Branch target buffer with the paper's two target-update strategies.

The baseline predictor of the paper's Table 1: a 256-set, 4-way
set-associative BTB.  "The BTB stores the fall-through and taken address for
each branch.  For indirect jumps, the taken address is the last computed
target for the indirect jump" — which is exactly why BTBs mispredict
polymorphic indirect jumps.

Two target-update strategies are implemented (paper §2, Table 2):

* ``DEFAULT`` — update the stored target on every indirect-jump
  misprediction;
* ``TWO_BIT`` — Calder & Grunwald's hysteresis: "does not update a BTB
  entry's target address until two consecutive predictions with that target
  address are incorrect".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.guest.isa import INSTRUCTION_BYTES, BranchKind


class UpdateStrategy(Enum):
    """Target-update policy for indirect branches."""

    DEFAULT = "default"
    TWO_BIT = "two_bit"


@dataclass
class BTBEntry:
    """One BTB way: tag plus the prediction payload.

    ``target`` is the taken address (for indirect branches, the last
    committed target under the active update strategy); ``fallthrough`` is
    stored so calls can push their return address (paper §1); ``kind`` lets
    the fetch engine route the branch to the right target source.
    ``miss_streak`` is the consecutive-misprediction counter used by the
    2-bit strategy.
    """

    tag: int
    target: int
    fallthrough: int
    kind: BranchKind
    miss_streak: int = 0


class BranchTargetBuffer:
    """Set-associative BTB with true-LRU replacement.

    Entries are allocated for every executed branch (taken or not), matching
    the paper's per-branch storage of both addresses.  Lookup is by fetch
    address; a hit tells the fetch engine the instruction is a branch, its
    kind, and the stored target.
    """

    def __init__(self, sets: int = 256, ways: int = 4,
                 strategy: UpdateStrategy = UpdateStrategy.DEFAULT) -> None:
        if sets <= 0 or sets & (sets - 1):
            raise ValueError("sets must be a positive power of two")
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.sets = sets
        self.ways = ways
        self.strategy = strategy
        self._set_mask = sets - 1
        self._set_bits = sets.bit_length() - 1
        # Each set is an insertion-ordered dict tag -> BTBEntry; the first
        # key is the LRU victim.  Hits reinsert to refresh recency.
        self._storage: List[Dict[int, BTBEntry]] = [dict() for _ in range(sets)]
        self.lookups = 0
        self.hits = 0

    def _locate(self, pc: int) -> Tuple[Dict[int, BTBEntry], int]:
        word = pc // INSTRUCTION_BYTES
        return self._storage[word & self._set_mask], word >> self._set_bits

    def lookup(self, pc: int) -> Optional[BTBEntry]:
        """Return the entry for ``pc`` (refreshing LRU), or ``None``."""
        bucket, tag = self._locate(pc)
        self.lookups += 1
        entry = bucket.get(tag)
        if entry is None:
            return None
        self.hits += 1
        del bucket[tag]  # refresh recency: reinsert as newest
        bucket[tag] = entry
        return entry

    def update(self, pc: int, kind: BranchKind, target: int,
               predicted_target_correct: bool = True) -> None:
        """Record the resolved branch at ``pc``.

        ``target`` is the computed taken-target of this execution.
        ``predicted_target_correct`` reports whether the *stored* target
        would have been (or was) correct; the 2-bit strategy needs it to
        count consecutive misses.
        """
        bucket, tag = self._locate(pc)
        entry = bucket.get(tag)
        if entry is None:
            if len(bucket) >= self.ways:
                oldest_tag = next(iter(bucket))
                del bucket[oldest_tag]
            bucket[tag] = BTBEntry(
                tag=tag,
                target=target,
                fallthrough=pc + INSTRUCTION_BYTES,
                kind=kind,
            )
            return
        del bucket[tag]
        bucket[tag] = entry  # refresh recency
        entry.kind = kind
        if not kind.is_indirect:
            # Direct branches have a single static target; keep it current
            # (it never actually changes, but re-writing is harmless).
            entry.target = target
            return
        if predicted_target_correct:
            entry.miss_streak = 0
            return
        if self.strategy is UpdateStrategy.DEFAULT:
            entry.target = target
        else:  # TWO_BIT: replace only on the second consecutive miss
            if entry.miss_streak >= 1:
                entry.target = target
                entry.miss_streak = 0
            else:
                entry.miss_streak += 1

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def occupancy(self) -> int:
        """Number of valid entries (for tests)."""
        return sum(len(bucket) for bucket in self._storage)
