"""Fetch-engine composite and the trace-driven prediction simulator.

This module wires the structures together exactly as the paper's §3
describes: "during instruction fetch, the BTB and the target cache are
examined concurrently.  If the BTB detects an indirect branch, then the
selected target cache entry is used for target prediction.  When the
indirect branch is resolved, the target cache entry is updated with its
target address."

Per dynamic branch the engine:

1. looks up the BTB; a miss predicts fall-through (the fetch hardware does
   not know the instruction is a branch);
2. on a hit, routes by the stored branch kind — conditional branches go to
   the two-level direction predictor, returns to the RAS, direct jumps and
   calls to the BTB target, and indirect jumps/calls to the target cache
   (falling back to the BTB's last-target on a target-cache structural
   miss);
3. at resolve time updates, in order: the direction predictor (with the
   same history used to predict), the shared pattern history register, the
   global path history register, the per-address path history, the target
   cache (with the history value captured at prediction time — "the target
   cache is accessed again using index A"), the BTB, and the RAS.

The simulation is in retire order with no wrong-path pollution; for the
non-speculative sweeps of the paper's tables the fetch-time and retire-time
history contents coincide.  The speculative-update variant is exercised by
the cycle-stepped pipeline model (``repro.pipeline.core``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np
import numpy.typing as npt

import repro.predictors.spec as spec_codec
from repro.guest.isa import INSTRUCTION_BYTES, BranchKind
from repro.predictors.btb import BranchTargetBuffer, UpdateStrategy
from repro.predictors.direction import DirectionConfig, DirectionPredictor
from repro.predictors.history import (
    PathFilter,
    PathHistoryRegister,
    PatternHistoryRegister,
    PerAddressPathHistory,
)
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.registry import registration
from repro.predictors.spec import Spec
from repro.predictors.target_cache import TargetCacheConfig, TargetPredictor
from repro.trace.trace import Trace


#: value -> BranchKind, indexable by the raw uint8 stored in a trace row.
#: Hot loops use this instead of calling the ``BranchKind`` constructor per
#: dynamic branch (enum ``__call__`` is a by-value hash lookup plus a
#: function call; a tuple index is ~10x cheaper).
KIND_BY_VALUE = tuple(BranchKind(value) for value in range(max(BranchKind) + 1))

#: Kinds the paper routes through the target cache (module-level so the
#: per-branch test is a frozenset membership, not an enum property call).
_TARGET_CACHE_KINDS = frozenset(
    {BranchKind.CALL_INDIRECT, BranchKind.IND_JUMP}
)
_CALL_KINDS = frozenset({BranchKind.CALL_DIRECT, BranchKind.CALL_INDIRECT})


class HistorySource(Enum):
    """Which history value indexes the target cache (paper §3.1)."""

    PATTERN = "pattern"
    PATH_GLOBAL = "path_global"
    PATH_PER_ADDRESS = "path_per_address"


@dataclass(frozen=True)
class HistoryConfig:
    """History supplied to the target cache.

    ``bits`` is the register width.  For path histories,
    ``bits_per_target`` and ``address_bit`` control how many bits of each
    destination address are recorded and from which bit position (paper
    Tables 5 and 6); ``path_filter`` selects the global variant (paper
    §3.1: Control / Branch / Call-ret / Ind-jmp).
    """

    source: HistorySource = HistorySource.PATTERN
    bits: int = 9
    bits_per_target: int = 1
    address_bit: int = 2
    path_filter: PathFilter = PathFilter.CONTROL

    def describe(self) -> str:
        if self.source is HistorySource.PATTERN:
            return f"pattern({self.bits})"
        if self.source is HistorySource.PATH_PER_ADDRESS:
            return f"path-per-addr({self.bits}b/{self.bits_per_target}bpt)"
        return (
            f"path-{self.path_filter.value}({self.bits}b/"
            f"{self.bits_per_target}bpt@{self.address_bit})"
        )

    def to_spec(self) -> Spec:
        """Lossless JSON-ready rendering (see :mod:`repro.predictors.spec`)."""
        return spec_codec.to_spec(self)

    @classmethod
    def from_spec(cls, spec: Mapping[str, object]) -> "HistoryConfig":
        """Build a config from a (possibly partial) spec dict."""
        return spec_codec.from_spec(cls, spec)


@dataclass(frozen=True)
class EngineConfig:
    """Full fetch-engine configuration for one experiment cell."""

    btb_sets: int = 256
    btb_ways: int = 4
    btb_strategy: UpdateStrategy = UpdateStrategy.DEFAULT
    direction: DirectionConfig = field(default_factory=DirectionConfig)
    ras_depth: int = 32
    target_cache: Optional[TargetCacheConfig] = None
    history: HistoryConfig = field(default_factory=HistoryConfig)
    #: Ablation: route returns through the target cache instead of the RAS
    #: (the paper's footnote 1 argues this is unnecessary).
    target_cache_handles_returns: bool = False

    def to_spec(self) -> Spec:
        """Lossless JSON-ready rendering (see :mod:`repro.predictors.spec`).

        The result-cache key (:func:`repro.runner.keys.cell_key`) is built
        from this spec, and ``repro sweep --spec`` files contain exactly
        this shape under each cell's ``"engine"`` key.
        """
        return spec_codec.to_spec(self)

    @classmethod
    def from_spec(cls, spec: Mapping[str, object]) -> "EngineConfig":
        """Build a config from a (possibly partial) spec dict."""
        return spec_codec.from_spec(cls, spec)


@dataclass
class KindCounters:
    executed: int = 0
    mispredicted: int = 0

    @property
    def rate(self) -> float:
        return self.mispredicted / self.executed if self.executed else 0.0


@dataclass
class PredictionStats:
    """Outcome of one trace-driven prediction run."""

    instructions: int = 0
    per_kind: Dict[BranchKind, KindCounters] = field(default_factory=dict)
    btb_lookups: int = 0
    btb_hits: int = 0
    #: per-instruction mask aligned to the full trace: True where this
    #: instruction's next-pc was mispredicted (consumed by the timing model)
    mispredict_mask: Optional["npt.NDArray[np.bool_]"] = None

    def counters(self, kind: BranchKind) -> KindCounters:
        return self.per_kind.setdefault(kind, KindCounters())

    @property
    def branches(self) -> int:
        return sum(c.executed for c in self.per_kind.values())

    @property
    def branch_mispredictions(self) -> int:
        return sum(c.mispredicted for c in self.per_kind.values())

    @property
    def indirect_jumps(self) -> int:
        return (
            self.counters(BranchKind.IND_JUMP).executed
            + self.counters(BranchKind.CALL_INDIRECT).executed
        )

    @property
    def indirect_mispredictions(self) -> int:
        return (
            self.counters(BranchKind.IND_JUMP).mispredicted
            + self.counters(BranchKind.CALL_INDIRECT).mispredicted
        )

    @property
    def indirect_mispred_rate(self) -> float:
        executed = self.indirect_jumps
        return self.indirect_mispredictions / executed if executed else 0.0

    @property
    def conditional_mispred_rate(self) -> float:
        return self.counters(BranchKind.COND_DIRECT).rate

    @property
    def overall_mispred_rate(self) -> float:
        branches = self.branches
        return self.branch_mispredictions / branches if branches else 0.0


class FetchEngine:
    """Stateful composite of all prediction structures.

    Use :func:`simulate` to run a whole trace; the engine itself exposes
    :meth:`process_branch` so the cycle-stepped pipeline can drive it one
    branch at a time with speculative history management.
    """

    def __init__(self, config: EngineConfig) -> None:
        self.config = config
        self.btb = BranchTargetBuffer(
            sets=config.btb_sets, ways=config.btb_ways, strategy=config.btb_strategy
        )
        self.direction = DirectionPredictor(config.direction)
        self.ras = ReturnAddressStack(depth=config.ras_depth)
        self.target_cache: Optional[TargetPredictor] = None
        self._oracle = False
        self._backstop = False
        if config.target_cache is not None:
            reg = registration(config.target_cache.kind)
            self.target_cache = reg.factory(config.target_cache)
            self._oracle = reg.traits.is_oracle
            self._backstop = reg.traits.predicts_on_btb_miss
        history = config.history
        pattern_bits = max(config.direction.history_bits, history.bits)
        self.pattern_history = PatternHistoryRegister(pattern_bits)
        self.path_history = PathHistoryRegister(
            bits=history.bits,
            bits_per_target=history.bits_per_target,
            address_bit=history.address_bit,
            path_filter=history.path_filter,
        )
        self.per_address_history = PerAddressPathHistory(
            bits=history.bits,
            bits_per_target=history.bits_per_target,
            address_bit=history.address_bit,
        )
        # Hot-loop precomputation: the set of kinds this engine routes to
        # the target cache never changes after construction, so the
        # per-branch dispatch is a frozenset membership instead of a chain
        # of attribute lookups and property calls.
        self._tc_handles_returns = config.target_cache_handles_returns
        if self.target_cache is None:
            self._tc_kinds: frozenset = frozenset()
        elif self._tc_handles_returns:
            self._tc_kinds = _TARGET_CACHE_KINDS | {BranchKind.RETURN}
        else:
            self._tc_kinds = _TARGET_CACHE_KINDS
        self._history_source = history.source

    # ------------------------------------------------------------------
    def target_cache_history(self, pc: int) -> int:
        """The history value that indexes the target cache for jump ``pc``."""
        source = self._history_source
        if source is HistorySource.PATTERN:
            return self.pattern_history.value
        if source is HistorySource.PATH_GLOBAL:
            return self.path_history.value
        return self.per_address_history.value(pc)

    def _uses_target_cache(self, kind: BranchKind) -> bool:
        return kind in self._tc_kinds

    # ------------------------------------------------------------------
    def process_branch(self, pc: int, kind: BranchKind, taken: bool,
                       target: int, next_pc: int) -> bool:
        """Predict and then resolve one dynamic branch; return mispredict.

        ``target`` is the computed taken-target, ``next_pc`` the address
        actually executed next.
        """
        fallthrough = pc + INSTRUCTION_BYTES
        entry = self.btb.lookup(pc)
        history_for_tc = 0
        popped_ras = False

        if entry is None:
            if self._backstop and kind in self._tc_kinds and (
                cache := self.target_cache
            ) is not None:
                # A predicts_on_btb_miss kind (two-level BTB) still
                # identifies the branch when the primary BTB misses: its
                # backing level is pc-tagged, so it only answers for
                # indirect jumps it was trained on.  Prediction-only — no
                # BTB/RAS/history state changes.  The history argument is
                # contractually ignored (needs_history=False, enforced by
                # the trait-contract lint rule).
                guess = cache.predict(pc, 0)
                predicted = guess if guess is not None else fallthrough
            else:
                predicted = fallthrough
        else:
            entry_kind = entry.kind
            if entry_kind is BranchKind.COND_DIRECT:
                if self.direction.predict(pc, self.pattern_history.value):
                    predicted = entry.target
                else:
                    predicted = fallthrough
            elif entry_kind is BranchKind.RETURN and not self._tc_handles_returns:
                popped = self.ras.pop()
                popped_ras = True
                predicted = popped if popped is not None else fallthrough
            elif entry_kind in self._tc_kinds and (
                cache := self.target_cache
            ) is not None:
                history_for_tc = self.target_cache_history(pc)
                if self._oracle:
                    cache.prime(target)
                guess = cache.predict(pc, history_for_tc)
                predicted = guess if guess is not None else entry.target
            else:
                # Direct jumps/calls, and indirect ones without a target
                # cache: the BTB's stored (last) target.
                predicted = entry.target
            if entry_kind in _CALL_KINDS:
                self.ras.push(entry.fallthrough)

        mispredicted = predicted != next_pc

        # ----- resolve-time updates, in the order listed in the module doc
        if kind is BranchKind.COND_DIRECT:
            self.direction.update(pc, self.pattern_history.value, taken)
            self.pattern_history.update(taken)
        self.path_history.update(kind, next_pc, redirected=taken)
        if kind in _TARGET_CACHE_KINDS:
            self.per_address_history.update(pc, target)
        if kind in self._tc_kinds and (cache := self.target_cache) is not None:
            if entry is None:
                # The BTB did not identify the jump, so no fetch-time access
                # happened; index with the history as of now (identical in
                # this in-order simulation).
                history_for_tc = self.target_cache_history(pc)
            cache.update(pc, history_for_tc, target)
        if kind is BranchKind.RETURN and not popped_ras:
            # The BTB missed on this return, so fetch never consumed the
            # RAS; consume it now to keep call/return pairing balanced.
            self.ras.pop()
        if kind in _CALL_KINDS and entry is None:
            self.ras.push(fallthrough)
        stored_target_correct = entry is not None and entry.target == target
        self.btb.update(pc, kind, target, predicted_target_correct=stored_target_correct)
        return mispredicted


class DecodedBranches:
    """Branch rows of one trace, pre-extracted into plain Python lists.

    Decoding (boolean scan, fancy indexing, numpy-scalar unboxing, enum
    conversion) is identical for every :class:`EngineConfig`, so sweeps that
    simulate the same trace under many configs should decode once via
    :func:`decode_branches` and pass the result to :func:`simulate` — or use
    :func:`simulate_many`, which does exactly that.
    """

    __slots__ = ("instructions", "rows", "pcs", "kinds", "takens",
                 "targets", "next_pcs")

    def __init__(self, instructions: int, rows: List[int], pcs: List[int],
                 kinds: List[BranchKind], takens: List[bool],
                 targets: List[int], next_pcs: List[int]) -> None:
        self.instructions = instructions
        self.rows = rows
        self.pcs = pcs
        self.kinds = kinds
        self.takens = takens
        self.targets = targets
        self.next_pcs = next_pcs


def decode_branches(trace: Trace) -> DecodedBranches:
    """Extract ``trace``'s branch rows into loop-ready Python lists."""
    branch_rows = np.flatnonzero(trace.is_branch)
    kind_table = KIND_BY_VALUE
    return DecodedBranches(
        instructions=len(trace),
        rows=branch_rows.tolist(),
        pcs=trace.pc[branch_rows].tolist(),
        kinds=[kind_table[v] for v in trace.branch_kind[branch_rows].tolist()],
        takens=trace.taken[branch_rows].tolist(),
        targets=trace.target[branch_rows].tolist(),
        next_pcs=trace.next_pc_array()[branch_rows].tolist(),
    )


def simulate(trace: Trace, config: EngineConfig,
             collect_mask: bool = False,
             decoded: Optional[DecodedBranches] = None) -> PredictionStats:
    """Run ``trace`` through a fresh :class:`FetchEngine`.

    Only control-flow rows touch predictor state, so the loop walks just
    those; ``collect_mask=True`` additionally materialises the full-length
    per-instruction mispredict mask the timing model needs.  ``decoded``
    lets callers sweeping many configs over one trace amortise the row
    decode (see :func:`simulate_many`).
    """
    if decoded is None:
        decoded = decode_branches(trace)
    engine = FetchEngine(config)
    stats = PredictionStats(instructions=decoded.instructions)
    mask = np.zeros(decoded.instructions, dtype=bool) if collect_mask else None

    process = engine.process_branch
    counters = {kind: stats.counters(kind) for kind in BranchKind}
    for row, pc, kind, taken, target, next_pc in zip(
        decoded.rows, decoded.pcs, decoded.kinds, decoded.takens,
        decoded.targets, decoded.next_pcs
    ):
        mispredicted = process(pc, kind, taken, target, next_pc)
        counter = counters[kind]
        counter.executed += 1
        if mispredicted:
            counter.mispredicted += 1
            if mask is not None:
                mask[row] = True

    stats.btb_lookups = engine.btb.lookups
    stats.btb_hits = engine.btb.hits
    stats.mispredict_mask = mask
    return stats


def simulate_many(trace: Trace, configs: Sequence[EngineConfig],
                  collect_mask: bool = False) -> List[PredictionStats]:
    """Simulate ``trace`` under each config, decoding the trace only once.

    The sweep fast path: re-slicing the trace per cell costs a full pass
    over the instruction array plus per-branch enum construction, all of it
    config-independent.  Results are bit-identical to independent
    :func:`simulate` calls (each config still gets a fresh engine).
    """
    decoded = decode_branches(trace)
    return [
        simulate(trace, config, collect_mask=collect_mask, decoded=decoded)
        for config in configs
    ]
