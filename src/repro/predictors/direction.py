"""Two-level adaptive direction predictors for conditional branches.

The paper's machine model predicts conditional branches with a two-level
predictor (Yeh & Patt); the target cache then reuses the predictor's global
branch history register (§3.1: "The target cache can use the branch
predictor's branch history register").  This module provides the pattern
history table itself: 2-bit saturating counters indexed by any
:class:`~repro.predictors.indexing.IndexScheme`, plus a per-address (PAs)
variant for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.predictors.indexing import IndexScheme, parse_scheme

#: 2-bit saturating counter states; >= _TAKEN_THRESHOLD predicts taken.
_COUNTER_MAX = 3
_TAKEN_THRESHOLD = 2
_INITIAL_COUNTER = 2  # weakly taken, conventional initialisation


@dataclass(frozen=True)
class DirectionConfig:
    """Configuration for the conditional-branch direction predictor.

    ``scheme`` is ``"gag"``, ``"gas"``, ``"gshare"``, or ``"pas"``.  For
    ``"pas"``, ``history_bits`` sizes the per-branch history registers and
    ``address_bits`` sizes the number of pattern tables.
    """

    scheme: str = "gshare"
    history_bits: int = 12
    address_bits: int = 0

    def build(self) -> "DirectionPredictor":
        return DirectionPredictor(self)


class DirectionPredictor:
    """Pattern-history-table predictor with 2-bit counters.

    The global history register is *owned by the caller* (the fetch engine)
    and passed into :meth:`predict`/:meth:`update`, because the paper shares
    one physical register between the direction predictor and the target
    cache.  The PAs variant keeps its own per-address history registers
    internally.
    """

    def __init__(self, config: DirectionConfig) -> None:
        self.config = config
        lowered = config.scheme.lower()
        self._per_address = lowered == "pas"
        if self._per_address:
            self._index_scheme: IndexScheme = parse_scheme(
                "gas", config.history_bits, config.address_bits
            )
            self._local_history: Dict[int, int] = {}
            self._local_mask = (1 << config.history_bits) - 1
        else:
            self._index_scheme = parse_scheme(
                lowered, config.history_bits, config.address_bits
            )
        self._counters: List[int] = [_INITIAL_COUNTER] * self._index_scheme.table_size

    @property
    def table_size(self) -> int:
        return self._index_scheme.table_size

    def _history_for(self, pc: int, global_history: int) -> int:
        if self._per_address:
            return self._local_history.get(pc, 0)
        return global_history

    def predict(self, pc: int, global_history: int) -> bool:
        """Predict taken/not-taken for the conditional branch at ``pc``."""
        history = self._history_for(pc, global_history)
        index = self._index_scheme.index(pc, history)
        return self._counters[index] >= _TAKEN_THRESHOLD

    def update(self, pc: int, global_history: int, taken: bool) -> None:
        """Train the counter that produced the prediction.

        Must be called with the same ``global_history`` value used at
        :meth:`predict` time (the fetch engine guarantees this by updating
        the shared history register after the predictor).
        """
        history = self._history_for(pc, global_history)
        index = self._index_scheme.index(pc, history)
        counter = self._counters[index]
        if taken:
            if counter < _COUNTER_MAX:
                self._counters[index] = counter + 1
        else:
            if counter > 0:
                self._counters[index] = counter - 1
        if self._per_address:
            self._local_history[pc] = (
                (history << 1) | int(bool(taken))
            ) & self._local_mask
