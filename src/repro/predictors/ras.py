"""Return address stack.

The paper excludes returns from the target cache "because they are
effectively handled with the return address stack" (footnote 1, citing Webb
and Kaeli/Emma).  This is that structure: a fixed-depth hardware stack; calls
push their fall-through address, returns pop the prediction.  On overflow the
oldest entry is dropped (circular behaviour), which is how real RAS hardware
degrades on deep recursion.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional


class ReturnAddressStack:
    """Fixed-depth stack of return addresses."""

    def __init__(self, depth: int = 32) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: Deque[int] = deque(maxlen=depth)
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        """Record the fall-through address of a call."""
        self._stack.append(return_address)
        self.pushes += 1

    def pop(self) -> Optional[int]:
        """Predict the target of a return; ``None`` on underflow."""
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)

    def clear(self) -> None:
        self._stack.clear()
