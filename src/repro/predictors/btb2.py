"""Two-level BTB: a small L1 backed by a large last-level BTB.

The paper's capacity regime is benign — eight SPEC-like traces fit their
working sets comfortably inside a 256-set x 4-way BTB, so indirect
mispredicts come from target *polymorphism*, not from the BTB forgetting
the branch existed.  Server-scale code footprints invert that: thousands
of static branch sites thrash a first-level BTB long before any target
cache gets a say, and every capacity eviction turns into a fall-through
mispredict.  *Micro BTB* and the FDIP line of work (see PAPERS.md) answer
with hierarchy: a tiny fast L1 BTB backed by a large last-level BTB, with
L1 misses triggering a probe (and prefetch-fill) of the backing level.

:class:`TwoLevelBTB` models that structure as a registered target-cache
kind (``kind="btb2"``).  Its registration sets the
``predicts_on_btb_miss`` trait, so the fetch engine consults it even when
the primary BTB missed — the last-level BTB is precisely the structure
that still identifies the branch in that case.  Both levels are pc-indexed
set-associative true-LRU arrays (the same insertion-ordered-dict idiom as
:class:`~repro.predictors.btb.BranchTargetBuffer`); ``history`` is
ignored, declared via ``needs_history=False``.

Prediction semantics, per fetch of an indirect jump at ``pc``:

* L1 hit — predict the stored target (and refresh L1 recency);
* L1 miss, L2 hit — prefetch-fill the entry into L1 and predict the L2
  target (this retire-order model charges no fetch bubble for the slower
  level; the capacity story is about mispredicts, not L2 latency);
* both miss — structural miss (``None``): the engine falls back to the
  primary BTB's stored target, or to fall-through when that missed too.

Updates write through both levels (the hierarchy is inclusive), replacing
the stored target unconditionally — last-target semantics, like the
baseline BTB's ``DEFAULT`` strategy.  ``l2_entries=0`` disables the
backing level entirely, giving an L1-only baseline for capacity sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.guest.isa import INSTRUCTION_BYTES
from repro.predictors.target_cache.base import TargetPredictor

__all__ = ["TwoLevelBTB"]


class _BTBLevel:
    """One pc-indexed set-associative target array with true-LRU sets.

    Each set is an insertion-ordered dict ``tag -> target``; the first key
    is the LRU victim and hits reinsert to refresh recency (the same idiom
    as :class:`~repro.predictors.btb.BranchTargetBuffer`).
    """

    def __init__(self, entries: int, assoc: int) -> None:
        if assoc <= 0:
            raise ValueError("assoc must be positive")
        if entries <= 0 or entries % assoc:
            raise ValueError("entries must be a positive multiple of assoc")
        sets = entries // assoc
        if sets & (sets - 1):
            raise ValueError("entries/assoc must be a power of two")
        self.entries = entries
        self.assoc = assoc
        self.sets = sets
        self._set_mask = sets - 1
        self._set_bits = sets.bit_length() - 1
        self._storage: List[Dict[int, int]] = [dict() for _ in range(sets)]

    def lookup(self, word: int) -> Optional[int]:
        """Stored target for instruction-word ``word`` (refreshing LRU)."""
        bucket = self._storage[word & self._set_mask]
        tag = word >> self._set_bits
        target = bucket.get(tag)
        if target is None:
            return None
        del bucket[tag]  # refresh recency: reinsert as newest
        bucket[tag] = target
        return target

    def insert(self, word: int, target: int) -> None:
        """Store ``target`` for ``word``, evicting LRU on a full set."""
        bucket = self._storage[word & self._set_mask]
        tag = word >> self._set_bits
        if tag in bucket:
            del bucket[tag]
        elif len(bucket) >= self.assoc:
            del bucket[next(iter(bucket))]
        bucket[tag] = target

    def occupancy(self) -> int:
        """Number of valid entries (for tests)."""
        return sum(len(bucket) for bucket in self._storage)

    def reset(self) -> None:
        for bucket in self._storage:
            bucket.clear()


class TwoLevelBTB(TargetPredictor):
    """Small L1 BTB backed by a large last-level BTB (``kind="btb2"``).

    ``entries``/``assoc`` size the L1, ``l2_entries``/``l2_assoc`` the
    backing level; ``l2_entries=0`` disables it.  ``history`` is ignored
    (the registration declares ``needs_history=False``).  The per-level
    hit counters feed the capacity-story columns of
    :mod:`repro.experiments.server_btb`.
    """

    def __init__(self, entries: int = 64, assoc: int = 4,
                 l2_entries: int = 4096, l2_assoc: int = 8) -> None:
        if l2_entries < 0:
            raise ValueError("l2_entries must be >= 0 (0 disables the L2)")
        self._l1 = _BTBLevel(entries, assoc)
        self._l2: Optional[_BTBLevel] = (
            _BTBLevel(l2_entries, l2_assoc) if l2_entries else None
        )
        self.lookups = 0
        self.l1_hits = 0
        self.l2_hits = 0

    # ------------------------------------------------------------------
    def predict(self, pc: int, history: int) -> Optional[int]:
        word = pc // INSTRUCTION_BYTES
        self.lookups += 1
        target = self._l1.lookup(word)
        if target is not None:
            self.l1_hits += 1
            return target
        l2 = self._l2
        if l2 is not None:
            target = l2.lookup(word)
            if target is not None:
                self.l2_hits += 1
                # miss-triggered prefetch: fill the L1 from the last level
                self._l1.insert(word, target)
                return target
        return None

    def update(self, pc: int, history: int, target: int) -> None:
        word = pc // INSTRUCTION_BYTES
        self._l1.insert(word, target)
        if self._l2 is not None:
            self._l2.insert(word, target)

    def reset(self) -> None:
        self._l1.reset()
        if self._l2 is not None:
            self._l2.reset()
        self.lookups = 0
        self.l1_hits = 0
        self.l2_hits = 0

    # ------------------------------------------------------------------
    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.lookups if self.lookups else 0.0

    @property
    def l2_hit_rate(self) -> float:
        """Fraction of all lookups served by the backing level."""
        return self.l2_hits / self.lookups if self.lookups else 0.0
