"""Stream-factored sweep kernel: per-trace precomputation shared by cells.

The paper's experiment matrix (Tables 4-9, Figures 12-13) sweeps dozens of
target-cache configurations over the same eight traces.  In the retire-order
non-speculative simulation of :func:`repro.predictors.engine.simulate`, the
BTB, the RAS, the direction predictor, and every history register evolve as
functions of the *trace and the base config only* — the target cache merely
reads history values and produces predictions, and nothing about its
contents ever feeds back into the other structures (the BTB trains on
``entry.target == target``, the RAS on BTB routing, the histories on retired
control flow).  This module exploits that invariance:

* :func:`stream_signature` projects an :class:`EngineConfig` onto the
  fields the shared streams depend on (:class:`StreamConfig`): BTB
  geometry/strategy, direction config, RAS depth, and the
  returns-through-target-cache ablation flag.  Everything else — the whole
  target-cache design space and the history *widths* — varies freely
  between cells sharing one stream set.
* :func:`build_streams` walks the decoded trace once per signature and
  materialises :class:`BranchStreams`: NumPy arrays of per-branch BTB
  hit/kind/stored-target and routing outcomes, mispredict outcomes of every
  branch the target cache cannot influence, and — lazily, per history
  variant actually requested — the 64-bit-wide pattern / global-path /
  per-address path history value each target-cache access would see.
* :func:`simulate_streamed` consumes the streams for one cell: it loops
  over just the target-cache-relevant subset of branches (typically a few
  percent), driving the real target-cache object with exactly the
  ``predict``/``update``/``prime`` call sequence the reference engine would
  issue, then assembles :class:`PredictionStats` bit-identical to
  :func:`~repro.predictors.engine.simulate`.

History widths are handled with a suffix trick: every history register here
is a shift register, so the low ``bits`` bits of a 64-bit-wide register
equal the value of a ``bits``-wide register fed the same updates.  One wide
stream therefore serves every requested width up to 64
(:func:`streams_supported` gates the rest back to the reference engine).

The reference :func:`~repro.predictors.engine.simulate` stays the oracle:
``tests/test_streams.py`` asserts bit-identical stats and mispredict masks
across workloads, configs, and hypothesis-generated ``EngineConfig``s.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import repeat
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.guest.isa import INSTRUCTION_BYTES, BranchKind
from repro.obs import get_sink
from repro.predictors.btb import BranchTargetBuffer, UpdateStrategy
from repro.predictors.direction import DirectionConfig, DirectionPredictor
from repro.predictors.engine import (
    _CALL_KINDS,
    _TARGET_CACHE_KINDS,
    DecodedBranches,
    EngineConfig,
    HistorySource,
    PredictionStats,
)
from repro.predictors.history import PathFilter
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.registry import registration

#: Width of the shared wide history registers.  Any cell needing more bits
#: than this falls back to the reference engine (see streams_supported).
WIDE_HISTORY_BITS = 64
_WIDE_MASK = (1 << WIDE_HISTORY_BITS) - 1

#: Per-subset-row history selection: which register snapshot the engine
#: would hand the target cache.
_SEL_PRE = 0    #: fetch-time value (BTB identified the jump)
_SEL_POST = 1   #: resolve-time value after this branch's own updates
_SEL_ZERO = 2   #: engine quirk: BTB hit with a stale non-indirect kind

#: Branch-kind *values* (ints) accepted by each global path-history filter,
#: mirroring PathFilter.accepts without per-branch enum property calls.
_FILTER_KIND_VALUES: Dict[PathFilter, Tuple[int, ...]] = {
    PathFilter.CONTROL: tuple(
        int(kind) for kind in BranchKind if kind is not BranchKind.NOT_BRANCH
    ),
    PathFilter.BRANCH: (int(BranchKind.COND_DIRECT),),
    PathFilter.CALL_RET: (
        int(BranchKind.CALL_DIRECT),
        int(BranchKind.CALL_INDIRECT),
        int(BranchKind.RETURN),
    ),
    PathFilter.IND_JMP: (
        int(BranchKind.CALL_INDIRECT),
        int(BranchKind.IND_JUMP),
    ),
}

#: Kind values that update the per-address path history (module frozenset
#: so the per-row test in the variant walk is an int membership).
_PER_ADDRESS_KIND_VALUES = frozenset(int(kind) for kind in _TARGET_CACHE_KINDS)

_N_KINDS = max(BranchKind) + 1

#: One target-cache-relevant row, pre-unpacked for the cell kernel:
#: (pc, kind value, target, next_pc, fallback prediction, routed-at-fetch,
#:  updates-the-cache, trace row index, BTB-missed).  The fallback is the
#: BTB's stored target on routed rows and the fall-through address on
#: BTB-missed rows (read only by ``predicts_on_btb_miss`` kinds there).
_SubsetRow = Tuple[int, int, int, int, int, bool, bool, int, bool]


@dataclass(frozen=True)
class SubsetColumns:
    """The target-cache subset as parallel numpy columns.

    The columnar twin of ``BranchStreams.subset_rows``: one array per
    field, aligned by position, shared read-only by every vector-tier
    cell (:mod:`repro.predictors.vector`).  Built lazily because the
    scalar stream kernel never needs it.
    """

    pcs: "npt.NDArray[np.int64]"
    kind_values: "npt.NDArray[np.int64]"
    targets: "npt.NDArray[np.int64]"
    next_pcs: "npt.NDArray[np.int64]"
    fallbacks: "npt.NDArray[np.int64]"
    routed: "npt.NDArray[np.bool_]"
    updates: "npt.NDArray[np.bool_]"
    rows: "npt.NDArray[np.int64]"
    btb_missed: "npt.NDArray[np.bool_]"
    #: 0..n-1, cached so per-cell kernels skip the arange
    positions: "npt.NDArray[np.int64]"


@dataclass(frozen=True)
class StreamConfig:
    """The stream-relevant projection of an :class:`EngineConfig`.

    Two cells whose configs project to the same ``StreamConfig`` share one
    :class:`BranchStreams`: the fields left out (the target-cache config
    and the history widths/sources) cannot change any shared stream.
    """

    btb_sets: int = 256
    btb_ways: int = 4
    btb_strategy: UpdateStrategy = UpdateStrategy.DEFAULT
    direction: DirectionConfig = DirectionConfig()
    ras_depth: int = 32
    target_cache_handles_returns: bool = False


def stream_signature(config: EngineConfig) -> StreamConfig:
    """Project ``config`` onto the fields the shared streams depend on."""
    return StreamConfig(
        btb_sets=config.btb_sets,
        btb_ways=config.btb_ways,
        btb_strategy=config.btb_strategy,
        direction=config.direction,
        ras_depth=config.ras_depth,
        target_cache_handles_returns=config.target_cache_handles_returns,
    )


def streams_supported(config: EngineConfig) -> bool:
    """Whether :func:`simulate_streamed` can reproduce ``config`` exactly.

    The wide-register suffix trick needs every consumed history width to
    fit in :data:`WIDE_HISTORY_BITS`; anything wider goes through the
    reference engine (the sweep runner falls back automatically).  A
    registered predictor kind can also opt out wholesale by declaring
    ``streams_supported=False`` in its traits.
    """
    if config.direction.history_bits > WIDE_HISTORY_BITS:
        return False
    if config.target_cache is not None:
        if not registration(config.target_cache.kind).traits.streams_supported:
            return False
        if config.history.bits > WIDE_HISTORY_BITS:
            return False
    return True


class BranchStreams:
    """Precomputed per-branch streams for one ``(trace, StreamConfig)``.

    Everything here is a pure function of the decoded trace and the stream
    config — never of any target-cache contents — so a single instance
    serves every cell whose config projects to the same signature.
    History-variant streams are materialised lazily on first request and
    memoised (a Table 7 sweep needs one variant; a Table 5 sweep several).
    """

    def __init__(self, decoded: DecodedBranches, config: StreamConfig,
                 btb_lookups: int, btb_hits: int,
                 executed_by_kind: "npt.NDArray[np.int64]",
                 base_mispredicts_by_kind: "npt.NDArray[np.int64]",
                 fixed_mispredicts_by_kind: "npt.NDArray[np.int64]",
                 base_mispredict_rows: "npt.NDArray[np.int64]",
                 fixed_mispredict_rows: "npt.NDArray[np.int64]",
                 backstop_fixed_mispredicts_by_kind: "npt.NDArray[np.int64]",
                 backstop_fixed_mispredict_rows: "npt.NDArray[np.int64]",
                 subset_indices: "npt.NDArray[np.int64]",
                 subset_selectors: "npt.NDArray[np.int8]",
                 subset_rows: List[_SubsetRow]) -> None:
        self.decoded = decoded
        self.config = config
        self.instructions = decoded.instructions
        self.n_branches = len(decoded.rows)
        self.btb_lookups = btb_lookups
        self.btb_hits = btb_hits
        #: executed branches per BranchKind value
        self.executed_by_kind = executed_by_kind
        #: mispredicts per kind when every target-cache access structurally
        #: misses (= the exact counts of any cell with no target cache)
        self.base_mispredicts_by_kind = base_mispredicts_by_kind
        #: mispredicts per kind on branches the target cache never predicts
        #: (fixed across every cell sharing these streams)
        self.fixed_mispredicts_by_kind = fixed_mispredicts_by_kind
        #: trace row indices behind the two mispredict counters above
        self.base_mispredict_rows = base_mispredict_rows
        self.fixed_mispredict_rows = fixed_mispredict_rows
        #: like the fixed counters, but additionally excluding BTB-missed
        #: target-cache rows — those become variable for a kind whose
        #: traits declare ``predicts_on_btb_miss`` (the engine consults
        #: the cache there instead of predicting fall-through)
        self.backstop_fixed_mispredicts_by_kind = (
            backstop_fixed_mispredicts_by_kind
        )
        self.backstop_fixed_mispredict_rows = backstop_fixed_mispredict_rows
        #: positions (into the decoded branch arrays) of the target-cache
        #: relevant subset, plus each row's history-snapshot selector
        self.subset_indices = subset_indices
        self.subset_selectors = subset_selectors
        #: the same subset pre-unpacked into plain tuples for the kernel
        self.subset_rows = subset_rows
        self._variants: Dict[Tuple[object, ...], "npt.NDArray[np.uint64]"] = {}
        self._masked: Dict[Tuple[object, ...], List[int]] = {}
        self._masked_arrays: Dict[
            Tuple[object, ...], "npt.NDArray[np.uint64]"
        ] = {}
        self._columns: Optional[SubsetColumns] = None

    # ------------------------------------------------------------------
    @property
    def subset_size(self) -> int:
        return len(self.subset_rows)

    # ------------------------------------------------------------------
    def columns(self) -> SubsetColumns:
        """The subset rows as parallel numpy columns (lazily memoised)."""
        cached = self._columns
        if cached is None:
            matrix = np.array(self.subset_rows, dtype=np.int64)
            if matrix.size == 0:
                matrix = matrix.reshape(0, 9)  # the 9 _SubsetRow fields
            cached = SubsetColumns(
                pcs=matrix[:, 0].copy(),
                kind_values=matrix[:, 1].copy(),
                targets=matrix[:, 2].copy(),
                next_pcs=matrix[:, 3].copy(),
                fallbacks=matrix[:, 4].copy(),
                routed=matrix[:, 5].astype(bool),
                updates=matrix[:, 6].astype(bool),
                rows=matrix[:, 7].copy(),
                btb_missed=matrix[:, 8].astype(bool),
                positions=np.arange(len(matrix), dtype=np.int64),
            )
            self._columns = cached
        return cached

    # ------------------------------------------------------------------
    def _history_key(self, config: EngineConfig) -> Tuple[Tuple[object, ...], int]:
        """(variant key, consumed width) pair for ``config.history``."""
        history = config.history
        source = history.source
        if source is HistorySource.PATTERN:
            key: Tuple[object, ...] = ("pattern",)
            width = max(self.config.direction.history_bits, history.bits)
        elif source is HistorySource.PATH_GLOBAL:
            key = ("path", history.path_filter.value,
                   history.bits_per_target, history.address_bit)
            width = history.bits
        else:
            key = ("addr", history.bits_per_target, history.address_bit)
            width = history.bits
        if width > WIDE_HISTORY_BITS:
            raise ValueError(
                f"history width {width} exceeds the {WIDE_HISTORY_BITS}-bit "
                "stream registers; use the reference simulate"
            )
        return key, width

    # ------------------------------------------------------------------
    def tc_history_values(self, config: EngineConfig) -> List[int]:
        """History value per subset row, exactly as the engine computes it.

        Selects the variant named by ``config.history``, applies the
        PRE/POST/ZERO snapshot selection recorded at build time, and masks
        the wide register down to the width the engine's registers would
        have under ``config`` (the suffix property makes the mask exact).
        """
        key, width = self._history_key(config)
        masked_key = key + (width,)
        cached = self._masked.get(masked_key)
        if cached is None:
            cached = self.tc_history_array(config).tolist()
            self._masked[masked_key] = cached
        return cached

    # ------------------------------------------------------------------
    def tc_history_array(self, config: EngineConfig) -> "npt.NDArray[np.uint64]":
        """Array form of :meth:`tc_history_values` for the vector tier.

        Same variant selection and width masking, but kept as a uint64
        column (memoised separately) so whole-array index schemes can
        consume it without a Python-level materialisation.
        """
        key, width = self._history_key(config)
        masked_key = key + (width,)
        cached = self._masked_arrays.get(masked_key)
        if cached is None:
            wide = self._variant(key)
            width_mask = (1 << width) - 1
            cached = wide & np.uint64(width_mask)
            self._masked_arrays[masked_key] = cached
        return cached

    # ------------------------------------------------------------------
    def _variant(self, key: Tuple[object, ...]) -> "npt.NDArray[np.uint64]":
        values = self._variants.get(key)
        if values is None:
            if key[0] == "pattern":
                values = self._pattern_variant()
            elif key[0] == "path":
                assert isinstance(key[1], str)
                assert isinstance(key[2], int) and isinstance(key[3], int)
                values = self._path_variant(PathFilter(key[1]), key[2], key[3])
            else:
                assert isinstance(key[1], int) and isinstance(key[2], int)
                values = self._per_address_variant(key[1], key[2])
            self._variants[key] = values
        return values

    def _pattern_variant(self) -> "npt.NDArray[np.uint64]":
        """Wide global pattern history (conditional outcomes) per subset row."""
        decoded = self.decoded
        kind_values = np.fromiter(
            (int(kind) for kind in decoded.kinds), dtype=np.int64,
            count=self.n_branches,
        )
        qualifying = np.flatnonzero(kind_values == int(BranchKind.COND_DIRECT))
        takens = np.asarray(decoded.takens, dtype=np.int64)
        fragments = takens[qualifying]
        return _variant_walk(
            qualifying.tolist(), fragments.tolist(),
            self.subset_indices.tolist(), self.subset_selectors.tolist(), 1,
        )

    def _path_variant(self, path_filter: PathFilter, bits_per_target: int,
                      address_bit: int) -> "npt.NDArray[np.uint64]":
        """Wide global path history for one (filter, bpt, bit) variant."""
        decoded = self.decoded
        kind_values = np.fromiter(
            (int(kind) for kind in decoded.kinds), dtype=np.int64,
            count=self.n_branches,
        )
        accepted = np.isin(
            kind_values, np.asarray(_FILTER_KIND_VALUES[path_filter])
        )
        # the engine records only redirecting executions (redirected=taken)
        accepted &= np.asarray(decoded.takens, dtype=bool)
        qualifying = np.flatnonzero(accepted)
        destinations = np.asarray(decoded.next_pcs, dtype=np.int64)[qualifying]
        fragment_mask = (1 << bits_per_target) - 1
        fragments = (destinations >> address_bit) & fragment_mask
        return _variant_walk(
            qualifying.tolist(), fragments.tolist(),
            self.subset_indices.tolist(), self.subset_selectors.tolist(),
            bits_per_target,
        )

    def _per_address_variant(self, bits_per_target: int,
                             address_bit: int) -> "npt.NDArray[np.uint64]":
        """Wide per-address path history per subset row.

        Per-address registers update only on indirect jump/call rows and
        are read only at target-cache accesses — both inside the subset —
        so this walk never touches the other branches.
        """
        fragment_mask = (1 << bits_per_target) - 1
        registers: Dict[int, int] = {}
        selectors = self.subset_selectors.tolist()
        out = [0] * len(selectors)
        get_register = registers.get
        for j, (pc, kind_value, target, _next_pc, _fallback, _routed,
                _updates, _row, _btb_missed) in enumerate(self.subset_rows):
            selector = selectors[j]
            value = get_register(pc, 0)
            if selector == _SEL_PRE:
                out[j] = value
            if kind_value in _PER_ADDRESS_KIND_VALUES:
                fragment = (target >> address_bit) & fragment_mask
                value = ((value << bits_per_target) | fragment) & _WIDE_MASK
                registers[pc] = value
            if selector == _SEL_POST:
                out[j] = value
        return np.array(out, dtype=np.uint64)


def _variant_walk(qualifying: List[int], fragments: List[int],
                  subset: List[int], selectors: List[int],
                  bits_per_target: int) -> "npt.NDArray[np.uint64]":
    """Replay one shift register, sampling it at the subset rows.

    ``qualifying``/``fragments`` name the branch positions that shift the
    register and what they shift in; ``subset``/``selectors`` name where to
    sample and whether the engine reads the register before (PRE) or after
    (POST) that row's own update — or not at all (ZERO).
    """
    out = [0] * len(subset)
    value = 0
    cursor = 0
    n_qualifying = len(qualifying)
    for j, row in enumerate(subset):
        while cursor < n_qualifying and qualifying[cursor] < row:
            value = ((value << bits_per_target) | fragments[cursor]) & _WIDE_MASK
            cursor += 1
        selector = selectors[j]
        if selector == _SEL_PRE:
            out[j] = value
        if cursor < n_qualifying and qualifying[cursor] == row:
            value = ((value << bits_per_target) | fragments[cursor]) & _WIDE_MASK
            cursor += 1
        if selector == _SEL_POST:
            out[j] = value
    return np.array(out, dtype=np.uint64)


def build_streams(decoded: DecodedBranches,
                  config: StreamConfig) -> BranchStreams:
    """Walk ``decoded`` once under ``config`` and materialise the streams.

    This is the amortised cost: one reference-speed pass over every branch
    (BTB + RAS + direction predictor, no target cache), after which every
    cell sharing the signature pays only for its target-cache subset.
    """
    btb = BranchTargetBuffer(sets=config.btb_sets, ways=config.btb_ways,
                             strategy=config.btb_strategy)
    direction = DirectionPredictor(config.direction)
    ras = ReturnAddressStack(depth=config.ras_depth)
    handles_returns = config.target_cache_handles_returns
    if handles_returns:
        tc_kinds = _TARGET_CACHE_KINDS | {BranchKind.RETURN}
    else:
        tc_kinds = _TARGET_CACHE_KINDS

    lookup = btb.lookup
    update_btb = btb.update
    predict_direction = direction.predict
    update_direction = direction.update
    push_ras = ras.push
    pop_ras = ras.pop
    cond_kind = BranchKind.COND_DIRECT
    return_kind = BranchKind.RETURN
    call_kinds = _CALL_KINDS
    sel_pre, sel_post, sel_zero = _SEL_PRE, _SEL_POST, _SEL_ZERO

    pattern = 0
    base_mispredicts: List[bool] = []
    append_mispredict = base_mispredicts.append
    subset_index: List[int] = []
    subset_selector: List[int] = []
    subset_rows: List[_SubsetRow] = []
    append_subset = subset_rows.append
    append_index = subset_index.append
    append_selector = subset_selector.append
    routed_positions: List[int] = []
    append_routed = routed_positions.append
    missed_positions: List[int] = []
    append_missed = missed_positions.append

    for i, (row, pc, kind, taken, target, next_pc) in enumerate(zip(
        decoded.rows, decoded.pcs, decoded.kinds, decoded.takens,
        decoded.targets, decoded.next_pcs,
    )):
        fallthrough = pc + INSTRUCTION_BYTES
        entry = lookup(pc)
        routed = False
        popped_ras = False
        if entry is None:
            hit = False
            stored_target = 0
            base_prediction = fallthrough
        else:
            hit = True
            entry_kind = entry.kind
            stored_target = entry.target
            if entry_kind is cond_kind:
                if predict_direction(pc, pattern):
                    base_prediction = stored_target
                else:
                    base_prediction = fallthrough
            elif entry_kind is return_kind and not handles_returns:
                popped = pop_ras()
                popped_ras = True
                base_prediction = popped if popped is not None else fallthrough
            elif entry_kind in tc_kinds:
                # a structural target-cache miss falls back to the BTB's
                # stored target; cells adjust routed rows from here
                routed = True
                base_prediction = stored_target
            else:
                base_prediction = stored_target
            if entry_kind in call_kinds:
                push_ras(entry.fallthrough)
        append_mispredict(base_prediction != next_pc)

        # ----- resolve-time updates, mirroring process_branch exactly
        if kind is cond_kind:
            update_direction(pc, pattern, taken)
            pattern = ((pattern << 1) | (1 if taken else 0)) & _WIDE_MASK
        updates_cache = kind in tc_kinds
        if updates_cache or routed:
            btb_missed = False
            fallback = stored_target
            if not updates_cache:
                selector = sel_pre
            elif not hit:
                # no fetch-time access happened; the engine indexes with
                # the history as of resolve (after this branch's updates).
                # A predicts_on_btb_miss kind still predicts here, falling
                # back to fall-through when it too structurally misses.
                selector = sel_post
                btb_missed = True
                fallback = fallthrough
                append_missed(i)
            elif routed:
                selector = sel_pre
            else:
                # BTB hit with a stale non-indirect kind: the engine never
                # computes a history and updates with index 0
                selector = sel_zero
            append_index(i)
            append_selector(selector)
            append_subset((pc, int(kind), target, next_pc, fallback,
                           routed, updates_cache, row, btb_missed))
            if routed:
                append_routed(i)
        if kind is return_kind and not popped_ras:
            pop_ras()
        if kind in call_kinds and entry is None:
            push_ras(fallthrough)
        update_btb(pc, kind, target,
                   predicted_target_correct=hit and stored_target == target)

    n = len(decoded.rows)
    kind_values = np.fromiter(
        (int(kind) for kind in decoded.kinds), dtype=np.int64, count=n,
    )
    mispredicted = np.asarray(base_mispredicts, dtype=bool)
    routed_mask = np.zeros(n, dtype=bool)
    if routed_positions:
        routed_mask[np.asarray(routed_positions, dtype=np.int64)] = True
    missed_mask = np.zeros(n, dtype=bool)
    if missed_positions:
        missed_mask[np.asarray(missed_positions, dtype=np.int64)] = True
    rows = np.asarray(decoded.rows, dtype=np.int64)
    fixed = mispredicted & ~routed_mask
    backstop_fixed = fixed & ~missed_mask
    return BranchStreams(
        decoded=decoded,
        config=config,
        btb_lookups=btb.lookups,
        btb_hits=btb.hits,
        executed_by_kind=np.bincount(kind_values, minlength=_N_KINDS),
        base_mispredicts_by_kind=np.bincount(
            kind_values[mispredicted], minlength=_N_KINDS
        ),
        fixed_mispredicts_by_kind=np.bincount(
            kind_values[fixed], minlength=_N_KINDS
        ),
        base_mispredict_rows=rows[mispredicted],
        fixed_mispredict_rows=rows[fixed],
        backstop_fixed_mispredicts_by_kind=np.bincount(
            kind_values[backstop_fixed], minlength=_N_KINDS
        ),
        backstop_fixed_mispredict_rows=rows[backstop_fixed],
        subset_indices=np.asarray(subset_index, dtype=np.int64),
        subset_selectors=np.asarray(subset_selector, dtype=np.int8),
        subset_rows=subset_rows,
    )


def simulate_streamed(streams: BranchStreams, config: EngineConfig,
                      collect_mask: bool = False) -> PredictionStats:
    """Simulate one cell against precomputed streams.

    Bit-identical to :func:`repro.predictors.engine.simulate` on the same
    trace and config (stats, counters, and mispredict mask), but the
    per-cell work is proportional to the target-cache-relevant subset of
    branches instead of the whole trace.
    """
    if stream_signature(config) != streams.config:
        raise ValueError(
            "config does not project onto these streams; build streams for "
            f"{stream_signature(config)!r}"
        )
    stats = PredictionStats(instructions=streams.instructions)
    counters = {kind: stats.counters(kind) for kind in BranchKind}
    executed = streams.executed_by_kind

    variable_mispredicts = [0] * _N_KINDS
    mispredict_rows: List[int] = []
    if config.target_cache is None:
        # Without a target cache the engine predicts routed rows from the
        # BTB's stored target — exactly the structural-miss fallback the
        # base stream already measured.
        fixed = streams.base_mispredicts_by_kind
        fixed_rows = streams.base_mispredict_rows
    else:
        reg = registration(config.target_cache.kind)
        backstop = reg.traits.predicts_on_btb_miss
        if backstop:
            # BTB-missed target-cache rows are variable for this kind: the
            # engine consults the cache there instead of predicting
            # fall-through, so their base-walk mispredicts must not be
            # double-counted as fixed.
            fixed = streams.backstop_fixed_mispredicts_by_kind
            fixed_rows = streams.backstop_fixed_mispredict_rows
        else:
            fixed = streams.fixed_mispredicts_by_kind
            fixed_rows = streams.fixed_mispredict_rows
        cache = reg.factory(config.target_cache)
        predict = cache.predict
        update = cache.update
        prime = cache.prime if reg.traits.is_oracle else None
        # A kind whose traits promise it ignores history gets a constant
        # zero stream: no variant walk, identical call sequence to the
        # engine (which also passes whatever value it captured — ignored).
        histories: Iterable[int] = (
            streams.tc_history_values(config)
            if reg.traits.needs_history
            else repeat(0)
        )
        append_row = mispredict_rows.append
        for history, (pc, kind_value, target, next_pc, fallback, routed,
                      updates_cache, row, btb_missed) in zip(
                          histories, streams.subset_rows):
            if routed or (backstop and btb_missed):
                if prime is not None:
                    prime(target)
                guess = predict(pc, history)
                predicted = fallback if guess is None else guess
                if predicted != next_pc:
                    variable_mispredicts[kind_value] += 1
                    append_row(row)
            if updates_cache:
                update(pc, history, target)

    for kind in BranchKind:
        counter = counters[kind]
        counter.executed = int(executed[kind])
        counter.mispredicted = int(fixed[kind]) + variable_mispredicts[kind]
    stats.btb_lookups = streams.btb_lookups
    stats.btb_hits = streams.btb_hits
    if collect_mask:
        mask = np.zeros(streams.instructions, dtype=bool)
        mask[fixed_rows] = True
        if mispredict_rows:
            mask[np.asarray(mispredict_rows, dtype=np.int64)] = True
        stats.mispredict_mask = mask
    return stats


def simulate_many_streamed(
    decoded: DecodedBranches, configs: List[EngineConfig],
    collect_mask: bool = False,
    memo: Optional[Dict[StreamConfig, BranchStreams]] = None,
) -> List[PredictionStats]:
    """Stream-kernel counterpart of :func:`simulate_many` over decoded rows.

    Builds (or reuses, via ``memo``) one :class:`BranchStreams` per
    signature appearing in ``configs``.  Every config must satisfy
    :func:`streams_supported`; mixed sweeps should go through
    :func:`repro.runner.run_cells`, which falls back per cell.
    """
    streams_by_signature = memo if memo is not None else {}
    results: List[PredictionStats] = []
    sink = get_sink()
    for config in configs:
        signature = stream_signature(config)
        streams = streams_by_signature.get(signature)
        if streams is None:
            with sink.span("streams.build"):
                streams = build_streams(decoded, signature)
            streams_by_signature[signature] = streams
        else:
            sink.incr("streams.reuse")
        results.append(
            simulate_streamed(streams, config, collect_mask=collect_mask)
        )
    return results
