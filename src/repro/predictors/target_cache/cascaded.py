"""Cascaded target prediction (extension beyond the paper).

Driesen & Hölzle's follow-on work to the target cache observed that most
static indirect jumps are *monomorphic* — a plain last-target predictor
handles them perfectly — so the expensive history-indexed table should be
reserved ("filtered") for the jumps that actually change targets.  This
module implements that two-stage cascade on top of this repository's
primitives, as the kind of extension study the paper's design enables:

* **stage 1** — a last-target filter (functionally the BTB the machine
  already has);
* **stage 2** — any history-indexed :class:`TargetPredictor` (typically a
  small tagged cache).  A jump is promoted to stage 2 the first time its
  target *changes*; from then on stage 2 predicts it (falling back to
  stage 1 on a structural miss), and only promoted jumps consume stage-2
  capacity.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.predictors.target_cache.base import TargetPredictor


class CascadedTargetCache(TargetPredictor):
    """Two-stage filter + history-indexed predictor."""

    def __init__(self, stage2: TargetPredictor) -> None:
        self.stage2 = stage2
        self._last_target: Dict[int, int] = {}
        self._polymorphic: Set[int] = set()
        self.stage2_predictions = 0
        self.stage1_predictions = 0

    def predict(self, pc: int, history: int) -> Optional[int]:
        if pc in self._polymorphic:
            guess = self.stage2.predict(pc, history)
            if guess is not None:
                self.stage2_predictions += 1
                return guess
        self.stage1_predictions += 1
        return self._last_target.get(pc)

    def update(self, pc: int, history: int, target: int) -> None:
        previous = self._last_target.get(pc)
        if previous is not None and previous != target:
            self._polymorphic.add(pc)
        if pc in self._polymorphic:
            self.stage2.update(pc, history, target)
        self._last_target[pc] = target

    def reset(self) -> None:
        self._last_target.clear()
        self._polymorphic.clear()
        self.stage2.reset()

    @property
    def promoted_jumps(self) -> int:
        """Static jumps that have been promoted to stage 2."""
        return len(self._polymorphic)

    def __repr__(self) -> str:
        return f"CascadedTargetCache(stage2={self.stage2!r})"
