"""ITTAGE-lite: the target cache's modern descendant (extension).

The target cache fixed *one* history length per implementation; Seznec's
ITTAGE (2011) — today's standard indirect predictor in gem5/ChampSim-class
simulators — keeps several tagged tables indexed with geometrically
increasing history lengths and predicts from the longest-history hit, so
each jump gets as much context as it needs and no more.

This is a deliberately small ("lite") but faithful skeleton of that design
on this repository's primitives:

* a base last-target table indexed by pc (the fallback);
* N tagged components; component *i* folds the youngest ``lengths[i]`` bits
  of the global history into its index and tag;
* prediction: the hit with the longest history wins;
* update: the providing component trains its confidence counter; on a
  misprediction a new entry is allocated into one longer-history component
  (replacing only low-confidence victims), and the provider's target is
  replaced once its confidence drains.

The fetch engine supplies history through the ordinary
:class:`~repro.predictors.engine.HistoryConfig`; configure a wide register
(e.g. 64-bit path history) so the longer components have real bits to fold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.guest.isa import INSTRUCTION_BYTES
from repro.predictors.target_cache.base import TargetPredictor

_ADDR_SHIFT = INSTRUCTION_BYTES.bit_length() - 1


def fold_history(history: int, length: int, bits: int) -> int:
    """Fold the youngest ``length`` history bits into a ``bits``-wide hash."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    value = history & ((1 << length) - 1) if length < 64 else history
    folded = 0
    while value:
        folded ^= value & ((1 << bits) - 1)
        value >>= bits
    return folded


@dataclass
class _Entry:
    tag: int
    target: int
    confidence: int = 1  # saturating 0..3


class ITTageLite(TargetPredictor):
    """Multi-table geometric-history indirect target predictor."""

    CONF_MAX = 3

    def __init__(self, table_bits: int = 7, tag_bits: int = 9,
                 lengths: Tuple[int, ...] = (4, 8, 16, 32),
                 seed: int = 0) -> None:
        if not lengths or list(lengths) != sorted(lengths):
            raise ValueError("lengths must be a non-empty ascending tuple")
        self.table_bits = table_bits
        self.tag_bits = tag_bits
        self.lengths = tuple(lengths)
        self._index_mask = (1 << table_bits) - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._tables: List[Dict[int, _Entry]] = [dict() for _ in lengths]
        self._base: Dict[int, int] = {}
        self._rng_state = seed * 2654435761 % (1 << 32) or 1
        self.provider_hits = [0] * len(lengths)
        self.base_hits = 0

    @property
    def total_entries(self) -> int:
        """Hardware budget: component capacity plus nothing for the base
        (the BTB plays that role in a real machine)."""
        return len(self.lengths) * (1 << self.table_bits)

    # ------------------------------------------------------------------
    def _locate(self, component: int, pc: int, history: int) -> Tuple[int, int]:
        word = pc >> _ADDR_SHIFT
        length = self.lengths[component]
        folded_index = fold_history(history, length, self.table_bits)
        folded_tag = fold_history(history, length, self.tag_bits)
        index = (word ^ folded_index ^ (component * 0x9E37)) & self._index_mask
        tag = (word ^ (folded_tag << 1) ^ length) & self._tag_mask
        return index, tag

    def _lookup(self, pc: int, history: int) -> Tuple[Optional[int], Optional[_Entry]]:
        """Return (component index, entry) of the longest-history hit."""
        for component in reversed(range(len(self.lengths))):
            index, tag = self._locate(component, pc, history)
            entry = self._tables[component].get(index)
            if entry is not None and entry.tag == tag:
                return component, entry
        return None, None

    # ------------------------------------------------------------------
    def predict(self, pc: int, history: int) -> Optional[int]:
        component, entry = self._lookup(pc, history)
        if entry is not None:
            self.provider_hits[component] += 1
            return entry.target
        base = self._base.get(pc)
        if base is not None:
            self.base_hits += 1
        return base

    def _next_random(self) -> int:
        self._rng_state = (self._rng_state * 1103515245 + 12345) & 0xFFFFFFFF
        return self._rng_state >> 16

    def update(self, pc: int, history: int, target: int) -> None:
        component, entry = self._lookup(pc, history)
        if entry is not None:
            if entry.target == target:
                if entry.confidence < self.CONF_MAX:
                    entry.confidence += 1
            else:
                if entry.confidence > 0:
                    entry.confidence -= 1
                else:
                    entry.target = target
                    entry.confidence = 1
            correct = entry.target == target and entry.confidence > 0
        else:
            correct = self._base.get(pc) == target
        if not correct:
            self._allocate(component, pc, history, target)
        self._base[pc] = target

    def _allocate(self, provider: Optional[int], pc: int, history: int,
                  target: int) -> None:
        """Allocate in one component with longer history than the provider."""
        start = 0 if provider is None else provider + 1
        candidates = range(start, len(self.lengths))
        for component in candidates:
            index, tag = self._locate(component, pc, history)
            table = self._tables[component]
            victim = table.get(index)
            if victim is None or victim.confidence == 0:
                table[index] = _Entry(tag=tag, target=target)
                return
        # everyone confident: decay one victim so future allocations succeed
        choices = list(candidates)
        if not choices:
            return
        component = choices[self._next_random() % len(choices)]
        index, _ = self._locate(component, pc, history)
        victim = self._tables[component].get(index)
        if victim is not None and victim.confidence > 0:
            victim.confidence -= 1

    def reset(self) -> None:
        self._tables = [dict() for _ in self.lengths]
        self._base.clear()

    def __repr__(self) -> str:
        return (f"ITTageLite(table_bits={self.table_bits}, "
                f"lengths={self.lengths})")
