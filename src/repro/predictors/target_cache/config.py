"""Declarative configuration covering the paper's target-cache design space.

Experiments describe a target cache as data (so sweeps are dictionaries of
configs, and results are reproducible from the config alone); the predictor
registry (:mod:`repro.predictors.registry`) owns the mapping from ``kind``
to concrete classes, labels, and capability traits.  The JSON-serialisable
form of a config is its *spec* (:meth:`TargetCacheConfig.to_spec`), the
interchange format the result cache fingerprints and ``repro sweep --spec``
reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import repro.predictors.spec as spec_codec
from repro.predictors.spec import Spec  # noqa: F401  (re-exported annotation)
from repro.predictors.target_cache.tagged import TaggedIndexing


@dataclass(frozen=True)
class TargetCacheConfig:
    """One point in the target-cache design space.

    ``kind`` names a registered predictor (see ``repro predictors`` for the
    live list).  The built-in kinds:

    * ``"tagless"`` — ``scheme`` (gag/gas/gshare), ``history_bits``,
      ``address_bits`` define the index; table size is 2**(history_bits +
      address_bits), i.e. 512 entries for the paper's 9-bit configurations.
    * ``"tagged"`` — ``entries``/``assoc``/``indexing``/``history_bits``/
      ``tag_bits``/``replacement`` as in
      :class:`~repro.predictors.target_cache.tagged.TaggedTargetCache`.
    * ``"cascaded"`` — a last-target filter in front of a *tagged* second
      stage built from the tagged parameters (extension beyond the paper;
      see :mod:`repro.predictors.target_cache.cascaded`).
    * ``"ittage"`` — ITTAGE-lite, the modern multi-table descendant
      (``history_bits`` caps the folded history; table geometry uses
      ``entries`` as the per-component size, assoc ignored).
    * ``"btb2"`` — two-level BTB: a small L1 (``entries``/``assoc``)
      backed by a large last-level BTB (``l2_entries``/``l2_assoc``) with
      miss-triggered prefetch into L1; ``l2_entries=0`` disables the
      backing level (see :mod:`repro.predictors.btb2`).
    * ``"oracle"`` / ``"last_target"`` — bounding predictors.

    Each registered kind declares which fields it consumes in its traits'
    ``spec_fields``; the remaining fields are inert for that kind.
    """

    kind: str = "tagless"
    # tagless parameters
    scheme: str = "gshare"
    history_bits: int = 9
    address_bits: int = 0
    # tagged parameters
    entries: int = 256
    assoc: int = 4
    indexing: TaggedIndexing = TaggedIndexing.HISTORY_XOR
    tag_bits: Optional[int] = None
    replacement: str = "lru"
    # two-level-BTB parameters (the backing level; 0 disables it)
    l2_entries: int = 4096
    l2_assoc: int = 8

    def label(self) -> str:
        """Human-readable name used in experiment tables.

        Delegates to the registry so every kind — built-in or plugin —
        renders a parameterised label, never the bare kind string.
        """
        from repro.predictors import registry

        return registry.predictor_label(self)

    def to_spec(self) -> Spec:
        """Lossless JSON-ready rendering (see :mod:`repro.predictors.spec`)."""
        return spec_codec.to_spec(self)

    @classmethod
    def from_spec(cls, spec: Mapping[str, object]) -> "TargetCacheConfig":
        """Build a config from a (possibly partial) spec dict."""
        return spec_codec.from_spec(cls, spec)
