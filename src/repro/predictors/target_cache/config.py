"""Declarative configuration covering the paper's target-cache design space.

Experiments describe a target cache as data (so sweeps are dictionaries of
configs, and results are reproducible from the config alone) and call
:func:`build_target_cache` to instantiate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.predictors.indexing import parse_scheme
from repro.predictors.target_cache.base import TargetPredictor
from repro.predictors.target_cache.cascaded import CascadedTargetCache
from repro.predictors.target_cache.ittage import ITTageLite
from repro.predictors.target_cache.oracle import (
    LastTargetPredictor,
    OracleTargetPredictor,
)
from repro.predictors.target_cache.tagged import TaggedIndexing, TaggedTargetCache
from repro.predictors.target_cache.tagless import TaglessTargetCache


@dataclass(frozen=True)
class TargetCacheConfig:
    """One point in the target-cache design space.

    ``kind`` selects the organisation:

    * ``"tagless"`` — ``scheme`` (gag/gas/gshare), ``history_bits``,
      ``address_bits`` define the index; table size is 2**(history_bits +
      address_bits), i.e. 512 entries for the paper's 9-bit configurations.
    * ``"tagged"`` — ``entries``/``assoc``/``indexing``/``history_bits``/
      ``tag_bits``/``replacement`` as in
      :class:`~repro.predictors.target_cache.tagged.TaggedTargetCache`.
    * ``"cascaded"`` — a last-target filter in front of a *tagged* second
      stage built from the tagged parameters (extension beyond the paper;
      see :mod:`repro.predictors.target_cache.cascaded`).
    * ``"ittage"`` — ITTAGE-lite, the modern multi-table descendant
      (``history_bits`` caps the folded history; table geometry uses
      ``entries`` as the per-component size, assoc ignored).
    * ``"oracle"`` / ``"last_target"`` — bounding predictors.
    """

    kind: str = "tagless"
    # tagless parameters
    scheme: str = "gshare"
    history_bits: int = 9
    address_bits: int = 0
    # tagged parameters
    entries: int = 256
    assoc: int = 4
    indexing: TaggedIndexing = TaggedIndexing.HISTORY_XOR
    tag_bits: Optional[int] = None
    replacement: str = "lru"

    def label(self) -> str:
        """Human-readable name used in experiment tables."""
        if self.kind == "tagless":
            if self.scheme == "gas":
                return f"GAs({self.history_bits},{self.address_bits})"
            if self.scheme == "gag":
                return f"GAg({self.history_bits})"
            return f"gshare({self.history_bits})"
        if self.kind == "tagged":
            return (
                f"tagged({self.entries}e/{self.assoc}w/"
                f"{self.indexing.value}/h{self.history_bits})"
            )
        return self.kind


def build_target_cache(config: TargetCacheConfig) -> TargetPredictor:
    """Instantiate the predictor a :class:`TargetCacheConfig` describes."""
    if config.kind == "tagless":
        scheme = parse_scheme(config.scheme, config.history_bits, config.address_bits)
        return TaglessTargetCache(scheme)
    if config.kind == "tagged":
        return TaggedTargetCache(
            entries=config.entries,
            assoc=config.assoc,
            indexing=config.indexing,
            history_bits=config.history_bits,
            tag_bits=config.tag_bits,
            replacement=config.replacement,
        )
    if config.kind == "cascaded":
        stage2 = TaggedTargetCache(
            entries=config.entries,
            assoc=config.assoc,
            indexing=config.indexing,
            history_bits=config.history_bits,
            tag_bits=config.tag_bits,
            replacement=config.replacement,
        )
        return CascadedTargetCache(stage2)
    if config.kind == "ittage":
        table_bits = max(4, config.entries.bit_length() - 1)
        return ITTageLite(table_bits=table_bits)
    if config.kind == "oracle":
        return OracleTargetPredictor()
    if config.kind == "last_target":
        return LastTargetPredictor()
    raise ValueError(f"unknown target-cache kind {config.kind!r}")
