"""The target cache — the paper's contribution (§3).

A target cache records, per (indirect-jump address, branch history) pair,
the computed target seen the last time that pair occurred.  "The target
cache improves on the prediction accuracy achieved by BTB-based schemes for
indirect jumps by choosing its prediction from (usually) all the targets of
the indirect jump that have already been encountered rather than just the
target that was most recently encountered."

Two storage organisations:

* :class:`TaglessTargetCache` (§3.2, Figure 10) — like a pattern history
  table that stores targets instead of 2-bit counters; subject to
  interference between branches that hash to the same entry.
* :class:`TaggedTargetCache` (§3.2, Figure 11) — set-associative with tag
  match, eliminating cross-branch interference at the cost of capacity and
  of conflict misses at low associativity.

:class:`OracleTargetPredictor` supplies a perfect-prediction upper bound,
and :class:`TargetCacheConfig` + :func:`build_target_cache` give experiments
a declarative way to request any variant in the paper's design space.
"""

from repro.predictors.target_cache.base import TargetPredictor
from repro.predictors.target_cache.cascaded import CascadedTargetCache
from repro.predictors.target_cache.config import TargetCacheConfig
from repro.predictors.target_cache.ittage import ITTageLite, fold_history
from repro.predictors.target_cache.oracle import (
    LastTargetPredictor,
    OracleTargetPredictor,
)
from repro.predictors.target_cache.tagged import TaggedIndexing, TaggedTargetCache
from repro.predictors.target_cache.tagless import TaglessTargetCache


def build_target_cache(config: TargetCacheConfig) -> TargetPredictor:
    """Instantiate the predictor a :class:`TargetCacheConfig` describes.

    Thin wrapper over the registry lookup (kept here for backward
    compatibility; the registry module is the real dispatch home).  The
    lazy import breaks the package-init cycle: the registry itself imports
    the concrete classes from this package's submodules.
    """
    from repro.predictors.registry import build_target_cache as _build

    return _build(config)


__all__ = [
    "TargetPredictor",
    "CascadedTargetCache",
    "ITTageLite",
    "fold_history",
    "TaglessTargetCache",
    "TaggedIndexing",
    "TaggedTargetCache",
    "LastTargetPredictor",
    "OracleTargetPredictor",
    "TargetCacheConfig",
    "build_target_cache",
]
