"""Tagged target cache (paper §3.2, Figure 11; §4.3).

"To avoid predicting targets of indirect jumps based on the outcomes of
other branches, we propose the tagged target cache where a tag is added to
each target cache entry.  The branch address and/or the branch history are
used for tag matching."

Three indexing schemes (paper §4.3.1):

* **ADDRESS** — "uses the lower address bits for set selection.  The higher
  address bits and the global branch pattern history are XORed to form the
  tag."  All targets of one jump map to one set, so low associativity
  thrashes.
* **HISTORY_CONCAT** — "uses the lower bits of the history register for set
  selection.  The higher bits of the history register are concatenated with
  the address bits to form the tag."
* **HISTORY_XOR** — "XORs the branch address with the branch history; it
  uses the lower bits from the result of the XOR for set selection and the
  higher bits for tag comparison."

Tags are exact by default (``tag_bits=None``); pass a finite ``tag_bits`` to
model tag aliasing in a cost-constrained implementation.
"""

from __future__ import annotations

import random
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.guest.isa import INSTRUCTION_BYTES
from repro.predictors.target_cache.base import TargetPredictor

_ADDR_SHIFT = INSTRUCTION_BYTES.bit_length() - 1


class TaggedIndexing(Enum):
    """Set-index / tag derivation schemes of paper §4.3.1."""

    ADDRESS = "address"
    HISTORY_CONCAT = "history_concat"
    HISTORY_XOR = "history_xor"


class TaggedTargetCache(TargetPredictor):
    """Set-associative, tagged target cache with LRU replacement.

    ``entries`` is the total entry count (the paper holds it at 256 while
    varying ``assoc`` from 1 to fully associative); ``history_bits`` bounds
    the history value used in index/tag formation (the §4.3.3 experiment
    compares 9 against 16).
    """

    def __init__(self, entries: int = 256, assoc: int = 4,
                 indexing: TaggedIndexing = TaggedIndexing.HISTORY_XOR,
                 history_bits: int = 9, tag_bits: Optional[int] = None,
                 replacement: str = "lru", seed: int = 0) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if assoc <= 0 or entries % assoc:
            raise ValueError("assoc must divide entries")
        if replacement not in ("lru", "random"):
            raise ValueError("replacement must be 'lru' or 'random'")
        self.entries = entries
        self.assoc = assoc
        self.indexing = indexing
        self.history_bits = history_bits
        self.tag_bits = tag_bits
        self.replacement = replacement
        self.n_sets = entries // assoc
        self._set_bits = self.n_sets.bit_length() - 1
        self._set_mask = self.n_sets - 1
        self._history_mask = (1 << history_bits) - 1
        self._tag_mask = None if tag_bits is None else (1 << tag_bits) - 1
        # Each set: insertion-ordered dict tag -> target; first key is LRU.
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.n_sets)]
        self._rng = random.Random(seed)
        self.predictions = 0
        self.tag_misses = 0

    # ------------------------------------------------------------------
    def _locate(self, pc: int, history: int) -> Tuple[int, int]:
        """Return (set index, tag) for this (address, history) pair."""
        word = pc >> _ADDR_SHIFT
        history &= self._history_mask
        if self.indexing is TaggedIndexing.ADDRESS:
            set_index = word & self._set_mask
            tag = (word >> self._set_bits) ^ history
        elif self.indexing is TaggedIndexing.HISTORY_CONCAT:
            set_index = history & self._set_mask
            high_history = history >> self._set_bits
            tag = (word << max(0, self.history_bits - self._set_bits)) | high_history
        else:  # HISTORY_XOR
            mixed = word ^ history
            set_index = mixed & self._set_mask
            tag = mixed >> self._set_bits
        if self._tag_mask is not None:
            tag &= self._tag_mask
        return set_index, tag

    # ------------------------------------------------------------------
    def predict(self, pc: int, history: int) -> Optional[int]:
        self.predictions += 1
        set_index, tag = self._locate(pc, history)
        bucket = self._sets[set_index]
        target = bucket.get(tag)
        if target is None:
            self.tag_misses += 1
            return None
        if self.replacement == "lru":
            del bucket[tag]  # refresh recency
            bucket[tag] = target
        return target

    def update(self, pc: int, history: int, target: int) -> None:
        set_index, tag = self._locate(pc, history)
        bucket = self._sets[set_index]
        if tag in bucket:
            del bucket[tag]
        elif len(bucket) >= self.assoc:
            if self.replacement == "lru":
                victim = next(iter(bucket))
            else:
                victim = self._rng.choice(list(bucket))
            del bucket[victim]
        bucket[tag] = target

    def reset(self) -> None:
        self._sets = [dict() for _ in range(self.n_sets)]

    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

    def __repr__(self) -> str:
        return (
            f"TaggedTargetCache(entries={self.entries}, assoc={self.assoc}, "
            f"indexing={self.indexing.value}, history_bits={self.history_bits})"
        )
