"""Bounding predictors: oracle (perfect) and unlimited last-target.

Neither appears as a hardware proposal in the paper, but both bound the
design space: the oracle gives the execution-time ceiling any target
predictor could reach (analogous to the oracle CBT study of Kaeli & Emma
the paper discusses in §2), and :class:`LastTargetPredictor` isolates the
*algorithmic* weakness of last-target prediction from BTB capacity effects
— its misprediction rate equals the trace's target-transition rate.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.predictors.target_cache.base import TargetPredictor


class OracleTargetPredictor(TargetPredictor):
    """Always predicts correctly.

    The fetch engine consults :meth:`predict` before the branch resolves,
    so the oracle is primed through :meth:`prime`: the simulator tells it
    the actual target of the jump it is about to predict.  This keeps the
    :class:`TargetPredictor` interface uniform while modelling perfection.
    """

    def __init__(self) -> None:
        self._next_target: Optional[int] = None

    def prime(self, target: int) -> None:
        self._next_target = target

    def predict(self, pc: int, history: int) -> Optional[int]:
        return self._next_target

    def update(self, pc: int, history: int, target: int) -> None:
        self._next_target = None


class LastTargetPredictor(TargetPredictor):
    """Unbounded per-pc last-target table (an infinite, conflict-free BTB)."""

    def __init__(self) -> None:
        self._last: Dict[int, int] = {}

    def predict(self, pc: int, history: int) -> Optional[int]:
        return self._last.get(pc)

    def update(self, pc: int, history: int, target: int) -> None:
        self._last[pc] = target

    def reset(self) -> None:
        self._last.clear()
