"""Abstract interface shared by every target-prediction structure."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional


class TargetPredictor(ABC):
    """Predicts the destination of an indirect jump.

    The fetch engine calls :meth:`predict` when the BTB identifies an
    indirect jump at ``pc``; ``history`` is whatever history value the
    engine's :class:`~repro.predictors.engine.HistoryConfig` selects (global
    pattern history, a filtered global path history, or the jump's
    per-address path history).  When the jump retires, :meth:`update` is
    called **with the same history value** ("the target cache is accessed
    again using index A", §1) and the computed target.
    """

    @abstractmethod
    def predict(self, pc: int, history: int) -> Optional[int]:
        """Return the predicted target, or ``None`` on a structural miss."""

    @abstractmethod
    def update(self, pc: int, history: int, target: int) -> None:
        """Record the computed ``target`` for this (pc, history) pair."""

    def prime(self, target: int) -> None:
        """Reveal the actual ``target`` immediately before ``predict``.

        Only meaningful for kinds whose registered
        :class:`~repro.predictors.registry.PredictorTraits` set
        ``is_oracle``; the fetch engine calls it right before the
        fetch-time :meth:`predict` for exactly those kinds.  The default
        is a no-op so ordinary predictors need not care.
        """

    def reset(self) -> None:  # pragma: no cover - overridden where stateful
        """Clear all learned state (optional for subclasses)."""
