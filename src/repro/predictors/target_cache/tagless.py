"""Tagless target cache (paper §3.2, Figure 10).

"The target cache is similar to the pattern history table of the 2-level
branch predictor; the only difference is that a target cache's storage
structure records branch targets while a 2-level branch predictor's pattern
history table records branch directions."

The entry selected by the index scheme is used verbatim — there is no tag,
so two different (pc, history) pairs that hash to the same entry interfere,
"particularly detrimental ... because the targets of two different indirect
branches are usually different".  The paper's §4.2.1 hashing-function study
(GAg / GAs / gshare) is expressed through the pluggable
:class:`~repro.predictors.indexing.IndexScheme`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.predictors.indexing import IndexScheme
from repro.predictors.target_cache.base import TargetPredictor


class TaglessTargetCache(TargetPredictor):
    """Direct-indexed table of targets, one per entry, no tags."""

    def __init__(self, scheme: IndexScheme) -> None:
        self.scheme = scheme
        self.entries = scheme.table_size
        self._targets: List[Optional[int]] = [None] * self.entries
        self.predictions = 0
        self.structural_misses = 0

    def predict(self, pc: int, history: int) -> Optional[int]:
        self.predictions += 1
        target = self._targets[self.scheme.index(pc, history)]
        if target is None:
            self.structural_misses += 1
        return target

    def update(self, pc: int, history: int, target: int) -> None:
        self._targets[self.scheme.index(pc, history)] = target

    def reset(self) -> None:
        self._targets = [None] * self.entries

    def utilisation(self) -> float:
        """Fraction of entries holding a target (the gshare-vs-GAs story:
        gshare "effectively utilizes more of the entries")."""
        used = sum(1 for t in self._targets if t is not None)
        return used / self.entries

    def __repr__(self) -> str:
        return f"TaglessTargetCache(entries={self.entries}, scheme={self.scheme!r})"
