"""Measurement utilities: confidence intervals and paper-comparison helpers.

Our traces are finite samples of endless synthetic workloads, so every
misprediction rate carries sampling error.  This package quantifies it:

* :func:`~repro.metrics.stats.segment_rates` — per-segment misprediction
  rates over a trace (the unit of resampling);
* :func:`~repro.metrics.stats.bootstrap_ci` — percentile-bootstrap
  confidence interval over those segments;
* :func:`~repro.metrics.stats.rate_confidence` — end-to-end: trace +
  engine config -> rate with a CI;
* :func:`~repro.metrics.compare.shape_match` — the fidelity criterion used
  by EXPERIMENTS.md (ordering/crossover agreement, not absolute equality).
"""

from repro.metrics.compare import orderings_agree, shape_match
from repro.metrics.stats import (
    ConfidenceInterval,
    bootstrap_ci,
    rate_confidence,
    segment_rates,
)

__all__ = [
    "ConfidenceInterval",
    "bootstrap_ci",
    "rate_confidence",
    "segment_rates",
    "orderings_agree",
    "shape_match",
]
