"""Paper-vs-measured fidelity criteria.

The reproduction's claim is *shape* fidelity: on synthetic workloads, who
wins, roughly by how much, and where the crossovers fall — not absolute
percentages measured on a 1997 testbed.  These helpers make that criterion
executable, so EXPERIMENTS.md statements are backed by code.
"""

from __future__ import annotations

from typing import Dict, Sequence


def orderings_agree(paper: Sequence[float], measured: Sequence[float],
                    tolerance: float = 0.0) -> bool:
    """True when every pairwise ordering in ``paper`` holds in ``measured``.

    ``tolerance`` forgives near-ties: a paper ordering ``a < b`` only needs
    to hold when ``b - a > tolerance``, and then only up to ``tolerance``
    slack in the measurement.
    """
    if len(paper) != len(measured):
        raise ValueError("sequences must have equal length")
    for i in range(len(paper)):
        for j in range(len(paper)):
            if paper[i] + tolerance < paper[j]:
                if measured[i] > measured[j] + tolerance:
                    return False
    return True


def shape_match(paper: Dict[str, float], measured: Dict[str, float],
                ratio_band: float = 4.0,
                ordering_tolerance: float = 0.02) -> Dict[str, bool]:
    """Compare labelled paper/measured values on the two shape criteria.

    Returns ``{"orderings": ..., "magnitudes": ...}`` where *orderings*
    checks pairwise ranks (with tolerance) and *magnitudes* checks that
    each nonzero measured value is within ``ratio_band``x of the paper's.
    """
    keys = sorted(paper)
    if sorted(measured) != keys:
        raise ValueError("paper and measured must have identical keys")
    orderings = orderings_agree(
        [paper[k] for k in keys],
        [measured[k] for k in keys],
        tolerance=ordering_tolerance,
    )
    magnitudes = True
    for key in keys:
        p, m = paper[key], measured[key]
        if p <= 0 or m <= 0:
            continue
        ratio = m / p if m > p else p / m
        if ratio > ratio_band:
            magnitudes = False
    return {"orderings": orderings, "magnitudes": magnitudes}
