"""Sampling-error quantification for misprediction rates.

The predictor simulators are deterministic, but the trace is a finite
window of an endless workload, so a measured rate is an estimate of the
workload's long-run rate.  We quantify the uncertainty with a block
bootstrap: split the trace into contiguous segments (blocks preserve the
local correlation structure that i.i.d. resampling would destroy), resample
segments with replacement, and report percentile intervals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.predictors import EngineConfig, simulate
from repro.trace.trace import Trace


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float = 0.95

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (f"{self.estimate:.3f} "
                f"[{self.low:.3f}, {self.high:.3f}]@{self.confidence:.0%}")


def segment_rates(trace: Trace, config: EngineConfig,
                  n_segments: int = 20) -> List[float]:
    """Per-segment indirect misprediction rates.

    One simulation over the whole trace (predictor state carries across
    segment boundaries, as it would in reality); the mask is then scored
    per contiguous segment.
    """
    if n_segments <= 0:
        raise ValueError("n_segments must be positive")
    stats = simulate(trace, config, collect_mask=True)
    mask = stats.mispredict_mask
    indirect = trace.is_indirect_jump
    boundaries = np.linspace(0, len(trace), n_segments + 1, dtype=int)
    rates: List[float] = []
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        executed = int(indirect[start:end].sum())
        if executed == 0:
            continue
        missed = int((mask[start:end] & indirect[start:end]).sum())
        rates.append(missed / executed)
    return rates


def bootstrap_ci(samples: List[float], confidence: float = 0.95,
                 n_resamples: int = 2000,
                 seed: int = 0) -> ConfidenceInterval:
    """Percentile bootstrap over per-segment rates."""
    if not samples:
        raise ValueError("no samples to bootstrap")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = random.Random(seed)
    k = len(samples)
    means = []
    for _ in range(n_resamples):
        resample = [samples[rng.randrange(k)] for _ in range(k)]
        means.append(sum(resample) / k)
    means.sort()
    alpha = (1 - confidence) / 2
    low_index = int(alpha * n_resamples)
    high_index = min(n_resamples - 1, int((1 - alpha) * n_resamples))
    return ConfidenceInterval(
        estimate=sum(samples) / k,
        low=means[low_index],
        high=means[high_index],
        confidence=confidence,
    )


def rate_confidence(trace: Trace, config: EngineConfig,
                    n_segments: int = 20, confidence: float = 0.95,
                    seed: int = 0) -> ConfidenceInterval:
    """Indirect misprediction rate of ``config`` on ``trace`` with a CI."""
    return bootstrap_ci(
        segment_rates(trace, config, n_segments=n_segments),
        confidence=confidence,
        seed=seed,
    )
