"""Validated parsing of sweep spec documents — the ``--spec`` wire format.

A *spec document* is the JSON object ``repro sweep --spec FILE`` reads and
``POST /sweeps`` (the sweep service, :mod:`repro.service`) accepts as a
request body::

    {"plugins": ["my_module"],            # optional: imported first
     "benchmarks": ["perl", "gcc"],       # default benchmark list
     "cells": [
        {"preset": "tagless-gshare9"},    # named preset from configs.PRESETS
        {"engine": {...EngineConfig spec...},
         "benchmarks": ["go"],            # per-cell override
         "label": "my row"}]}             # optional row label

Parsing is strict and total: every structural mistake raises
:exc:`SpecError` with a one-line message naming the offending key path
(``cells[3].engine: TargetCacheConfig.kind: expected a string, got 5``),
never a traceback.  The CLI turns a :exc:`SpecError` into exit code 2;
the service turns it into a 400 response.  Both front ends share this
module, so the file format and the wire format cannot drift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.predictors import EngineConfig


class SpecError(ValueError):
    """A malformed sweep spec document; the message names the bad key."""


@dataclass(frozen=True)
class SweepRow:
    """One requested table row: simulate ``benchmark`` under ``config``."""

    label: str
    benchmark: str
    config: EngineConfig


@dataclass(frozen=True)
class SweepPlan:
    """A validated spec document: plugin modules plus the requested rows."""

    plugins: Tuple[str, ...]
    rows: Tuple[SweepRow, ...]

    def cells(self) -> List[Tuple[str, EngineConfig]]:
        """The ``(benchmark, config)`` cells behind the rows, in order."""
        return [(row.benchmark, row.config) for row in self.rows]


def _require_string_list(value: Any, where: str) -> List[str]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise SpecError(
            f"'{where}' must be a list of strings, got {value!r}"
        )
    return value


def _known_benchmarks() -> List[str]:
    from repro.workloads import workload_names

    return list(workload_names(include_oo=True, include_server=True))


def _check_benchmarks(names: List[str], where: str,
                      known: List[str]) -> List[str]:
    from repro.guest.lowering import lowering_names
    from repro.workloads import parse_workload_name

    checked = []
    for name in names:
        try:
            base, lowering = parse_workload_name(name)
        except KeyError:
            raise SpecError(
                f"'{where}' names unknown lowering in {name!r}; available: "
                f"{', '.join(lowering_names())}"
            ) from None
        if base not in known:
            raise SpecError(
                f"'{where}' names unknown benchmark {name!r}; available: "
                f"{', '.join(sorted(known))}"
            )
        # '@jump_table' canonicalises away, so scheduler dedup and the
        # result cache see one spelling per identical trace.
        checked.append(base if lowering is None else f"{base}@{lowering}")
    if not checked:
        raise SpecError(f"'{where}' must not be empty")
    return checked


def _cell_config(cell: Any, where: str) -> Tuple[str, EngineConfig]:
    """Validate one ``cells[i]`` entry; returns (default label, config)."""
    from repro.experiments.configs import PRESETS, preset

    if not isinstance(cell, dict):
        raise SpecError(
            f"'{where}' must be an object, got {type(cell).__name__}"
        )
    if ("preset" in cell) == ("engine" in cell):
        raise SpecError(
            f"'{where}' needs exactly one of 'preset' or 'engine' "
            f"(got keys: {', '.join(sorted(cell)) or 'none'})"
        )
    unknown = sorted(set(cell) - {"preset", "engine", "benchmarks", "label"})
    if unknown:
        raise SpecError(
            f"'{where}' has unknown key(s): {', '.join(unknown)} "
            "(valid: preset, engine, benchmarks, label)"
        )
    if "preset" in cell:
        name = cell["preset"]
        if not isinstance(name, str):
            raise SpecError(
                f"'{where}.preset' must be a string, got {name!r}"
            )
        if name not in PRESETS:
            raise SpecError(
                f"'{where}.preset': unknown preset {name!r}; available: "
                f"{', '.join(sorted(PRESETS))}"
            )
        return name, preset(name)
    engine_spec = cell["engine"]
    if not isinstance(engine_spec, dict):
        raise SpecError(
            f"'{where}.engine' must be an engine spec object, got "
            f"{type(engine_spec).__name__}"
        )
    try:
        config = EngineConfig.from_spec(engine_spec)
        # Labelling resolves the predictor kind through the registry, so
        # it also validates kinds from_spec defers checking.
        default_label = (
            config.target_cache.label()
            if config.target_cache is not None else "btb-only"
        )
    except (ValueError, TypeError, KeyError) as exc:
        raise SpecError(f"'{where}.engine': {exc}") from exc
    return default_label, config


def parse_spec_document(document: Any) -> SweepPlan:
    """Validate a decoded spec document into a :class:`SweepPlan`.

    Raises :exc:`SpecError` (never any other exception) on any structural
    problem, with a message naming the offending key path.  Plugin modules
    are *not* imported here — callers decide when (and whether) to run
    ``load_plugins(plan.plugins)``.
    """
    if not isinstance(document, dict):
        raise SpecError(
            "spec document must be a JSON object with a 'cells' list, got "
            f"{type(document).__name__}"
        )
    unknown = sorted(set(document) - {"plugins", "benchmarks", "cells"})
    if unknown:
        raise SpecError(
            f"spec document has unknown key(s): {', '.join(unknown)} "
            "(valid: plugins, benchmarks, cells)"
        )
    plugins = _require_string_list(document.get("plugins", []), "plugins")
    known = _known_benchmarks()
    default_benchmarks = document.get("benchmarks")
    if default_benchmarks is None:
        from repro.experiments.common import FOCUS_BENCHMARKS

        default_benchmarks = list(FOCUS_BENCHMARKS)
    else:
        default_benchmarks = _check_benchmarks(
            _require_string_list(default_benchmarks, "benchmarks"),
            "benchmarks", known,
        )
    cells = document.get("cells")
    if not isinstance(cells, list) or not cells:
        raise SpecError(
            "'cells' must be a non-empty list of cell objects, got "
            f"{cells!r}"
        )
    rows: List[SweepRow] = []
    for index, cell in enumerate(cells):
        where = f"cells[{index}]"
        default_label, config = _cell_config(cell, where)
        label = cell.get("label", default_label)
        if not isinstance(label, str):
            raise SpecError(
                f"'{where}.label' must be a string, got {label!r}"
            )
        benchmarks = cell.get("benchmarks")
        if benchmarks is None:
            benchmarks = default_benchmarks
        else:
            benchmarks = _check_benchmarks(
                _require_string_list(benchmarks, f"{where}.benchmarks"),
                f"{where}.benchmarks", known,
            )
        rows.extend(
            SweepRow(label=label, benchmark=benchmark, config=config)
            for benchmark in benchmarks
        )
    return SweepPlan(plugins=tuple(plugins), rows=tuple(rows))


def parse_spec_text(text: str, source: str = "spec") -> SweepPlan:
    """Parse raw JSON text into a :class:`SweepPlan`.

    JSON syntax errors become :exc:`SpecError` too, so front ends handle
    exactly one exception type.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"{source} is not valid JSON: {exc}") from exc
    return parse_spec_document(document)
