"""repro — reproduction of *Target Prediction for Indirect Jumps*
(Po-Yung Chang, Eric Hao, Yale N. Patt, ISCA 1997).

The paper proposes the **target cache**: an indirect-jump target predictor
indexed by branch history, transplanting the two-level direction-prediction
idea to target prediction.  This package implements the full system:

* :mod:`repro.guest` — a small guest ISA, assembler and functional VM
  (the substrate replacing SPECint95 binaries);
* :mod:`repro.workloads` — eight benchmark-like guest programs calibrated
  against the paper's published statistics;
* :mod:`repro.trace` — numpy-backed dynamic-instruction traces and stats;
* :mod:`repro.predictors` — BTB (default and 2-bit update), two-level
  direction predictors, return address stack, pattern/path history
  registers, and the tagless/tagged target caches;
* :mod:`repro.pipeline` — HPS-like out-of-order timing models;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro.workloads import get_trace
    from repro.predictors import (EngineConfig, simulate, TargetCacheConfig,
                                  HistoryConfig, HistorySource)

    trace = get_trace("perl", n_instructions=200_000)
    btb_only = simulate(trace, EngineConfig())
    with_tc = simulate(trace, EngineConfig(
        target_cache=TargetCacheConfig(kind="tagless", scheme="gshare"),
        history=HistoryConfig(source=HistorySource.PATTERN, bits=9),
    ))
    print(btb_only.indirect_mispred_rate, with_tc.indirect_mispred_rate)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
