"""Process-global sink lifecycle: the single place obs is switched on.

Instrumented modules call :func:`get_sink` at use time and never cache the
result across runs, so installing a sink here retroactively lights up the
whole stack.  The default is :data:`~repro.obs.core.NULL_SINK` — nothing
records unless the CLI (or a library user) opts in.

``REPRO_OBS`` is the only environment knob, read in exactly one place
(:func:`bootstrap`):

* unset / ``0`` / ``off`` / ``no`` / ``false`` — disabled;
* ``1`` / ``on`` / ``true`` / ``yes`` — ledger at ``repro_ledger.jsonl``
  in the current directory;
* anything else — treated as the ledger path itself (mirroring
  ``REPRO_RESULT_CACHE``).

The CLI's ``--no-obs`` wins over everything, and ``--obs-ledger FILE``
wins over the environment; both funnel through :func:`bootstrap`.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.obs.core import NULL_SINK, Sink
from repro.obs.ledger import LedgerSink

#: Ledger location when ``REPRO_OBS`` merely says "on".
DEFAULT_LEDGER = "repro_ledger.jsonl"

#: ``REPRO_OBS`` values meaning "disabled".
_OFF_VALUES = {"", "0", "off", "no", "false"}

#: ``REPRO_OBS`` values meaning "enabled, default path".
_ON_VALUES = {"1", "on", "true", "yes"}

_SINK: Sink = NULL_SINK


def get_sink() -> Sink:
    """The process-global sink (the disabled :data:`NULL_SINK` by default)."""
    return _SINK


def install(sink: Sink) -> Sink:
    """Make ``sink`` the process-global sink; returns the previous one."""
    # Workers reach this via attach_worker to replace a fork-inherited
    # parent sink with their own shard writer — a swap that must be
    # per-process, and telemetry never feeds back into results.
    global _SINK  # repro-lint: ignore[worker-global-write]
    previous = _SINK
    _SINK = sink
    return previous


def shutdown() -> None:
    """Close the current sink (merging shards) and restore the null sink."""
    global _SINK
    sink = _SINK
    _SINK = NULL_SINK
    sink.close()


def attach_worker(ledger_path: str) -> Sink:
    """Install a worker-role ledger sink (pool initializer entry point).

    Workers append to their own pid-named shard and flush at chunk
    boundaries; the parent merges after the pool drains.  Under a fork
    start method the child would otherwise inherit the *parent's* sink —
    and its shard path — so this must run before any worker telemetry.
    """
    return install(LedgerSink(ledger_path, role="worker"))


def bootstrap(ledger: Optional[Union[str, os.PathLike[str]]] = None,
              disable: bool = False) -> Sink:
    """Install the sink the environment/flags ask for, and return it.

    ``disable`` (the CLI's ``--no-obs``) forces the null sink regardless
    of the environment; ``ledger`` (``--obs-ledger FILE``) forces a ledger
    at that path.  Otherwise ``REPRO_OBS`` decides, as documented above.
    This is the single place the environment is consulted, and it only
    gates *telemetry* — simulation results are identical with obs on or
    off (``tests/test_obs_ledger.py`` asserts it).
    """
    if disable:
        sink: Sink = NULL_SINK
    elif ledger is not None:
        sink = LedgerSink(ledger)
    else:
        value = os.environ.get("REPRO_OBS", "")  # repro-lint: ignore[det-env-read]
        lowered = value.strip().lower()
        if lowered in _OFF_VALUES:
            sink = NULL_SINK
        elif lowered in _ON_VALUES:
            sink = LedgerSink(DEFAULT_LEDGER)
        else:
            sink = LedgerSink(value)
    install(sink)
    return sink
