"""Run-ledger observability: spans, metrics, and JSONL event streams.

A zero-dependency instrumentation subsystem for the sweep stack.  Code
under measurement asks the process-global sink for telemetry primitives::

    from repro.obs import get_sink

    sink = get_sink()
    with sink.span("cell", benchmark="perl", kernel="stream"):
        stats = simulate_streamed(streams, config)
    sink.incr("result_cache.hit")

By default the sink is a no-op (:data:`NULL_SINK`) and the calls above
cost a handful of attribute lookups — the overhead guard in
``benchmarks/test_obs_overhead.py`` holds the enabled path under 3% on a
warm sweep and the disabled path at "no measurable cost".  Enabling obs
(``REPRO_OBS=1``, ``REPRO_OBS=/path/to.jsonl``, or ``repro ... --obs-ledger
FILE``) installs a :class:`LedgerSink` that records every event to a
process-safe JSONL run ledger, summarised by ``repro report``.

See ``docs/OBSERVABILITY.md`` for the event schema, the sink lifecycle
(per-PID shards merged by the parent), and report examples.
"""

from repro.obs.bootstrap import (
    DEFAULT_LEDGER,
    attach_worker,
    bootstrap,
    get_sink,
    install,
    shutdown,
)
from repro.obs.core import NULL_SINK, NULL_SPAN, NullSink, NullSpan, Sink, Span
from repro.obs.ledger import LEDGER_SCHEMA_VERSION, LedgerSink
from repro.obs.report import (
    compare_bench,
    format_compare,
    format_summary,
    read_ledger,
    summarize,
)

__all__ = [
    "DEFAULT_LEDGER",
    "LEDGER_SCHEMA_VERSION",
    "LedgerSink",
    "NULL_SINK",
    "NULL_SPAN",
    "NullSink",
    "NullSpan",
    "Sink",
    "Span",
    "attach_worker",
    "bootstrap",
    "compare_bench",
    "format_compare",
    "format_summary",
    "get_sink",
    "install",
    "read_ledger",
    "shutdown",
    "summarize",
]
