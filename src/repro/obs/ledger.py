"""The JSONL run ledger: one event stream per run, process-safe by sharding.

Every process — the parent and each pool worker — appends complete JSON
lines to its **own** shard file (``<ledger>.<pid>.part``), so no two
processes ever write the same file and no line can interleave or tear.
When the parent sink closes, it concatenates the shards (parent first,
then workers by pid) into the final ledger path atomically and removes
them.  A shard left behind by a killed worker is merged too: whatever it
flushed before dying is kept, and any torn trailing bytes (no final
newline) are dropped during the merge.

Event schema (one JSON object per line; ``repro report`` consumes it):

``{"t": <unix-time>, "pid": <int>, "kind": "span" | "counter" | "gauge"
| "event" | "run", "name": <str>, ...}``

* ``span``    — adds ``"dur"`` (seconds) and optional ``"meta"``;
* ``counter`` — adds ``"value"`` (accumulated since the last flush);
* ``gauge``   — adds ``"value"`` (point-in-time level);
* ``event``   — optional ``"meta"``;
* ``run``     — lifecycle markers (``start``) carrying the schema version
  and the process role (``parent`` / ``worker``).

Counters are accumulated in-process and emitted only at flush time, so a
hot counter costs one dict update per increment, not one write.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.obs.core import MetaValue, Sink, Span

#: Bump when the event layout changes incompatibly.
LEDGER_SCHEMA_VERSION = 1

#: Buffered lines before an automatic flush.
_FLUSH_EVERY = 256

_SHARD_RE = re.compile(r"\.(\d+)\.part$")


class LedgerSink(Sink):
    """A recording sink backed by one per-process shard of the run ledger.

    The parent process constructs one with ``role="parent"`` (the default):
    it clears stale shards from a previous crashed run and, on
    :meth:`close`, merges every shard into ``path``.  Worker processes get
    ``role="worker"`` via :func:`repro.obs.attach_worker`: they only ever
    append to their own shard and flush at chunk boundaries, leaving the
    merge to the parent.
    """

    enabled = True

    def __init__(self, path: Union[str, Path], role: str = "parent") -> None:
        if role not in ("parent", "worker"):
            raise ValueError(f"unknown ledger role: {role!r}")
        self.path = Path(path)
        self.role = role
        self.pid = os.getpid()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._shard = self.path.parent / f"{self.path.name}.{self.pid}.part"
        self._lines: List[str] = []
        self._counters: Dict[str, int] = {}
        self._closed = False
        if role == "parent":
            for stale in self._shards():
                stale.unlink(missing_ok=True)
        self._emit({"kind": "run", "name": "start", "role": role,
                    "schema": LEDGER_SCHEMA_VERSION})
        self.flush()  # the shard exists from here on, even if killed

    @property
    def ledger_path(self) -> Optional[str]:  # type: ignore[override]
        return str(self.path)

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def span(self, name: str, **meta: MetaValue) -> Span:
        return Span(self, name, meta or None)

    def record_span(self, name: str, duration: float,
                    meta: Optional[Mapping[str, MetaValue]]) -> None:
        record: Dict[str, object] = {"kind": "span", "name": name,
                                     "dur": round(duration, 9)}
        if meta:
            record["meta"] = dict(meta)
        self._emit(record)

    def incr(self, name: str, value: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self._emit({"kind": "gauge", "name": name, "value": value})

    def event(self, name: str, **meta: MetaValue) -> None:
        record: Dict[str, object] = {"kind": "event", "name": name}
        if meta:
            record["meta"] = dict(meta)
        self._emit(record)

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------
    def _emit(self, record: Dict[str, object]) -> None:
        if self._closed:
            return
        # Event timestamp (epoch seconds, comparable across processes);
        # telemetry only — results never read it.
        record = {"t": round(time.time(), 6),  # repro-lint: ignore[det-wall-clock]
                  "pid": self.pid, **record}
        self._lines.append(json.dumps(record, separators=(",", ":")))
        if len(self._lines) >= _FLUSH_EVERY:
            self.flush()

    def flush(self) -> None:
        if self._counters:
            drained = sorted(self._counters.items())
            self._counters.clear()
            for name, value in drained:
                self._emit({"kind": "counter", "name": name, "value": value})
        if not self._lines:
            return
        # One write call of whole lines: a reader (or the merge) never
        # observes a torn line from a live shard.
        with open(self._shard, "a", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in self._lines))
        self._lines.clear()

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        if self.role == "parent":
            self._merge()
        self._closed = True

    # ------------------------------------------------------------------
    # Merging (parent only).
    # ------------------------------------------------------------------
    def _shards(self) -> List[Path]:
        """Shard files for this ledger, parent's own first, then by pid."""
        shards = []
        for candidate in self.path.parent.glob(f"{self.path.name}.*.part"):
            match = _SHARD_RE.search(candidate.name)
            if match is None:
                continue
            pid = int(match.group(1))
            shards.append((pid != self.pid, pid, candidate))
        return [path for _, _, path in sorted(shards)]

    def _merge(self) -> None:
        """Concatenate every shard into ``self.path`` atomically.

        Complete lines only: a shard whose writer was killed mid-write may
        end without a newline; those trailing bytes are dropped rather
        than corrupting the merged ledger.
        """
        shards = self._shards()
        tmp = self.path.parent / f"{self.path.name}.merge.tmp"
        with open(tmp, "w", encoding="utf-8") as out:
            for shard in shards:
                try:
                    text = shard.read_text(encoding="utf-8")
                except OSError:
                    continue
                newline = text.rfind("\n")
                if newline < 0:
                    continue
                out.write(text[:newline + 1])
        os.replace(tmp, self.path)
        for shard in shards:
            shard.unlink(missing_ok=True)
