"""Core instrumentation primitives: spans, metrics, and the sink protocol.

The observability subsystem is *pull-free*: instrumented code asks the
process-global sink (:func:`repro.obs.get_sink`) for a :class:`Span` or
bumps a counter, and the sink decides what happens.  Two sinks exist:

* :class:`NullSink` — the default.  Every operation is a no-op; ``span``
  returns one shared, stateless :class:`NullSpan` singleton so disabled
  instrumentation allocates nothing and costs a single method call.  The
  overhead guard (``benchmarks/test_obs_overhead.py``) keeps it that way.
* :class:`~repro.obs.ledger.LedgerSink` — records events to the JSONL run
  ledger described in ``docs/OBSERVABILITY.md``.

Telemetry never feeds back into simulation results: sinks only *observe*.
The wall-clock reads below are therefore suppressed for the determinism
lint — timestamps and durations are recorded, never consumed by the
kernel.

Granularity contract: spans and counters belong at **cell or phase**
granularity (one event per sweep cell, per stream build, per pool run),
never inside the per-branch loops listed in
:data:`repro.analysis.hotloop.HOT_PATHS`.  The ``obs-discipline`` lint
pass enforces this.
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional, Union

#: JSON-able metadata attached to spans and events.
MetaValue = Union[str, int, float, bool, None]


class NullSpan:
    """A span that measures nothing; base class of the recording Span.

    One module-level instance (:data:`NULL_SPAN`) is shared by every
    disabled ``span()`` call, so the off path never allocates.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


#: The shared no-op span handed out by disabled sinks.
NULL_SPAN = NullSpan()


class Span(NullSpan):
    """Nested wall-clock timer; reports its duration to the sink on exit.

    Spans must be context-managed (``with sink.span("cell", ...):``) so
    that every opened span is closed exactly once — the ``obs-discipline``
    lint pass enforces the ``with`` form at every call site.
    """

    __slots__ = ("_sink", "name", "meta", "_start")

    def __init__(self, sink: "Sink", name: str,
                 meta: Optional[Dict[str, MetaValue]]) -> None:
        self._sink = sink
        self.name = name
        self.meta = meta
        self._start = 0.0

    def __enter__(self) -> "Span":
        # Telemetry timestamp: observed, never fed back into results.
        self._start = time.perf_counter()  # repro-lint: ignore[det-wall-clock]
        return self

    def __exit__(self, *exc: object) -> None:
        # Duration of an already-computed result; cannot alter it.
        duration = time.perf_counter() - self._start  # repro-lint: ignore[det-wall-clock]
        self._sink.record_span(self.name, duration, self.meta)


class Sink:
    """The sink protocol *and* the disabled implementation.

    Every method is a no-op here; :class:`~repro.obs.ledger.LedgerSink`
    overrides them.  Instrumented code must treat the return value of
    :meth:`span` as an opaque context manager and never branch on
    ``enabled`` — a disabled sink is cheap enough to call unconditionally.
    """

    #: True when events are actually recorded somewhere.
    enabled: bool = False

    #: Where the merged ledger will land, if anywhere (the pool runner
    #: forwards this to worker processes).
    ledger_path: Optional[str] = None

    def span(self, name: str, **meta: MetaValue) -> NullSpan:
        """A wall-clock span; use only as ``with sink.span(...):``."""
        return NULL_SPAN

    def incr(self, name: str, value: int = 1) -> None:
        """Bump a monotonically accumulating counter."""

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time level (e.g. pool width)."""

    def event(self, name: str, **meta: MetaValue) -> None:
        """Record a discrete occurrence (e.g. a pool breakage)."""

    def record_span(self, name: str, duration: float,
                    meta: Optional[Mapping[str, MetaValue]]) -> None:
        """Called by :class:`Span` on exit; not part of the user API."""

    def flush(self) -> None:
        """Persist buffered events (workers call this after each chunk)."""

    def close(self) -> None:
        """Flush, and in the parent process merge worker shards."""


class NullSink(Sink):
    """Alias of the disabled base sink, for explicitness at call sites."""


#: The process-wide disabled sink (also the bootstrap default).
NULL_SINK = NullSink()
