"""Ledger summaries and bench-trajectory comparison for ``repro report``.

Two consumers live here:

* :func:`summarize` / :func:`format_summary` — read a merged JSONL run
  ledger and produce the operational picture: per-phase wall-clock
  breakdown, result-cache hit rate, the slowest sweep cells, and pool
  worker utilization (busy time of worker-recorded cell spans over the
  pool's wall-clock window).
* :func:`compare_bench` / :func:`format_compare` — diff two
  ``BENCH_sweep.json`` payloads (see :mod:`repro.bench`) and flag any
  per-cell timing metric that regressed by more than a threshold.  The
  CLI turns a flagged comparison into a non-zero exit code, which is what
  lets CI gate on the bench trajectory.

Everything here is read-only and tolerant: unknown event kinds and
missing payload keys are skipped, never fatal, so old ledgers and old
bench payloads keep working as the schemas grow.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

#: Bench metrics where *lower is better*; regressions are increases.
#: Metrics absent from a payload (older schema) are skipped, so payloads
#: from before the per-tier breakdown stay comparable.
_BENCH_TIME_METRICS = (
    "reference.per_cell_s",
    "stream_kernel.build_s",
    "stream_kernel.warm_per_cell_s",
    "tiers.engine_per_cell_s",
    "tiers.streams_per_cell_s",
    "tiers.vector_per_cell_s",
    "server.build_s",
    "server.streams_per_cell_s",
    "lowering.per_lowering.jump_table.streams_per_cell_s",
    "lowering.per_lowering.if_tree.streams_per_cell_s",
    "lowering.per_lowering.clustered.streams_per_cell_s",
)

#: Bench metrics where *higher is better*; reported, never gating (they
#: are ratios of the timed metrics above, so gating them would double-count).
_BENCH_INFO_METRICS = (
    "speedup.per_cell",
    "speedup.including_build",
    "tiers.speedup.vector_vs_streams",
    "tiers.speedup.vector_vs_engine",
    "server.recovered",
    "lowering.recovered",
)


def read_ledger(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a merged JSONL ledger; malformed lines raise ``ValueError``."""
    records: List[Dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: malformed ledger line: {exc}")
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{lineno}: ledger line is not an object")
        records.append(record)
    return records


# ----------------------------------------------------------------------
# Ledger summary.
# ----------------------------------------------------------------------
def summarize(records: List[Dict[str, Any]], top: int = 10) -> Dict[str, Any]:
    """Aggregate ledger records into the ``repro report`` summary payload."""
    phase_totals: Dict[str, Tuple[int, float]] = {}
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    occurrences: Dict[str, int] = {}
    worker_pids: Set[Any] = set()
    parent_pids: Set[Any] = set()
    cells: List[Dict[str, Any]] = []
    pool_wall = 0.0

    for record in records:
        kind = record.get("kind")
        name = record.get("name", "")
        pid = record.get("pid")
        if kind == "run":
            if record.get("role") == "worker":
                worker_pids.add(pid)
            else:
                parent_pids.add(pid)
        elif kind == "span":
            duration = float(record.get("dur", 0.0))
            count, total = phase_totals.get(name, (0, 0.0))
            phase_totals[name] = (count + 1, total + duration)
            if name == "cell":
                cells.append(record)
            elif name == "pool.run":
                pool_wall += duration
        elif kind == "counter":
            counters[name] = counters.get(name, 0) + int(record.get("value", 0))
        elif kind == "gauge":
            gauges[name] = float(record.get("value", 0.0))
        elif kind == "event":
            occurrences[name] = occurrences.get(name, 0) + 1

    phases = [
        {"name": name, "count": count, "total_s": total,
         "mean_s": total / count if count else 0.0}
        for name, (count, total) in phase_totals.items()
    ]
    phases.sort(key=lambda p: (-float(p["total_s"]), str(p["name"])))

    slowest = sorted(cells, key=lambda r: -float(r.get("dur", 0.0)))[:top]
    summary: Dict[str, Any] = {
        "events": len(records),
        "pids": {"parent": sorted(p for p in parent_pids if p is not None),
                 "worker": sorted(p for p in worker_pids if p is not None)},
        "phases": phases,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "occurrences": dict(sorted(occurrences.items())),
        "cache": _cache_rates(counters),
        "cells": {
            "count": len(cells),
            "total_s": sum(float(r.get("dur", 0.0)) for r in cells),
            "slowest": [
                {"dur_s": float(r.get("dur", 0.0)), "pid": r.get("pid"),
                 **dict(r.get("meta") or {})}
                for r in slowest
            ],
        },
        "pool": _pool_utilization(pool_wall, gauges, cells, worker_pids),
    }
    return summary


def _cache_rates(counters: Dict[str, int]) -> Optional[Dict[str, Any]]:
    """Cell-level result-cache hit rate (file-level counters as fallback)."""
    for hit_name, miss_name in (
        ("runner.cell_cache.hit", "runner.cell_cache.miss"),
        ("result_cache.load.hit", "result_cache.load.miss"),
    ):
        hits = counters.get(hit_name)
        misses = counters.get(miss_name)
        if hits is None and misses is None:
            continue
        hits = hits or 0
        misses = misses or 0
        total = hits + misses
        return {"hits": hits, "misses": misses,
                "hit_rate": hits / total if total else 0.0,
                "source": hit_name.rsplit(".", 1)[0]}
    return None


def _pool_utilization(pool_wall: float, gauges: Dict[str, float],
                      cells: List[Dict[str, Any]],
                      worker_pids: Set[Any]) -> Optional[Dict[str, Any]]:
    if pool_wall <= 0.0:
        return None
    jobs = int(gauges.get("pool.jobs", 0))
    busy = sum(
        float(r.get("dur", 0.0)) for r in cells if r.get("pid") in worker_pids
    )
    utilization = busy / (pool_wall * jobs) if jobs else 0.0
    return {"wall_s": pool_wall, "jobs": jobs, "busy_s": busy,
            "utilization": utilization}


def format_summary(summary: Dict[str, Any]) -> str:
    """Human-readable one-screen rendering of :func:`summarize` output."""
    lines = [
        f"run ledger: {summary['events']} events from "
        f"{len(summary['pids']['parent'])} parent + "
        f"{len(summary['pids']['worker'])} worker process(es)"
    ]
    if summary["phases"]:
        lines.append("phases (by total wall-clock):")
        for phase in summary["phases"]:
            lines.append(
                f"  {phase['name']:<24} {phase['total_s']:>9.3f}s  "
                f"x{phase['count']:<6} ({phase['mean_s'] * 1e3:.2f} ms avg)"
            )
    cache = summary["cache"]
    if cache is not None:
        lines.append(
            f"result cache: {cache['hits']} hit(s) / {cache['misses']} "
            f"miss(es) ({cache['hit_rate']:.1%} hit rate, {cache['source']})"
        )
    pool = summary["pool"]
    if pool is not None:
        lines.append(
            f"pool: {pool['jobs']} worker(s), {pool['wall_s']:.3f}s wall, "
            f"{pool['busy_s']:.3f}s busy ({pool['utilization']:.1%} utilization)"
        )
    slowest = summary["cells"]["slowest"]
    if slowest:
        lines.append(f"slowest cells (top {len(slowest)}):")
        for cell in slowest:
            extras = ", ".join(
                f"{key}={value}" for key, value in sorted(cell.items())
                if key not in ("dur_s",)
            )
            lines.append(f"  {cell['dur_s'] * 1e3:>9.2f} ms  {extras}")
    if summary["occurrences"]:
        rendered = ", ".join(
            f"{name} x{count}"
            for name, count in summary["occurrences"].items()
        )
        lines.append(f"events: {rendered}")
    counters = summary["counters"]
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name:<32} {value:>10}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Bench payload comparison.
# ----------------------------------------------------------------------
def _lookup(payload: Dict[str, Any], dotted: str) -> Optional[float]:
    node: Any = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def compare_bench(old: Dict[str, Any], new: Dict[str, Any],
                  threshold_pct: float = 20.0) -> Dict[str, Any]:
    """Diff two ``BENCH_sweep.json`` payloads.

    A *timing* metric (seconds per cell, build seconds) regresses when the
    new value exceeds the old by more than ``threshold_pct`` percent;
    speedup ratios are reported for context but never gate, since they
    are derived from the timed metrics.  Metrics missing from either
    payload are skipped, keeping old payload versions comparable.

    A payload may declare its own metric lists via top-level
    ``gate_metrics`` / ``info_metrics`` keys (``BENCH_serve.json`` does:
    latency percentiles gate, throughput and hit rates inform).  When the
    *new* payload carries them they replace the sweep-bench defaults, so
    one ``repro report --compare`` command gates every bench flavour.
    """
    gate_names = new.get("gate_metrics")
    if not isinstance(gate_names, list):
        gate_names = list(_BENCH_TIME_METRICS)
    info_names = new.get("info_metrics")
    if not isinstance(info_names, list):
        info_names = list(_BENCH_INFO_METRICS)
    metrics: List[Dict[str, Any]] = []
    regressed = False
    for name in gate_names:
        old_value = _lookup(old, name)
        new_value = _lookup(new, name)
        if old_value is None or new_value is None or old_value <= 0.0:
            continue
        change_pct = 100.0 * (new_value - old_value) / old_value
        metric_regressed = change_pct > threshold_pct
        regressed = regressed or metric_regressed
        metrics.append({"name": name, "old": old_value, "new": new_value,
                        "change_pct": change_pct,
                        "regressed": metric_regressed})
    info: List[Dict[str, Any]] = []
    for name in info_names:
        old_value = _lookup(old, name)
        new_value = _lookup(new, name)
        if old_value is None or new_value is None or old_value <= 0.0:
            continue
        info.append({"name": name, "old": old_value, "new": new_value,
                     "change_pct": 100.0 * (new_value - old_value) / old_value})
    return {"threshold_pct": threshold_pct, "metrics": metrics, "info": info,
            "regressed": regressed}


def format_compare(result: Dict[str, Any]) -> str:
    """Render a :func:`compare_bench` result for the terminal."""
    lines = [f"bench comparison (regression threshold "
             f"{result['threshold_pct']:.0f}%):"]
    for metric in result["metrics"]:
        marker = "REGRESSED" if metric["regressed"] else "ok"
        lines.append(
            f"  {metric['name']:<32} {metric['old']:>12.6f} -> "
            f"{metric['new']:>12.6f}  {metric['change_pct']:>+7.1f}%  {marker}"
        )
    for metric in result["info"]:
        lines.append(
            f"  {metric['name']:<32} {metric['old']:>12.2f} -> "
            f"{metric['new']:>12.2f}  {metric['change_pct']:>+7.1f}%  (info)"
        )
    if not result["metrics"]:
        lines.append("  no comparable timing metrics found")
    lines.append(
        "regression detected" if result["regressed"] else "no regression"
    )
    return "\n".join(lines)
