"""Speed guard for the sweep fast path.

Asserts the structural win of :func:`repro.predictors.simulate_many`: over
a batch of configs it must beat the same number of independent
:func:`simulate` calls, because the per-call trace decode (boolean scan,
fancy indexing, numpy-scalar unboxing, enum table lookups) happens once
instead of N times.  Timing uses min-of-several rounds so scheduler noise
cannot mask a real regression — if this fails, someone re-introduced
per-call work into the batched path.

Needs no pytest-benchmark; runs with plain pytest:
``PYTHONPATH=src python -m pytest -q benchmarks/test_runner_speed.py``.
"""

import os
import time

import pytest

from repro.predictors import EngineConfig, simulate, simulate_many
from repro.workloads import get_trace

#: ijpeg has the lowest branch density of the eight workloads, i.e. the
#: largest decode share — the clearest signal for this guard.
WORKLOAD = "ijpeg"
N_CONFIGS = 8
ROUNDS = 5


def _trace_length() -> int:
    return int(os.environ.get("REPRO_BENCH_TRACE_LENGTH", "100000"))


@pytest.fixture(scope="module")
def trace():
    return get_trace(WORKLOAD, n_instructions=_trace_length())


@pytest.fixture(scope="module")
def configs():
    # BTB-geometry sweep: eight distinct cells, no shared predictor state
    return [EngineConfig(btb_sets=1 << bits) for bits in range(4, 4 + N_CONFIGS)]


def _min_time(func, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_simulate_many_beats_independent_calls(trace, configs):
    independent = _min_time(lambda: [simulate(trace, c) for c in configs])
    batched = _min_time(lambda: simulate_many(trace, configs))
    assert batched < independent, (
        f"simulate_many over {N_CONFIGS} configs took {batched:.3f}s but "
        f"{N_CONFIGS} independent simulate calls took {independent:.3f}s — "
        "the batched path lost its decode reuse"
    )


def test_simulate_many_results_match_independent_calls(trace, configs):
    # the guard is worthless if the fast path drifts numerically
    batched = simulate_many(trace, configs)
    for config, stats in zip(configs, batched):
        reference = simulate(trace, config)
        assert stats.branches == reference.branches
        assert stats.branch_mispredictions == reference.branch_mispredictions
        assert stats.btb_hits == reference.btb_hits
