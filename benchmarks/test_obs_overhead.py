"""Overhead guard for the :mod:`repro.obs` run ledger.

The subsystem's contract is *off-by-default-cheap*: with the null sink
installed the instrumentation must be unmeasurable, and even with a live
ledger the warm sweep path (the most telemetry-dense code in the repo:
one span per cell, counters per cache probe) must stay within 3% of the
uninstrumented wall-clock.  Timing is min-of-rounds like the other speed
guards, so scheduler noise cannot fail the build; an epsilon absorbs
timer granularity on sub-millisecond sweeps.

Runs with plain pytest:
``PYTHONPATH=src python -m pytest -q benchmarks/test_obs_overhead.py``.
"""

import os
import time

import pytest

from repro.obs import NULL_SINK, LedgerSink, get_sink, install, shutdown
from repro.predictors import EngineConfig, TargetCacheConfig
from repro.runner import SweepCell, run_cells

WORKLOAD = "perl"
N_CONFIGS = 12
ROUNDS = 3
#: Enabled-ledger overhead budget on the warm sweep (ISSUE acceptance bar).
MAX_OVERHEAD = 0.03
#: Absolute slack absorbing timer granularity (seconds per measurement).
EPSILON_S = 0.010


def _trace_length() -> int:
    return int(os.environ.get("REPRO_BENCH_TRACE_LENGTH", "100000"))


def _cells():
    return [
        SweepCell(
            WORKLOAD,
            EngineConfig(
                target_cache=TargetCacheConfig(kind="tagged", entries=entries,
                                               assoc=assoc)
            ),
        )
        for entries in (128, 256, 512, 1024)
        for assoc in (1, 2, 4)
    ][:N_CONFIGS]


def _min_time(func, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(autouse=True)
def _restore_sink():
    previous = get_sink()
    yield
    install(previous)


def test_enabled_ledger_overhead_under_3_percent(tmp_path):
    """A live ledger costs <3% on the warm (telemetry-dense) sweep."""
    cells = _cells()
    length = _trace_length()

    def sweep():
        run_cells(cells, jobs=1, trace_length=length)

    sweep()  # warm the trace cache and stream memo paths once

    install(NULL_SINK)
    disabled = _min_time(sweep)

    install(LedgerSink(tmp_path / "overhead.jsonl"))
    try:
        enabled = _min_time(sweep)
    finally:
        shutdown()

    budget = disabled * (1.0 + MAX_OVERHEAD) + EPSILON_S
    assert enabled <= budget, (
        f"warm sweep with the ledger enabled took {enabled:.4f}s vs "
        f"{disabled:.4f}s disabled "
        f"({(enabled / disabled - 1.0):+.1%} > {MAX_OVERHEAD:.0%} budget) — "
        "telemetry leaked into a per-branch path"
    )


def test_disabled_sink_operations_are_nanoscale():
    """The null path is a handful of attribute lookups, never I/O."""
    install(NULL_SINK)
    sink = get_sink()
    n = 100_000

    def disabled_ops():
        for _ in range(n):
            with sink.span("x", benchmark="perl"):
                pass
            sink.incr("c")

    per_op = _min_time(disabled_ops) / (2 * n)
    # generous: even slow CI machines do a no-op method call in well
    # under 2 microseconds; real regressions (I/O, allocation per call)
    # are orders of magnitude above this
    assert per_op < 2e-6, (
        f"disabled telemetry costs {per_op * 1e9:.0f}ns per operation — "
        "the null path is no longer free"
    )


def test_disabled_sweep_pays_nothing_measurable(tmp_path):
    """Instrumented code under the null sink tracks the 3% budget too:
    the off path must not regress as instrumentation spreads."""
    cells = _cells()
    length = _trace_length()

    def sweep():
        run_cells(cells, jobs=1, trace_length=length)

    sweep()
    install(NULL_SINK)
    first = _min_time(sweep)
    second = _min_time(sweep)
    # self-consistency bound: two identical disabled runs within noise of
    # each other validates that the harness itself is stable enough for
    # the enabled-vs-disabled comparison above to mean something
    ratio = max(first, second) / min(first, second)
    assert ratio < 1.5, (
        f"disabled sweep timing unstable ({first:.4f}s vs {second:.4f}s); "
        "overhead measurements on this machine are not trustworthy"
    )
