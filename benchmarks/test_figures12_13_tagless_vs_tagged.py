"""Regenerate Figures 12/13: tagless (512e) vs tagged (256e) crossover."""

from repro.experiments import run_experiment


def test_figures12_13_tagless_vs_tagged(ctx, run_once):
    table = run_once(run_experiment, "figures12_13", ctx)
    print()
    print(table.format())

    for benchmark in ("perl", "gcc"):
        tagless = table.cell(benchmark, "tagless 512")
        tagged_1 = table.cell(benchmark, "tagged 1-way")
        tagged_16 = table.cell(benchmark, "tagged 16-way")
        # paper: the tagless cache (twice the entries) beats a direct-mapped
        # tagged cache...
        assert tagless >= tagged_1 - 0.01, benchmark
        # ...but a sufficiently associative tagged cache catches up to
        # (or beats) tagless; the exact crossover point moves a little
        # with trace length, so allow a small band
        assert tagged_16 >= tagless - 0.03, benchmark
        # and tagged performance grows with associativity overall
        assert tagged_16 > tagged_1, benchmark
