"""Speed guard for the stream-factored sweep kernel.

The acceptance bar for :mod:`repro.predictors.streams`: once the streams
for a (trace, signature) pair are built, simulating a cell must cost at
least 5x less than the reference :func:`simulate_many` path, because the
per-cell loop touches only the target-cache-relevant subset of branches
(a few percent) instead of every dynamic branch.  A second assertion keeps
the stream build itself amortisable: build + warm sweep must beat the
reference sweep outright, otherwise grouping cells by signature in
``run_cells`` would no longer pay.

Timing is min-of-rounds (like ``test_runner_speed.py``) so scheduler noise
cannot mask a regression.  Runs with plain pytest:
``PYTHONPATH=src python -m pytest -q benchmarks/test_stream_speed.py``.
"""

import os
import time

import pytest

from repro.predictors import (
    EngineConfig,
    TargetCacheConfig,
    build_streams,
    decode_branches,
    simulate,
    simulate_many,
    simulate_streamed,
    stream_signature,
)
from repro.workloads import get_trace

#: perl is the paper's indirect-jump-heavy headline workload; its subset
#: fraction is realistic for the sweeps the kernel exists to accelerate.
WORKLOAD = "perl"
N_CONFIGS = 12
ROUNDS = 3
MIN_WARM_SPEEDUP = 5.0


def _trace_length() -> int:
    return int(os.environ.get("REPRO_BENCH_TRACE_LENGTH", "100000"))


@pytest.fixture(scope="module")
def trace():
    return get_trace(WORKLOAD, n_instructions=_trace_length())


@pytest.fixture(scope="module")
def configs():
    # a Table 7/8-style tagged-geometry sweep: one stream signature
    return [
        EngineConfig(
            target_cache=TargetCacheConfig(kind="tagged", entries=entries,
                                           assoc=assoc)
        )
        for entries in (128, 256, 512, 1024)
        for assoc in (1, 2, 4)
    ][:N_CONFIGS]


def _min_time(func, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_warm_stream_sweep_is_5x_faster_per_cell(trace, configs):
    decoded = decode_branches(trace)
    signature = stream_signature(configs[0])
    streams = build_streams(decoded, signature)

    reference = _min_time(lambda: simulate_many(trace, configs))
    warm = _min_time(
        lambda: [simulate_streamed(streams, config) for config in configs]
    )
    speedup = reference / warm
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm stream sweep over {len(configs)} cells took {warm:.3f}s vs "
        f"{reference:.3f}s reference ({speedup:.1f}x < "
        f"{MIN_WARM_SPEEDUP:.0f}x) — the stream kernel lost its "
        "subset-only per-cell loop"
    )


def test_build_plus_warm_sweep_beats_reference(trace, configs):
    decoded = decode_branches(trace)
    signature = stream_signature(configs[0])

    reference = _min_time(lambda: simulate_many(trace, configs))

    def cold_sweep():
        streams = build_streams(decoded, signature)
        return [simulate_streamed(streams, config) for config in configs]

    cold = _min_time(cold_sweep)
    assert cold < reference, (
        f"stream build + sweep took {cold:.3f}s but the reference sweep "
        f"took {reference:.3f}s — building streams no longer amortises "
        f"over {len(configs)} cells"
    )


def test_stream_results_match_reference(trace, configs):
    # the guard is worthless if the fast path drifts numerically
    decoded = decode_branches(trace)
    streams = build_streams(decoded, stream_signature(configs[0]))
    for config in configs:
        reference = simulate(trace, config, decoded=decoded)
        got = simulate_streamed(streams, config)
        assert got.branches == reference.branches
        assert got.branch_mispredictions == reference.branch_mispredictions
        assert got.btb_hits == reference.btb_hits
