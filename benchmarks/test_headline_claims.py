"""Regenerate the abstract/§5 headline claims."""

from repro.experiments import run_experiment


def test_headline_claims(ctx, run_once):
    table = run_once(run_experiment, "headline", ctx)
    print()
    print(table.format())

    # "this mechanism reduces the indirect jump misprediction rate by
    #  93.4% and 63.3%" — we require the same shape: large relative
    # reductions on both focus benchmarks, bigger on perl
    perl_reduction = table.cell("perl", "mispred reduction")
    gcc_reduction = table.cell("gcc", "mispred reduction")
    assert perl_reduction > 0.6
    assert gcc_reduction > 0.4
    assert perl_reduction > gcc_reduction

    # "...and the overall execution time by ~14% and ~5%": perl gains far
    # more than gcc (our absolute numbers run higher because the synthetic
    # workloads have 2-3x the paper's indirect-jump density)
    perl_exec = table.cell("perl", "exec reduction (tagless)")
    gcc_exec = table.cell("gcc", "exec reduction (tagless)")
    assert perl_exec > 0.08
    assert gcc_exec > 0.02
    assert perl_exec > gcc_exec
