"""Regenerate Table 2: default vs 2-bit BTB update strategy."""

from repro.experiments import run_experiment


def test_table2_two_bit_btb(ctx, run_once):
    table = run_once(run_experiment, "table2", ctx)
    print()
    print(table.format())

    deltas = {label: values[2] for label, values in table.rows}
    # the paper's central observation: a mixed result
    assert any(delta < 0 for delta in deltas.values())
    assert any(delta > 0 for delta in deltas.values())
    # hysteresis pays off where one target dominates
    assert deltas["compress"] < 0
    assert deltas["ijpeg"] < 0
    # and costs where targets genuinely alternate
    assert deltas["m88ksim"] > 0
    # either way the changes are small relative to what the target cache
    # achieves (Table 4)
    assert all(abs(delta) < 0.16 for delta in deltas.values())
