"""Speed guard for the vectorized columnar execution tier.

The acceptance bar for :mod:`repro.predictors.vector`: on Table 4 cells
(tagless schemes over pattern history) a warm vector cell must cost at
least 10x less than a warm stream-kernel cell, because the per-branch
Python loop over the target-cache subset has been replaced by a handful
of whole-array numpy passes.  A second assertion keeps the tier above the
reference engine by a wide margin, so ``run_cells``'s auto-selection can
never pick a slower tier.

The vector kernel's advantage grows with subset size (its cost is a few
fixed array passes, the stream kernel's is ~0.4us per subset row), so the
guard uses its own trace length — ``REPRO_VECTOR_BENCH_TRACE_LENGTH``,
default 500000 — rather than ``REPRO_BENCH_TRACE_LENGTH`` (60000 in CI),
which sits below the crossover where the 10x bar is meaningful.

Timing is min-of-rounds (like ``test_stream_speed.py``) so scheduler
noise cannot mask a regression.  Runs with plain pytest:
``PYTHONPATH=src python -m pytest -q benchmarks/test_vector_speed.py``.
"""

import os
import time

import pytest

from repro.bench import vector_sweep_configs
from repro.predictors import (
    build_streams,
    decode_branches,
    simulate,
    simulate_many,
    simulate_streamed,
    simulate_vector,
    stream_signature,
    vector_supported,
)
from repro.workloads import get_trace

WORKLOAD = "perl"
ROUNDS = 5
MIN_WARM_SPEEDUP = 10.0
MIN_ENGINE_SPEEDUP = 100.0


def _trace_length() -> int:
    return int(os.environ.get("REPRO_VECTOR_BENCH_TRACE_LENGTH", "500000"))


@pytest.fixture(scope="module")
def trace():
    return get_trace(WORKLOAD, n_instructions=_trace_length())


@pytest.fixture(scope="module")
def configs():
    # The paper's Table 4 cells; all vectorizable, one stream signature.
    return vector_sweep_configs()


@pytest.fixture(scope="module")
def streams(trace, configs):
    decoded = decode_branches(trace)
    return build_streams(decoded, stream_signature(configs[0]))


def _min_time(func, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_warm_vector_cell_is_10x_faster_than_streamed(streams, configs):
    assert all(vector_supported(config) for config in configs)
    # One untimed pass warms the memoised per-stream state (history
    # variants, columnar views) for both tiers, as in a real sweep.
    for config in configs:
        simulate_streamed(streams, config)
        simulate_vector(streams, config)

    streamed = _min_time(
        lambda: [simulate_streamed(streams, config) for config in configs]
    )
    vectored = _min_time(
        lambda: [simulate_vector(streams, config) for config in configs]
    )
    speedup = streamed / vectored
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm vector sweep over {len(configs)} Table 4 cells took "
        f"{vectored * 1e3:.2f}ms vs {streamed * 1e3:.2f}ms streamed "
        f"({speedup:.1f}x < {MIN_WARM_SPEEDUP:.0f}x) — the vector tier "
        "lost its whole-array per-cell kernel"
    )


def test_warm_vector_cell_dominates_reference_engine(trace, streams, configs):
    for config in configs:
        simulate_vector(streams, config)
    reference = _min_time(lambda: simulate_many(trace, configs), rounds=2)
    vectored = _min_time(
        lambda: [simulate_vector(streams, config) for config in configs]
    )
    speedup = reference / vectored
    assert speedup >= MIN_ENGINE_SPEEDUP, (
        f"vector sweep took {vectored * 1e3:.2f}ms vs {reference:.3f}s "
        f"reference ({speedup:.1f}x < {MIN_ENGINE_SPEEDUP:.0f}x)"
    )


def test_vector_results_match_reference(trace, streams, configs):
    # the guard is worthless if the fast path drifts numerically
    decoded = decode_branches(trace)
    for config in configs:
        reference = simulate(trace, config, decoded=decoded)
        got = simulate_vector(streams, config)
        assert got.branches == reference.branches
        assert got.branch_mispredictions == reference.branch_mispredictions
        assert got.btb_hits == reference.btb_hits
