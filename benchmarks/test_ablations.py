"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's tables: each isolates one design decision in
the reproduction and measures its cost, so a reader can see *why* the
system is built the way it is.
"""

import pytest

from repro.experiments.configs import (
    pattern_history,
    path_scheme_history,
    tagged_engine,
    tagless_engine,
)
from repro.predictors import EngineConfig, TargetCacheConfig, simulate
from repro.predictors.target_cache import TaggedIndexing


def test_ablation_returns_through_target_cache(ctx, run_once):
    """Paper footnote 1: returns belong on the RAS.  Routing them through
    the target cache instead must hurt (they pollute the cache and the
    stack-like behaviour defeats history indexing)."""
    def run():
        results = {}
        for benchmark in ("perl", "gcc"):
            trace = ctx.trace(benchmark)
            normal = simulate(trace, tagless_engine(history=pattern_history()))
            swallowed_config = EngineConfig(
                target_cache=TargetCacheConfig(kind="tagless"),
                history=pattern_history(),
                target_cache_handles_returns=True,
            )
            swallowed = simulate(trace, swallowed_config)
            results[benchmark] = (normal, swallowed)
        return results

    results = run_once(run)
    print()
    for benchmark, (normal, swallowed) in results.items():
        from repro.guest.isa import BranchKind

        ras_rate = normal.counters(BranchKind.RETURN).rate
        tc_rate = swallowed.counters(BranchKind.RETURN).rate
        print(f"{benchmark}: return mispredict RAS {ras_rate:.2%} vs "
              f"TC {tc_rate:.2%}; indirect {normal.indirect_mispred_rate:.2%}"
              f" vs {swallowed.indirect_mispred_rate:.2%}")
        # the RAS must be at least as good at returns, and the TC must not
        # get *better* at its own job from the added pollution
        assert ras_rate <= tc_rate + 0.01
        assert swallowed.indirect_mispred_rate >= normal.indirect_mispred_rate - 0.02


def test_ablation_lru_vs_random_replacement(ctx, run_once):
    """LRU in the tagged cache vs random replacement."""
    def run():
        rates = {}
        for policy in ("lru", "random"):
            config = EngineConfig(
                target_cache=TargetCacheConfig(
                    kind="tagged", entries=256, assoc=4,
                    indexing=TaggedIndexing.HISTORY_XOR,
                    replacement=policy,
                ),
                history=pattern_history(),
            )
            rates[policy] = simulate(ctx.trace("gcc"), config).indirect_mispred_rate
        return rates

    rates = run_once(run)
    print(f"\ngcc tagged 4-way: LRU {rates['lru']:.2%} vs "
          f"random {rates['random']:.2%}")
    # LRU should not be (materially) worse than random
    assert rates["lru"] <= rates["random"] + 0.02


def test_ablation_finite_tag_bits(ctx, run_once):
    """Full-precision tags vs a 6-bit tag field (cost-reduced hardware).

    Tag aliasing turns some tag misses into false hits with wrong targets.
    """
    def run():
        rates = {}
        for tag_bits in (None, 6, 2):
            config = EngineConfig(
                target_cache=TargetCacheConfig(
                    kind="tagged", entries=256, assoc=4, tag_bits=tag_bits,
                ),
                history=pattern_history(),
            )
            label = "full" if tag_bits is None else f"{tag_bits}-bit"
            rates[label] = simulate(
                ctx.trace("perl"), config
            ).indirect_mispred_rate
        return rates

    rates = run_once(run)
    print(f"\nperl tagged tag-width sweep: {rates}")
    assert rates["full"] <= rates["2-bit"] + 0.02


def test_ablation_shared_vs_wider_history_register(ctx, run_once):
    """The paper shares the direction predictor's history register with
    the target cache ('no extra hardware is required').  Check the cost of
    truncating the TC's history to fewer bits than the tagless index wants.
    """
    def run():
        rates = {}
        for bits in (5, 9):
            config = tagless_engine(history=pattern_history(bits),
                                    history_bits=9)
            rates[bits] = simulate(
                ctx.trace("perl"), config
            ).indirect_mispred_rate
        return rates

    rates = run_once(run)
    print(f"\nperl tagless with 5- vs 9-bit shared history: {rates}")
    assert rates[9] <= rates[5] + 0.02


def test_ablation_trace_length_stability(run_once):
    """Misprediction-rate estimates must be stable in trace length —
    otherwise every table in this reproduction would be an artefact of the
    trace budget."""
    from repro.experiments.common import ExperimentContext

    def run():
        rates = {}
        for length in (60_000, 120_000):
            local = ExperimentContext(trace_length=length)
            config = tagless_engine(
                history=path_scheme_history("ind jmp")
            )
            rates[length] = local.prediction(
                "perl", config
            ).indirect_mispred_rate
        return rates

    rates = run_once(run)
    print(f"\nperl TC mispredict vs trace length: {rates}")
    assert abs(rates[60_000] - rates[120_000]) < 0.08


def test_ablation_tagged_associativity_monotone(ctx, run_once):
    """Within the History-Xor tagged design, prediction accuracy should
    improve (weakly) with associativity at fixed capacity."""
    def run():
        rates = []
        for assoc in (1, 4, 16):
            stats = simulate(ctx.trace("perl"), tagged_engine(assoc=assoc))
            rates.append(stats.indirect_mispred_rate)
        return rates

    rates = run_once(run)
    print(f"\nperl tagged mispredict at assoc 1/4/16: "
          f"{[f'{r:.2%}' for r in rates]}")
    assert rates[2] <= rates[0] + 0.02
