"""Regenerate Figures 1-8: targets-per-indirect-jump histograms."""

from repro.experiments import run_experiment


def test_figures1_8_target_histograms(ctx, run_once):
    table = run_once(run_experiment, "figures1_8", ctx)
    print()
    print(table.format())

    shares = {label: dict(zip(table.columns, values))
              for label, values in table.rows}

    def many_target_share(name):
        return shares[name]["10-19"] + shares[name][">=20"]

    # the paper's split: gcc and perl are dominated by many-target jumps...
    assert many_target_share("perl") > 0.1
    assert many_target_share("gcc") > 0.1
    # ...while compress/ijpeg/vortex have none
    for name in ("compress", "ijpeg", "vortex"):
        assert many_target_share(name) == 0.0, name
