"""Regenerate Table 5: path-history address-bit selection."""

from repro.experiments import run_experiment
from repro.experiments.table5 import ADDRESS_BITS


def test_table5_path_bit_selection(ctx, run_once):
    table = run_once(run_experiment, "table5", ctx)
    print()
    print(table.format())

    # the low word bits carry information: for the schemes that work on
    # perl, at least one of the low bit choices beats the highest bit
    for scheme in ("ind jmp", "branch"):
        low = max(table.cell(f"perl bit {bit}", scheme)
                  for bit in ADDRESS_BITS[:3])
        high = table.cell(f"perl bit {ADDRESS_BITS[-1]}", scheme)
        assert low >= high - 0.02, scheme

    # call/ret path history is useless for perl (the interpreter loop
    # makes few calls); the paper's perl call/ret column is near zero
    for bit in ADDRESS_BITS:
        assert table.cell(f"perl bit {bit}", "call/ret") < 0.06

    # every gcc path configuration yields a real (positive) win
    for bit in ADDRESS_BITS:
        assert table.cell(f"gcc bit {bit}", "control") > 0.0
