"""Benchmark-harness fixtures.

Each benchmark regenerates one of the paper's tables/figures and prints the
rows (run with ``pytest benchmarks/ --benchmark-only -s`` to see them).
Experiments are full simulations, so every benchmark executes exactly once
(``benchmark.pedantic`` with one round) — the interesting number is the
wall-clock of one regeneration, and the assertions freeze the paper's
qualitative findings.

``REPRO_BENCH_TRACE_LENGTH`` (default 100000) sizes the traces.
"""

import os

import pytest

from repro.experiments.common import ExperimentContext


@pytest.fixture(scope="session", autouse=True)
def _hermetic_result_cache(tmp_path_factory):
    """Benchmarks measure real regenerations, not result-cache hits."""
    previous = os.environ.get("REPRO_RESULT_CACHE")
    os.environ["REPRO_RESULT_CACHE"] = str(
        tmp_path_factory.mktemp("result-cache")
    )
    yield
    if previous is None:
        os.environ.pop("REPRO_RESULT_CACHE", None)
    else:
        os.environ["REPRO_RESULT_CACHE"] = previous


def bench_trace_length() -> int:
    return int(os.environ.get("REPRO_BENCH_TRACE_LENGTH", "100000"))


@pytest.fixture(scope="session")
def ctx():
    """Shared experiment context: traces and baselines computed once."""
    return ExperimentContext(trace_length=bench_trace_length())


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
