"""Regenerate Table 1: benchmark statistics + BTB misprediction rates."""

from repro.experiments import run_experiment
from repro.workloads.registry import WORKLOADS


def test_table1_benchmark_stats(ctx, run_once):
    table = run_once(run_experiment, "table1", ctx)
    print()
    print(table.format())

    for name, values in table.rows:
        measured = values[3]
        paper = WORKLOADS[name].paper_btb_mispred
        # calibration: measured rate within a generous band of the paper's
        assert abs(measured - paper) < 0.20, (
            f"{name}: measured {measured:.1%} vs paper {paper:.1%}"
        )

    rates = {name: values[3] for name, values in table.rows}
    # paper ordering: perl and gcc are by far the worst
    assert rates["perl"] == max(rates.values())
    assert rates["gcc"] >= sorted(rates.values())[-2] - 0.01
