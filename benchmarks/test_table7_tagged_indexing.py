"""Regenerate Table 7: tagged target cache indexing x associativity."""

from repro.experiments import run_experiment


def test_table7_tagged_indexing(ctx, run_once):
    table = run_once(run_experiment, "table7", ctx)
    print()
    print(table.format())

    for benchmark in ("perl", "gcc"):
        # the Address scheme maps all of a jump's contexts into one set:
        # at 1-way it thrashes and the history schemes crush it
        addr_1 = table.cell(f"{benchmark} 1-way", "Addr")
        xor_1 = table.cell(f"{benchmark} 1-way", "Hist-Xor")
        concat_1 = table.cell(f"{benchmark} 1-way", "Hist-Concat")
        assert xor_1 > addr_1 + 0.05
        assert concat_1 > addr_1 + 0.05

        # associativity rescues Address indexing (monotone-ish improvement)
        addr_32 = table.cell(f"{benchmark} 32-way", "Addr")
        assert addr_32 > addr_1

        # the history schemes are already near their peak at 1-way: going
        # to 32-way gains far less than it gains the Address scheme
        xor_32 = table.cell(f"{benchmark} 32-way", "Hist-Xor")
        assert (xor_32 - xor_1) < (addr_32 - addr_1)
