"""Regenerate the extension experiments (beyond the paper's tables)."""

from repro.experiments import run_experiment


def test_oo_future_work(ctx, run_once):
    """§5's closing prediction, carried out."""
    table = run_once(run_experiment, "oo_future_work", ctx)
    print()
    print(table.format())
    for benchmark in ("richards", "deltablue"):
        assert (table.cell(benchmark, "tagged 8-way TC")
                < table.cell(benchmark, "BTB mispred") * 0.7)


def test_cascaded_filter(ctx, run_once):
    """The follow-on cascade: filtering wins once capacity binds."""
    table = run_once(run_experiment, "cascaded", ctx)
    print()
    print(table.format())
    wins = sum(1 for label, values in table.rows if values[2] < 0.005)
    assert wins >= len(table.rows) - 1


def test_modern_lineage(ctx, run_once):
    """BTB -> target cache -> ITTAGE-lite: the periodic-dispatch
    workloads are where geometric history lengths pay off most."""
    table = run_once(run_experiment, "modern", ctx)
    print()
    print(table.format())
    for benchmark in ("perl", "richards", "m88ksim"):
        tc = table.cell(benchmark, "target cache")
        ittage = table.cell(benchmark, "ITTAGE-lite")
        assert ittage < tc, benchmark
    # and the target cache already removed most of the BTB's misses
    for benchmark in ("perl", "gcc"):
        assert (table.cell(benchmark, "target cache")
                < table.cell(benchmark, "BTB") * 0.7)


def test_capacity_sweep(ctx, run_once):
    """Misprediction decreases monotonically (within noise) in capacity,
    and the paper's 512-entry budget is past the steep part."""
    table = run_once(run_experiment, "capacity", ctx)
    print()
    print(table.format())
    for benchmark, values in table.rows:
        for smaller, larger in zip(values, values[1:]):
            assert larger <= smaller + 0.02, benchmark
        # the step from 64 to 512 entries dwarfs the step beyond 512
        assert (values[0] - values[3]) > (values[3] - values[-1]) * 0.8


def test_speculative_history_ablation(ctx, run_once):
    """DESIGN.md ablation: retire-order simulation is a sound methodology
    because fetch stalls on mispredicts keep speculative history clean —
    the integrated model must agree with the trace-driven harness."""
    from repro.experiments.configs import path_scheme_history, tagless_engine
    from repro.pipeline import run_integrated
    from repro.predictors import simulate

    def run():
        results = {}
        config = tagless_engine(history=path_scheme_history("ind jmp"))
        trace = ctx.trace("perl")[:60_000]
        retire = simulate(trace, config).indirect_mispred_rate
        speculative = run_integrated(
            trace, config, ctx.machine
        ).stats.indirect_mispred_rate
        results["perl"] = (retire, speculative)
        return results

    results = run_once(run)
    print()
    for benchmark, (retire, speculative) in results.items():
        print(f"{benchmark}: retire-order {retire:.2%} vs "
              f"speculative fetch-time {speculative:.2%}")
        assert abs(retire - speculative) < 0.03
