"""Throughput micro-benchmarks for the simulator components.

Unlike the table benches (one-shot regenerations), these use
pytest-benchmark conventionally: multiple rounds over the hot loops, so
simulator-performance regressions show up in the timing report.
"""

import pytest

from repro.guest.vm import run_program
from repro.pipeline import MachineConfig, memory_penalties, run_timing
from repro.predictors import EngineConfig, TargetCacheConfig, simulate
from repro.workloads import build_program, get_trace


@pytest.fixture(scope="module")
def small_trace():
    return get_trace("perl", n_instructions=30_000)


def test_vm_execution_throughput(benchmark):
    program = build_program("perl")
    result = benchmark.pedantic(
        run_program, args=(program,), kwargs={"max_instructions": 30_000},
        rounds=3, iterations=1,
    )
    assert len(result) == 30_000


def test_prediction_simulator_throughput(benchmark, small_trace):
    config = EngineConfig(target_cache=TargetCacheConfig(kind="tagless"))
    stats = benchmark.pedantic(
        simulate, args=(small_trace, config), rounds=3, iterations=1,
    )
    assert stats.indirect_jumps > 0


def test_timing_model_throughput(benchmark, small_trace):
    machine = MachineConfig()
    penalties = memory_penalties(small_trace, machine)
    result = benchmark.pedantic(
        run_timing, args=(small_trace, machine, None, penalties),
        rounds=3, iterations=1,
    )
    assert result.cycles > 0


def test_memory_penalty_precomputation_throughput(benchmark, small_trace):
    machine = MachineConfig()
    penalties = benchmark.pedantic(
        memory_penalties, args=(small_trace, machine), rounds=3, iterations=1,
    )
    assert penalties.shape == (len(small_trace),)
