"""Regenerate Table 8: tagged target caches with path history."""

from repro.experiments import run_experiment


def test_table8_tagged_path(ctx, run_once):
    table = run_once(run_experiment, "table8", ctx)
    print()
    print(table.format())

    # paper §4.3.2: for perl, global ind-jmp path history is the winning
    # history at every associativity (against the other path schemes)
    for assoc in (1, 2, 4, 8, 16):
        row = f"perl {assoc}-way"
        ind_jmp = table.cell(row, "ind jmp")
        assert ind_jmp >= table.cell(row, "branch") - 0.03
        assert ind_jmp >= table.cell(row, "control") - 0.03
        assert ind_jmp > table.cell(row, "call/ret")

    # benefits grow (weakly) with associativity for the winning schemes
    assert (table.cell("perl 16-way", "ind jmp")
            >= table.cell("perl 1-way", "ind jmp"))
    assert (table.cell("gcc 16-way", "control")
            >= table.cell("gcc 1-way", "control"))
