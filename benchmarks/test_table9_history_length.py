"""Regenerate Table 9: 9 vs 16 pattern-history bits in tagged caches."""

from repro.experiments import run_experiment


def test_table9_history_length(ctx, run_once):
    table = run_once(run_experiment, "table9", ctx)
    print()
    print(table.format())

    def gap(benchmark, assoc):
        """exec-time advantage of 16-bit history over 9-bit."""
        row = f"{benchmark} {assoc}-way"
        return table.cell(row, "16 bits") - table.cell(row, "9 bits")

    # paper §4.3.3: more history bits create more (jump, history) contexts;
    # at low associativity the extra conflict misses eat the benefit, at
    # higher associativity the better identification wins back ground
    assert gap("perl", 8) > gap("perl", 1)
    assert gap("gcc", 16) > gap("gcc", 1)
