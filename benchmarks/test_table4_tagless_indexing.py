"""Regenerate Table 4: tagless target cache index schemes."""

from repro.experiments import run_experiment


def test_table4_tagless_indexing(ctx, run_once):
    table = run_once(run_experiment, "table4", ctx)
    print()
    print(table.format())

    # every scheme beats the BTB baseline on both focus benchmarks
    for benchmark in ("perl", "gcc"):
        base = ctx.baseline(benchmark).indirect_mispred_rate
        for label, _ in table.rows:
            assert table.cell(label, benchmark) < base, (label, benchmark)

    # paper §4.2.1: gshare best for gcc (spreads entries)
    assert table.cell("gshare(9)", "gcc") <= table.cell("GAg(9)", "gcc")
    assert table.cell("gshare(9)", "gcc") <= table.cell("GAs(8,1)", "gcc")

    # paper §4.2.1: address bits are worth more on gcc (many static
    # indirect jumps) than on perl (few): GAs degrades less vs GAg on gcc
    perl_gas_penalty = table.cell("GAs(8,1)", "perl") - table.cell("GAg(9)", "perl")
    gcc_gas_penalty = table.cell("GAs(8,1)", "gcc") - table.cell("GAg(9)", "gcc")
    assert gcc_gas_penalty < perl_gas_penalty
