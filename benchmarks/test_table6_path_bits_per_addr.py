"""Regenerate Table 6: path-history bits recorded per target."""

from repro.experiments import run_experiment


def test_table6_path_bits_per_addr(ctx, run_once):
    table = run_once(run_experiment, "table6", ctx)
    print()
    print(table.format())

    # the paper's tradeoff: with a 9-bit register, recording more bits per
    # target means remembering fewer targets; for perl's global schemes the
    # benefit decreases (most sharply for Control and Branch)
    for scheme in ("branch", "control"):
        one_bit = table.cell("perl 1b/target", scheme)
        three_bit = table.cell("perl 3b/target", scheme)
        assert one_bit > three_bit, scheme

    # the ind-jmp scheme filters to correlated branches only, so it decays
    # least — it stays the best perl column at every bits-per-target
    for bits in (1, 2, 3):
        row = f"perl {bits}b/target"
        ind_jmp = table.cell(row, "ind jmp")
        assert ind_jmp >= table.cell(row, "branch") - 0.03
        assert ind_jmp >= table.cell(row, "control") - 0.03
