"""The persistent result cache: key stability, invalidation, round-trips.

The cache is only safe if every input that can change a simulation result
changes the key — and nothing else does.  These tests pin both directions.
"""

import dataclasses

import numpy as np
import pytest

from repro.guest.isa import BranchKind
from repro.pipeline import MachineConfig
from repro.predictors import (
    DirectionConfig,
    EngineConfig,
    HistoryConfig,
    HistorySource,
    TargetCacheConfig,
    simulate,
)
from repro.predictors.btb import UpdateStrategy
from repro.runner import (
    ResultCache,
    SweepCell,
    cell_key,
    config_token,
    result_cache_enabled,
    run_cells,
    timing_key,
)

LENGTH = 20_000
SEED = 1997


def key(config=EngineConfig(), benchmark="perl", length=LENGTH, seed=SEED):
    return cell_key(benchmark, config, length, seed)


class TestKeyInvalidation:
    def test_trace_length_change_misses(self):
        assert key(length=LENGTH) != key(length=LENGTH + 1)

    def test_seed_change_misses(self):
        assert key(seed=SEED) != key(seed=SEED + 1)

    def test_benchmark_change_misses(self):
        assert key(benchmark="perl") != key(benchmark="gcc")

    @pytest.mark.parametrize("change", [
        dict(btb_sets=128),
        dict(btb_ways=2),
        dict(btb_strategy=UpdateStrategy.TWO_BIT),
        dict(ras_depth=16),
        dict(direction=DirectionConfig(scheme="gag")),
        dict(target_cache=TargetCacheConfig(kind="tagless")),
        dict(history=HistoryConfig(source=HistorySource.PATH_GLOBAL)),
        dict(target_cache_handles_returns=True),
    ])
    def test_every_engine_config_field_is_in_the_key(self, change):
        changed = dataclasses.replace(EngineConfig(), **change)
        assert key(config=changed) != key(config=EngineConfig())

    def test_nested_history_field_is_in_the_key(self):
        a = EngineConfig(history=HistoryConfig(bits=9))
        b = EngineConfig(history=HistoryConfig(bits=10))
        assert key(config=a) != key(config=b)

    def test_unrelated_environment_change_still_hits(self, monkeypatch):
        before = key()
        monkeypatch.setenv("SOME_UNRELATED_VARIABLE", "changed")
        monkeypatch.setenv("REPRO_BENCH_TRACE_LENGTH", "123")
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert key() == before

    def test_key_is_deterministic_across_calls(self):
        assert key() == key()

    def test_config_token_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            config_token(object())


class TestResultCacheStore:
    def test_round_trip_with_mask(self, tmp_path):
        from repro.workloads import get_trace

        trace = get_trace("perl", n_instructions=LENGTH)
        stats = simulate(trace, EngineConfig(), collect_mask=True)
        cache = ResultCache(tmp_path)
        cache.store("a" * 64, stats)
        loaded = cache.load("a" * 64, need_mask=True)
        assert loaded is not None
        assert loaded.instructions == stats.instructions
        assert loaded.btb_lookups == stats.btb_lookups
        assert loaded.btb_hits == stats.btb_hits
        for kind in BranchKind:
            assert (loaded.counters(kind).executed
                    == stats.counters(kind).executed)
            assert (loaded.counters(kind).mispredicted
                    == stats.counters(kind).mispredicted)
        assert np.array_equal(loaded.mispredict_mask, stats.mispredict_mask)

    def test_maskless_entry_misses_when_mask_required(self, tmp_path):
        from repro.workloads import get_trace

        trace = get_trace("perl", n_instructions=LENGTH)
        stats = simulate(trace, EngineConfig())
        cache = ResultCache(tmp_path)
        cache.store("b" * 64, stats)
        assert cache.load("b" * 64, need_mask=True) is None
        assert cache.load("b" * 64, need_mask=False) is not None

    def test_corrupt_entry_self_heals(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache._path("c" * 64)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not an npz archive")
        assert cache.load("c" * 64) is None
        assert not path.exists()

    def test_missing_key_is_a_miss(self, tmp_path):
        assert ResultCache(tmp_path).load("d" * 64) is None


class TestCacheBehaviourInRunCells:
    def test_second_run_never_simulates(self, tmp_path, monkeypatch):
        import repro.runner.pool as pool_mod

        cache = ResultCache(tmp_path)
        cells = [
            SweepCell("perl", EngineConfig(), collect_mask=True),
            SweepCell("perl",
                      EngineConfig(target_cache=TargetCacheConfig(kind="tagless"))),
        ]
        first = run_cells(cells, jobs=1, trace_length=LENGTH,
                          result_cache=cache)

        calls = []
        for name in ("simulate", "simulate_streamed", "simulate_vector"):
            real = getattr(pool_mod, name)

            def counting(*args, __real=real, **kwargs):
                calls.append(1)
                return __real(*args, **kwargs)

            monkeypatch.setattr(pool_mod, name, counting)
        second = run_cells(cells, jobs=1, trace_length=LENGTH,
                           result_cache=cache)
        assert not calls, "warm cache must not re-simulate any cell"
        for one, two in zip(first, second):
            assert one.branch_mispredictions == two.branch_mispredictions
            if one.mispredict_mask is not None:
                assert np.array_equal(one.mispredict_mask, two.mispredict_mask)

    def test_changed_trace_length_re_simulates(self, tmp_path, monkeypatch):
        import repro.runner.pool as pool_mod

        cache = ResultCache(tmp_path)
        cells = [SweepCell("perl", EngineConfig())]
        run_cells(cells, jobs=1, trace_length=LENGTH, result_cache=cache)

        # Spy every execution tier: whichever the runner picks, a cache
        # miss must reach exactly one of them.
        calls = []
        for name in ("simulate", "simulate_streamed", "simulate_vector"):
            real = getattr(pool_mod, name)

            def counting(*args, __real=real, **kwargs):
                calls.append(1)
                return __real(*args, **kwargs)

            monkeypatch.setattr(pool_mod, name, counting)
        run_cells(cells, jobs=1, trace_length=LENGTH // 2, result_cache=cache)
        assert calls, "different trace length must miss the cache"

    def test_env_switch_disables_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        assert not result_cache_enabled()
        assert ResultCache.from_env() is None

    def test_env_default_enables_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        assert result_cache_enabled()
        assert ResultCache.from_env() is not None


class TestCyclesCache:
    def test_timing_key_covers_the_machine(self):
        base = timing_key("perl", EngineConfig(), LENGTH, SEED, MachineConfig())
        assert base == timing_key("perl", EngineConfig(), LENGTH, SEED,
                                  MachineConfig())
        assert base != timing_key("perl", EngineConfig(), LENGTH, SEED,
                                  MachineConfig(fetch_width=8))
        assert base != timing_key("perl", EngineConfig(), LENGTH, SEED,
                                  MachineConfig(memory_latency=20))

    def test_timing_key_covers_the_cell(self):
        machine = MachineConfig()
        base = timing_key("perl", EngineConfig(), LENGTH, SEED, machine)
        assert base != timing_key("gcc", EngineConfig(), LENGTH, SEED, machine)
        assert base != timing_key("perl", EngineConfig(btb_sets=128), LENGTH,
                                  SEED, machine)
        assert base != timing_key("perl", EngineConfig(), LENGTH + 1, SEED,
                                  machine)

    def test_cycles_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store_cycles("e" * 64, 12345)
        assert cache.load_cycles("e" * 64) == 12345
        assert cache.load_cycles("f" * 64) is None

    def test_corrupt_cycles_entry_self_heals(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache._cycles_path("9" * 64)
        path.parent.mkdir(parents=True)
        path.write_text("not json at all")
        assert cache.load_cycles("9" * 64) is None
        assert not path.exists()

    def test_warm_context_skips_run_timing(self, tmp_path, monkeypatch):
        import repro.experiments.common as common_mod
        from repro.experiments.common import ExperimentContext

        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        cold = ExperimentContext(trace_length=LENGTH)
        reference = cold.cycles("perl", EngineConfig())

        calls = []
        real_run_timing = common_mod.run_timing

        def counting_run_timing(*args, **kwargs):
            calls.append(1)
            return real_run_timing(*args, **kwargs)

        monkeypatch.setattr(common_mod, "run_timing", counting_run_timing)
        warm = ExperimentContext(trace_length=LENGTH)
        assert warm.cycles("perl", EngineConfig()) == reference
        assert warm.baseline_cycles("perl") == reference
        assert not calls, "warm result cache must not re-run the timing model"


class TestTornEntries:
    """Satellite of the fsync-free write audit: a machine crash after the
    atomic rename can leave a *torn* (truncated/zero-byte) npz on disk.
    Such entries must read as evictable misses — never as a crash."""

    def _store_real_entry(self, tmp_path):
        from repro.workloads import get_trace

        trace = get_trace("perl", n_instructions=LENGTH)
        stats = simulate(trace, EngineConfig())
        cache = ResultCache(tmp_path)
        cache.store("e" * 64, stats)
        return cache, cache._path("e" * 64)

    @pytest.mark.parametrize("keep_fraction", [0.0, 0.25, 0.5, 0.9])
    def test_truncated_entry_is_a_miss_and_evicts(self, tmp_path,
                                                  keep_fraction):
        cache, path = self._store_real_entry(tmp_path)
        whole = path.read_bytes()
        path.write_bytes(whole[:int(len(whole) * keep_fraction)])
        assert cache.load("e" * 64) is None
        assert not path.exists(), "torn entry must be evicted"
        # And the next store/load round-trips normally again.
        from repro.workloads import get_trace

        stats = simulate(get_trace("perl", n_instructions=LENGTH),
                         EngineConfig())
        cache.store("e" * 64, stats)
        assert cache.load("e" * 64) is not None

    def test_store_leaves_no_temp_files(self, tmp_path):
        cache, path = self._store_real_entry(tmp_path)
        leftovers = [p for p in path.parent.iterdir()
                     if p.suffix == ".tmp" or ".tmp" in p.name]
        assert leftovers == []


class TestClaims:
    """Cross-instance cell claims: atomic acquisition, stale takeover."""

    KEY = "f" * 64

    def test_claim_is_exclusive_until_released(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.claim(self.KEY)
        assert not cache.claim(self.KEY)  # second claimant loses
        cache.release(self.KEY)
        assert cache.claim(self.KEY)  # and can win after release

    def test_release_is_idempotent(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.release(self.KEY)  # releasing an unclaimed key is a no-op
        assert cache.claim(self.KEY)
        cache.release(self.KEY)
        cache.release(self.KEY)

    def test_stale_claim_is_taken_over(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.claim(self.KEY)
        # ttl 0: any existing claim counts as abandoned.
        assert cache.claim(self.KEY, ttl_s=0.0)

    def test_fresh_claim_age_is_small(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.claim_age(self.KEY) is None
        cache.claim(self.KEY)
        age = cache.claim_age(self.KEY)
        assert age is not None and age < 60.0

    def test_two_caches_share_claims_via_directory(self, tmp_path):
        a, b = ResultCache(tmp_path), ResultCache(tmp_path)
        assert a.claim(self.KEY)
        assert not b.claim(self.KEY)
        a.release(self.KEY)
        assert b.claim(self.KEY)
