"""The determinism checker: each rule on known-bad and known-good code."""

import textwrap

from repro.analysis.base import SourceFile
from repro.analysis.determinism import DeterminismChecker


def _findings(code, relpath="predictors/x.py"):
    source = SourceFile.from_text(relpath, textwrap.dedent(code))
    return DeterminismChecker().check_file(source)


def _rules(code):
    return [f.rule for f in _findings(code)]


class TestUnseededRandom:
    def test_global_random_call_is_flagged(self):
        assert _rules("import random\nrandom.random()\n") == \
            ["det-unseeded-random"]

    def test_global_randint_is_flagged(self):
        assert _rules("import random\nrandom.randint(0, 7)\n") == \
            ["det-unseeded-random"]

    def test_seeded_random_constructor_is_allowed(self):
        assert _rules("import random\nrng = random.Random(1997)\n") == []

    def test_aliased_import_is_resolved(self):
        code = "import random as rnd\nrnd.shuffle(items)\n"
        assert _rules(code) == ["det-unseeded-random"]

    def test_from_import_is_resolved(self):
        code = "from random import shuffle\nshuffle(items)\n"
        assert _rules(code) == ["det-unseeded-random"]

    def test_numpy_global_rng_is_flagged(self):
        code = "import numpy as np\nnp.random.rand(4)\n"
        assert _rules(code) == ["det-unseeded-random"]

    def test_numpy_default_rng_with_seed_is_allowed(self):
        code = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert _rules(code) == []

    def test_numpy_default_rng_without_seed_is_flagged(self):
        code = "import numpy as np\nrng = np.random.default_rng()\n"
        assert _rules(code) == ["det-unseeded-random"]


class TestWallClock:
    def test_time_time_is_flagged(self):
        assert _rules("import time\nt = time.time()\n") == ["det-wall-clock"]

    def test_perf_counter_is_flagged(self):
        code = "import time\nt = time.perf_counter()\n"
        assert _rules(code) == ["det-wall-clock"]

    def test_datetime_now_is_flagged(self):
        code = "from datetime import datetime\nd = datetime.now()\n"
        assert _rules(code) == ["det-wall-clock"]

    def test_unrelated_now_method_is_allowed(self):
        assert _rules("x = scheduler.now()\n") == []


class TestEnvRead:
    def test_environ_get_is_flagged(self):
        code = "import os\nv = os.environ.get('REPRO_X')\n"
        assert _rules(code) == ["det-env-read"]

    def test_environ_subscript_is_flagged(self):
        code = "import os\nv = os.environ['REPRO_X']\n"
        assert _rules(code) == ["det-env-read"]

    def test_getenv_is_flagged(self):
        assert _rules("import os\nv = os.getenv('REPRO_X')\n") == \
            ["det-env-read"]

    def test_unrelated_environ_attribute_is_allowed(self):
        assert _rules("v = simulator.environ\n") == []


class TestSetIteration:
    def test_for_over_set_literal_is_flagged(self):
        assert _rules("for x in {1, 2, 3}:\n    pass\n") == \
            ["det-set-iteration"]

    def test_comprehension_over_set_call_is_flagged(self):
        assert _rules("out = [x for x in set(names)]\n") == \
            ["det-set-iteration"]

    def test_for_over_frozenset_call_is_flagged(self):
        assert _rules("for x in frozenset(names):\n    pass\n") == \
            ["det-set-iteration"]

    def test_sorted_set_is_allowed(self):
        assert _rules("for x in sorted(set(names)):\n    pass\n") == []

    def test_membership_test_is_allowed(self):
        assert _rules("ok = x in {1, 2, 3}\n") == []


class TestScope:
    def test_out_of_scope_file_is_skipped_by_run(self):
        from repro.analysis.base import Project

        bad = SourceFile.from_text(
            "metrics/x.py", "import random\nrandom.random()\n"
        )
        project = Project(root=None, files=[bad])
        assert DeterminismChecker().run(project) == []

    def test_in_scope_prefixes_cover_runner(self):
        from repro.analysis.base import Project

        bad = SourceFile.from_text(
            "runner/x.py", "import random\nrandom.random()\n"
        )
        project = Project(root=None, files=[bad])
        assert len(DeterminismChecker().run(project)) == 1
