"""Server workload family and the server_btb capacity experiment.

The tentpole claim has two directions, both pinned here:

* the server-like workloads put the fetch engine in the *capacity* regime
  — static branch footprints well beyond the 1024-entry baseline BTB,
  low per-site reuse, depressed BTB hit rates — and there the two-level
  BTB recovers a substantial fraction of the baseline indirect
  mispredicts;
* the SPEC-like controls stay in the paper's *polymorphism* regime —
  footprints that fit the primary BTB — and there btb2 is approximately
  neutral (exactly neutral on perl).
"""

import pytest

from repro.experiments import server_btb
from repro.experiments.common import ExperimentContext
from repro.trace.stats import footprint
from repro.workloads import get_trace, workload_names, workload_spec
from repro.workloads.registry import SERVER_WORKLOADS

TRACE_LENGTH = 100_000


@pytest.fixture(scope="module")
def ctx():
    context = ExperimentContext(trace_length=TRACE_LENGTH,
                                use_trace_cache=False, jobs=1)
    return context


@pytest.fixture(scope="module")
def table(ctx):
    return server_btb.run(ctx)


class TestRegistry:
    def test_server_family_registered(self):
        assert set(SERVER_WORKLOADS) == {
            "webserver_like", "db_like", "rpc_like",
        }

    def test_names_gated_behind_include_server(self):
        default = workload_names()
        assert not set(SERVER_WORKLOADS) & set(default)
        with_server = workload_names(include_oo=True, include_server=True)
        assert set(SERVER_WORKLOADS) < set(with_server)

    def test_specs_record_measured_calibration(self):
        for name, spec in SERVER_WORKLOADS.items():
            assert 0.0 < spec.paper_btb_mispred < 1.0, name
            assert spec.paper_target_shape in ("few", "moderate", "many")
            assert workload_spec(name) is spec

    def test_traces_build_and_validate(self):
        # get_trace validates the trace internally; a short length keeps
        # this cheap while still exercising all three generator presets
        for name in SERVER_WORKLOADS:
            trace = get_trace(name, n_instructions=20_000, use_cache=False)
            assert len(trace) == 20_000


class TestCapacityRegime:
    """The server traces are in the BTB-capacity regime; SPEC-likes are not."""

    def test_footprint_exceeds_primary_btb(self, ctx):
        for name in server_btb.SERVER_BENCHMARKS:
            fp = footprint(ctx.trace(name))
            # 256 sets x 4 ways = 1024 entries in the baseline BTB
            assert fp.static_branch_sites > 1024, name
            assert fp.static_indirect_sites > 256, name

    def test_low_per_site_reuse(self, ctx):
        server_reuse = [
            footprint(ctx.trace(name)).branch_site_reuse
            for name in server_btb.SERVER_BENCHMARKS
        ]
        control_reuse = [
            footprint(ctx.trace(name)).branch_site_reuse
            for name in server_btb.CONTROL_BENCHMARKS
        ]
        assert max(server_reuse) < min(control_reuse)

    def test_btb_hit_rate_depressed_on_server_rows(self, table):
        for name in server_btb.SERVER_BENCHMARKS:
            assert table.cell(name, "BTB hit") < 0.95, name
        for name in server_btb.CONTROL_BENCHMARKS:
            assert table.cell(name, "BTB hit") > 0.95, name


class TestCapacityStory:
    """Both directions of the tentpole claim, from the experiment table."""

    def test_substantial_recovery_on_server_workloads(self, table):
        # measured at this length: webserver 19%, db 16%, rpc 35%
        for name in server_btb.SERVER_BENCHMARKS:
            assert table.cell(name, "recovered") > 0.10, name

    def test_recovery_comes_from_the_l2(self, table):
        biggest = server_btb._column(*server_btb.L2_GEOMETRIES[-1])
        for name in server_btb.SERVER_BENCHMARKS:
            no_l2 = table.cell(name, "btb2 no-L2")
            with_l2 = table.cell(name, biggest)
            base = table.cell(name, "btb-only")
            assert with_l2 < no_l2, name
            assert abs(no_l2 - base) < 0.01, name

    def test_approximately_neutral_on_spec_controls(self, table):
        biggest = server_btb._column(*server_btb.L2_GEOMETRIES[-1])
        for name in server_btb.CONTROL_BENCHMARKS:
            delta = abs(table.cell(name, biggest)
                        - table.cell(name, "btb-only"))
            assert delta < 0.005, name

    def test_larger_l2_never_hurts(self, table):
        columns = [server_btb._column(*geometry)
                   for geometry in server_btb.L2_GEOMETRIES[1:]]
        for name in server_btb.SERVER_BENCHMARKS:
            rates = [table.cell(name, column) for column in columns]
            assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:])), name

    def test_table_shape(self, table):
        assert [label for label, _ in table.rows] == (
            list(server_btb.SERVER_BENCHMARKS)
            + list(server_btb.CONTROL_BENCHMARKS)
        )
        assert table.columns[0] == "btb-only"
        assert table.columns[-2:] == ["recovered", "BTB hit"]
