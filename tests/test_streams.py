"""Stream-factored kernel: bit-for-bit equivalence with the reference engine.

:mod:`repro.predictors.streams` exists purely as a performance layer — its
contract is that :func:`simulate_streamed` produces byte-identical
:class:`PredictionStats` (counters, BTB statistics, and per-instruction
mispredict masks) to :func:`repro.predictors.engine.simulate` for every
supported config.  These tests pin that contract across all eight
workloads, a representative slice of the paper's Table 4/7/9 design space,
the engine's edge cases (oracle priming, returns-through-target-cache,
2-bit BTB hysteresis, PAs direction prediction), and a hypothesis sweep of
random :class:`EngineConfig`s.
"""

import numpy as np
import pytest

from repro.guest.isa import BranchKind
from repro.predictors import (
    EngineConfig,
    HistoryConfig,
    HistorySource,
    TargetCacheConfig,
    build_streams,
    decode_branches,
    simulate,
    simulate_many_streamed,
    simulate_streamed,
    stream_signature,
    streams_supported,
)
from repro.predictors.btb import UpdateStrategy
from repro.predictors.direction import DirectionConfig
from repro.predictors.history import PathFilter
from repro.workloads import get_trace

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


def _pattern(bits=9):
    return HistoryConfig(source=HistorySource.PATTERN, bits=bits)


def _path(path_filter, bits=9, bits_per_target=1, address_bit=2):
    return HistoryConfig(
        source=HistorySource.PATH_GLOBAL, bits=bits,
        bits_per_target=bits_per_target, address_bit=address_bit,
        path_filter=path_filter,
    )


def _per_addr(bits=9, bits_per_target=3):
    return HistoryConfig(
        source=HistorySource.PATH_PER_ADDRESS, bits=bits,
        bits_per_target=bits_per_target,
    )


#: Representative slice of the paper's sweeps: Table 4 (tagless index
#: schemes over pattern history), Table 7 (tagged associativity), Table 9
#: (tagged vs bounding predictors), plus every routing edge case the
#: stream kernel must replicate exactly.
REPRESENTATIVE_CONFIGS = [
    # BTB-only baseline (Tables 1-2)
    EngineConfig(),
    EngineConfig(btb_strategy=UpdateStrategy.TWO_BIT),
    # Table 4: tagless schemes, pattern history
    EngineConfig(target_cache=TargetCacheConfig(kind="tagless", scheme="gag"),
                 history=_pattern()),
    EngineConfig(
        target_cache=TargetCacheConfig(kind="tagless", scheme="gas",
                                       history_bits=6, address_bits=3),
        history=_pattern(),
    ),
    EngineConfig(target_cache=TargetCacheConfig(kind="tagless"),
                 history=_pattern()),
    # Table 5/6-style path histories feeding a tagless cache
    EngineConfig(target_cache=TargetCacheConfig(kind="tagless"),
                 history=_path(PathFilter.IND_JMP, bits_per_target=3)),
    EngineConfig(target_cache=TargetCacheConfig(kind="tagless"),
                 history=_path(PathFilter.CALL_RET, address_bit=4)),
    EngineConfig(target_cache=TargetCacheConfig(kind="tagless"),
                 history=_per_addr()),
    # Table 7: tagged associativity sweep
    EngineConfig(target_cache=TargetCacheConfig(kind="tagged", entries=64,
                                                assoc=1)),
    EngineConfig(target_cache=TargetCacheConfig(kind="tagged", entries=64,
                                                assoc=4)),
    # Table 9 companions: bounding predictors and extensions
    EngineConfig(target_cache=TargetCacheConfig(kind="oracle")),
    EngineConfig(target_cache=TargetCacheConfig(kind="last_target")),
    EngineConfig(target_cache=TargetCacheConfig(kind="cascaded", entries=64,
                                                assoc=2)),
    # routing edge cases
    EngineConfig(target_cache=TargetCacheConfig(kind="tagless"),
                 target_cache_handles_returns=True),
    EngineConfig(target_cache_handles_returns=True),
    EngineConfig(direction=DirectionConfig(scheme="pas", history_bits=6,
                                           address_bits=4),
                 target_cache=TargetCacheConfig(kind="tagless")),
    EngineConfig(btb_sets=32, btb_ways=1, ras_depth=2,
                 target_cache=TargetCacheConfig(kind="tagged", entries=32,
                                                assoc=2)),
]


def assert_identical(a, b):
    assert a.instructions == b.instructions
    assert a.btb_lookups == b.btb_lookups
    assert a.btb_hits == b.btb_hits
    assert set(a.per_kind) == set(b.per_kind)
    for kind in BranchKind:
        assert a.counters(kind).executed == b.counters(kind).executed
        assert a.counters(kind).mispredicted == b.counters(kind).mispredicted
    if a.mispredict_mask is None:
        assert b.mispredict_mask is None
    else:
        assert np.array_equal(a.mispredict_mask, b.mispredict_mask)


class TestEquivalenceAcrossWorkloads:
    def test_bit_identical_on_every_workload(self, all_small_traces):
        for name, trace in all_small_traces.items():
            decoded = decode_branches(trace)
            streams_memo = {}
            for config in REPRESENTATIVE_CONFIGS:
                assert streams_supported(config)
                signature = stream_signature(config)
                streams = streams_memo.get(signature)
                if streams is None:
                    streams = build_streams(decoded, signature)
                    streams_memo[signature] = streams
                reference = simulate(trace, config, collect_mask=True,
                                     decoded=decoded)
                streamed = simulate_streamed(streams, config,
                                             collect_mask=True)
                assert_identical(streamed, reference)
            # the amortisation claim: one stream set served many cells
            assert len(streams_memo) < len(REPRESENTATIVE_CONFIGS)

    def test_simulate_many_streamed_matches_batch(self, perl_trace):
        decoded = decode_branches(perl_trace)
        configs = REPRESENTATIVE_CONFIGS[:8]
        streamed = simulate_many_streamed(decoded, configs)
        for config, got in zip(configs, streamed):
            assert_identical(
                got, simulate(perl_trace, config, decoded=decoded)
            )

    def test_masks_optional_like_reference(self, perl_trace):
        decoded = decode_branches(perl_trace)
        config = REPRESENTATIVE_CONFIGS[4]
        streams = build_streams(decoded, stream_signature(config))
        assert simulate_streamed(streams, config).mispredict_mask is None
        mask = simulate_streamed(streams, config,
                                 collect_mask=True).mispredict_mask
        assert mask is not None and mask.dtype == np.bool_


class TestSignature:
    def test_projection_drops_cell_local_fields(self):
        base = EngineConfig()
        tagless = EngineConfig(target_cache=TargetCacheConfig(kind="tagless"))
        tagged = EngineConfig(
            target_cache=TargetCacheConfig(kind="tagged", entries=64, assoc=2),
            history=_path(PathFilter.BRANCH, bits=12),
        )
        assert stream_signature(base) == stream_signature(tagless)
        assert stream_signature(base) == stream_signature(tagged)

    def test_projection_keeps_stream_relevant_fields(self):
        base = stream_signature(EngineConfig())
        assert stream_signature(EngineConfig(btb_sets=64)) != base
        assert stream_signature(
            EngineConfig(btb_strategy=UpdateStrategy.TWO_BIT)
        ) != base
        assert stream_signature(EngineConfig(ras_depth=4)) != base
        assert stream_signature(
            EngineConfig(direction=DirectionConfig(scheme="gag"))
        ) != base
        assert stream_signature(
            EngineConfig(target_cache_handles_returns=True)
        ) != base

    def test_supported_gates_on_wide_history(self):
        assert streams_supported(EngineConfig())
        assert streams_supported(
            EngineConfig(target_cache=TargetCacheConfig(),
                         history=_pattern(bits=64))
        )
        assert not streams_supported(
            EngineConfig(target_cache=TargetCacheConfig(),
                         history=_pattern(bits=65))
        )
        # without a target cache the history width is never consumed
        assert streams_supported(EngineConfig(history=_pattern(bits=65)))
        assert not streams_supported(
            EngineConfig(direction=DirectionConfig(history_bits=65))
        )

    def test_mismatched_signature_raises(self, perl_trace):
        decoded = decode_branches(perl_trace)
        streams = build_streams(decoded, stream_signature(EngineConfig()))
        with pytest.raises(ValueError, match="does not project"):
            simulate_streamed(streams, EngineConfig(btb_sets=64))


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestRandomConfigs:
    @pytest.fixture(scope="class")
    def small_trace(self):
        return get_trace("go", n_instructions=15_000, use_cache=False)

    @pytest.fixture(scope="class")
    def prepared(self, small_trace):
        return small_trace, decode_branches(small_trace), {}

    if HAVE_HYPOTHESIS:
        engine_configs = st.builds(
            EngineConfig,
            btb_sets=st.sampled_from([64, 256]),
            btb_ways=st.sampled_from([1, 4]),
            btb_strategy=st.sampled_from(list(UpdateStrategy)),
            direction=st.builds(
                DirectionConfig,
                scheme=st.sampled_from(["gshare", "gag", "gas", "pas"]),
                history_bits=st.integers(min_value=2, max_value=14),
                address_bits=st.integers(min_value=0, max_value=4),
            ),
            ras_depth=st.integers(min_value=1, max_value=32),
            target_cache=st.one_of(
                st.none(),
                st.builds(
                    TargetCacheConfig,
                    kind=st.sampled_from(
                        ["tagless", "tagged", "cascaded", "oracle",
                         "last_target"]
                    ),
                    scheme=st.sampled_from(["gag", "gas", "gshare"]),
                    history_bits=st.integers(min_value=2, max_value=10),
                    address_bits=st.integers(min_value=0, max_value=3),
                    entries=st.sampled_from([32, 128]),
                    assoc=st.sampled_from([1, 2, 4]),
                ),
            ),
            history=st.builds(
                HistoryConfig,
                source=st.sampled_from(list(HistorySource)),
                bits=st.integers(min_value=4, max_value=24),
                bits_per_target=st.integers(min_value=1, max_value=4),
                address_bit=st.integers(min_value=0, max_value=5),
                path_filter=st.sampled_from(list(PathFilter)),
            ),
            target_cache_handles_returns=st.booleans(),
        )

        @settings(max_examples=25, deadline=None)
        @given(config=engine_configs)
        def test_random_config_bit_identical(self, prepared, config):
            trace, decoded, streams_memo = prepared
            assert streams_supported(config)
            signature = stream_signature(config)
            streams = streams_memo.get(signature)
            if streams is None:
                streams = build_streams(decoded, signature)
                streams_memo[signature] = streams
            reference = simulate(trace, config, collect_mask=True,
                                 decoded=decoded)
            streamed = simulate_streamed(streams, config, collect_mask=True)
            assert_identical(streamed, reference)
