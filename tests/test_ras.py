"""Unit tests for the return address stack."""

import pytest

from repro.predictors.ras import ReturnAddressStack


def test_lifo_order():
    ras = ReturnAddressStack()
    ras.push(0x100)
    ras.push(0x200)
    assert ras.pop() == 0x200
    assert ras.pop() == 0x100


def test_underflow_returns_none_and_counts():
    ras = ReturnAddressStack()
    assert ras.pop() is None
    assert ras.underflows == 1


def test_overflow_drops_oldest():
    ras = ReturnAddressStack(depth=2)
    ras.push(1 * 4)
    ras.push(2 * 4)
    ras.push(3 * 4)
    assert len(ras) == 2
    assert ras.pop() == 12
    assert ras.pop() == 8
    assert ras.pop() is None


def test_counters():
    ras = ReturnAddressStack()
    ras.push(4)
    ras.pop()
    ras.pop()
    assert ras.pushes == 1
    assert ras.pops == 2
    assert ras.underflows == 1


def test_clear():
    ras = ReturnAddressStack()
    ras.push(4)
    ras.clear()
    assert len(ras) == 0


def test_depth_validation():
    with pytest.raises(ValueError):
        ReturnAddressStack(depth=0)


def test_deep_recursion_beyond_depth_mispredicts_oldest_frames():
    """Once recursion exceeds the hardware depth, the outermost returns
    lose their entries — the realistic RAS degradation mode."""
    ras = ReturnAddressStack(depth=4)
    addresses = [i * 4 for i in range(1, 9)]
    for address in addresses:
        ras.push(address)
    popped = [ras.pop() for _ in range(8)]
    assert popped[:4] == addresses[:3:-1]  # newest four predicted correctly
    assert popped[4:] == [None] * 4
