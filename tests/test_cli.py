"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table4" in out
    assert "perl" in out
    assert "richards" in out


def test_list_command_describes_entries(capsys):
    """Every experiment and workload line carries a description."""
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for line in out.splitlines():
        if line.startswith("  "):
            name, _, description = line.strip().partition("  ")
            assert description.strip(), f"no description for {name!r}"


def test_predictors_command(capsys):
    assert main(["predictors"]) == 0
    out = capsys.readouterr().out
    for kind in ("tagless", "tagged", "cascaded", "ittage", "oracle",
                 "last_target"):
        assert kind in out
    assert "traits:" in out
    assert "needs-history" in out
    assert "spec fields:" in out
    # parameterised example labels, not bare kind strings
    assert "ittage(4x" in out


def test_predictors_command_shows_backend_support(capsys):
    assert main(["predictors"]) == 0
    out = capsys.readouterr().out
    # every kind advertises its execution-tier chain, best first
    assert "backends: vector > streams > engine" in out   # tagless family
    assert "backends: streams > engine" in out            # tagged/cascaded
    backend_lines = [line for line in out.splitlines()
                     if "backends:" in line]
    kinds = [line for line in out.splitlines()
             if line.startswith("  ") and not line.startswith("    ")]
    assert len(backend_lines) == len(kinds)


def test_lint_exit_codes(capsys):
    # clean tree -> 0; unknown checker -> usage error 2 naming the valid set
    assert main(["lint"]) == 0
    assert "no findings" in capsys.readouterr().out
    assert main(["lint", "--only", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "bogus" in err and "worker-safety" in err


def test_lint_json_schema(capsys):
    assert main(["lint", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is True
    assert payload["findings"] == []
    assert "worker-safety" in payload["checkers"]
    assert "transitive-purity" in payload["checkers"]
    assert payload["suppressed"] >= 1


def test_lint_sarif_schema(capsys):
    assert main(["lint", "--format", "sarif"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in payload["$schema"]
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert run["results"] == []


def test_lint_only_comma_and_repeat_compose(capsys):
    assert main(["lint", "--only", "determinism,hotloop",
                 "--only", "bitwidth", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["checkers"]) == {"determinism", "hotloop", "bitwidth"}


def test_backend_flag_is_validated(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["table4", "--backend", "simd"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_experiment_accepts_backend_override(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    assert main(["table4", "--trace-length", "40000",
                 "--backend", "vector"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out


def test_unknown_experiment_fails(capsys):
    assert main(["table99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_trace_command(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    assert main(["trace", "compress", "--trace-length", "8000"]) == 0
    out = capsys.readouterr().out
    assert "8000 instructions" in out
    assert "indirect jumps" in out


def test_trace_command_requires_workload(capsys):
    assert main(["trace"]) == 2


def test_dump_command(capsys):
    assert main(["dump", "perl", "--head", "20"]) == 0
    out = capsys.readouterr().out
    assert "static indirect jumps" in out
    assert "jmp" in out or "li" in out


def test_dump_requires_workload(capsys):
    assert main(["dump"]) == 2


def test_experiment_command_runs(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    assert main(["table4", "--trace-length", "40000"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "gshare(9)" in out


def test_sweep_requires_spec(capsys):
    assert main(["sweep"]) == 2
    assert "--spec" in capsys.readouterr().err


def test_sweep_missing_spec_file(capsys, tmp_path):
    assert main(["sweep", "--spec", str(tmp_path / "nope.json")]) == 2
    assert "not found" in capsys.readouterr().err


def test_sweep_rejects_bad_cells(capsys, tmp_path):
    spec = tmp_path / "sweep.json"

    spec.write_text("{not json")
    assert main(["sweep", "--spec", str(spec)]) == 2
    assert "not valid JSON" in capsys.readouterr().err

    spec.write_text(json.dumps({"cells": []}))
    assert main(["sweep", "--spec", str(spec)]) == 2
    assert "non-empty" in capsys.readouterr().err

    spec.write_text(json.dumps(
        {"cells": [{"preset": "oracle", "engine": {}}]}
    ))
    assert main(["sweep", "--spec", str(spec)]) == 2
    assert "exactly one" in capsys.readouterr().err

    spec.write_text(json.dumps(
        {"benchmarks": ["no_such_bench"], "cells": [{"preset": "oracle"}]}
    ))
    assert main(["sweep", "--spec", str(spec)]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_sweep_runs_spec_cells(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "results"))
    spec = tmp_path / "sweep.json"
    spec.write_text(json.dumps({
        "benchmarks": ["perl"],
        "cells": [
            {"preset": "btb-only"},
            {"engine": {"target_cache": {"kind": "tagless"},
                        "history": {"source": "pattern", "bits": 9}},
             "label": "my-tagless"},
        ],
    }))
    assert main(["sweep", "--spec", str(spec),
                 "--trace-length", "20000"]) == 0
    out = capsys.readouterr().out
    assert "perl btb-only" in out
    assert "perl my-tagless" in out
    assert "indirect" in out and "overall" in out


def test_sweep_error_is_one_line_naming_the_key(capsys, tmp_path):
    """Malformed spec JSON: one line on stderr naming the offending key
    path, exit code 2 — never a traceback."""
    spec = tmp_path / "sweep.json"
    spec.write_text(json.dumps({
        "benchmarks": ["perl"],
        "cells": [{"preset": "btb-only"},
                  {"engine": {"target_cache": {"kind": "no_such_kind"}}}],
    }))
    assert main(["sweep", "--spec", str(spec)]) == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1  # exactly one line
    assert "cells[1].engine" in err
    assert "Traceback" not in err


def test_sweep_names_unknown_top_level_keys(capsys, tmp_path):
    spec = tmp_path / "sweep.json"
    spec.write_text(json.dumps({"cels": [], "cells": [{"preset": "oracle"}]}))
    assert main(["sweep", "--spec", str(spec)]) == 2
    assert "cels" in capsys.readouterr().err


def test_sweep_rejects_non_list_plugins(capsys, tmp_path):
    spec = tmp_path / "sweep.json"
    spec.write_text(json.dumps(
        {"plugins": "notalist", "cells": [{"preset": "btb-only"}]}
    ))
    assert main(["sweep", "--spec", str(spec)]) == 2
    assert "'plugins' must be a list of strings" in capsys.readouterr().err


def test_loadgen_unreachable_server_exits_2(capsys, monkeypatch):
    import repro.service.loadgen as loadgen_mod

    monkeypatch.setattr(loadgen_mod, "CONNECT_RETRY_S", 0.0)
    assert main(["loadgen", "--port", "1", "--requests", "1"]) == 2
    assert "cannot reach" in capsys.readouterr().err
