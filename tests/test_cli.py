"""Tests for the command-line interface."""


from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table4" in out
    assert "perl" in out
    assert "richards" in out


def test_unknown_experiment_fails(capsys):
    assert main(["table99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_trace_command(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    assert main(["trace", "compress", "--trace-length", "8000"]) == 0
    out = capsys.readouterr().out
    assert "8000 instructions" in out
    assert "indirect jumps" in out


def test_trace_command_requires_workload(capsys):
    assert main(["trace"]) == 2


def test_dump_command(capsys):
    assert main(["dump", "perl", "--head", "20"]) == 0
    out = capsys.readouterr().out
    assert "static indirect jumps" in out
    assert "jmp" in out or "li" in out


def test_dump_requires_workload(capsys):
    assert main(["dump"]) == 2


def test_experiment_command_runs(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    assert main(["table4", "--trace-length", "40000"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "gshare(9)" in out
