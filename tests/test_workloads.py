"""Tests for the eight synthetic workloads and their registry."""

import pytest

from repro.guest.vm import run_program
from repro.trace.stats import branch_mix, indirect_target_histogram, target_profile
from repro.workloads import build_program, get_trace, workload_names
from repro.workloads.registry import WORKLOADS


class TestRegistry:
    def test_all_eight_benchmarks_present(self):
        assert workload_names() == sorted(
            ["compress", "gcc", "go", "ijpeg", "m88ksim", "perl", "vortex",
             "xlisp"]
        )

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            build_program("spice")
        with pytest.raises(KeyError, match="unknown workload"):
            get_trace("spice")

    def test_specs_carry_paper_calibration(self):
        for spec in WORKLOADS.values():
            assert 0.0 < spec.paper_btb_mispred < 1.0
            assert spec.description


class TestEveryWorkload:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_builds_and_validates(self, name, all_small_traces):
        trace = all_small_traces[name]
        trace.validate()
        mix = branch_mix(trace)
        assert mix.indirect_jumps > 20, f"{name} has too few indirect jumps"
        assert 0.05 < mix.branch_fraction < 0.45

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_deterministic_per_seed(self, name):
        a = get_trace(name, n_instructions=5_000, seed=7, use_cache=False)
        b = get_trace(name, n_instructions=5_000, seed=7, use_cache=False)
        assert a == b

    @pytest.mark.parametrize("name", ["perl", "gcc"])
    def test_seed_changes_trace(self, name):
        a = get_trace(name, n_instructions=5_000, seed=1, use_cache=False)
        b = get_trace(name, n_instructions=5_000, seed=2, use_cache=False)
        assert a != b

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_program_runs_beyond_trace_cap(self, name):
        """Workloads are endless loops: they never halt under the cap."""
        program = build_program(name)
        raw = run_program(program, max_instructions=5_000)
        assert len(raw) == 5_000
        assert not raw.halted


class TestFigureShapes:
    """Figures 1-8: gcc/perl have many-target jumps, others mostly few."""

    def test_perl_main_dispatch_is_megamorphic(self, all_small_traces):
        profile = target_profile(all_small_traces["perl"])
        assert profile.max_targets() >= 15

    def test_perl_has_few_static_indirect_jumps(self, all_small_traces):
        profile = target_profile(all_small_traces["perl"])
        assert profile.static_jumps <= 8

    def test_gcc_has_many_static_indirect_jumps(self, gcc_trace):
        # needs the longer trace: later passes' switches only execute once
        # the first full pass over the forest completes
        profile = target_profile(gcc_trace)
        assert profile.static_jumps >= 8

    def test_gcc_walker_switches_are_megamorphic(self, all_small_traces):
        profile = target_profile(all_small_traces["gcc"])
        assert profile.max_targets() >= 12

    @pytest.mark.parametrize("name", ["compress", "ijpeg", "vortex"])
    def test_low_mispredict_benchmarks_have_few_targets(
        self, name, all_small_traces
    ):
        profile = target_profile(all_small_traces[name])
        assert profile.max_targets() <= 9

    def test_histograms_are_normalised(self, all_small_traces):
        for name, trace in all_small_traces.items():
            histogram = indirect_target_histogram(trace)
            assert sum(histogram.values()) == pytest.approx(100.0), name


class TestCalibration:
    """Our BTB misprediction rates must stay in the paper's band — these
    tests freeze the calibration so refactors cannot silently break it."""

    # (workload, low, high) around the paper's Table 1 values
    BANDS = [
        ("compress", 0.08, 0.25),
        ("gcc", 0.40, 0.75),
        ("go", 0.30, 0.60),
        ("ijpeg", 0.04, 0.20),
        ("m88ksim", 0.20, 0.50),
        ("perl", 0.60, 0.90),
        ("vortex", 0.04, 0.18),
        ("xlisp", 0.12, 0.35),
    ]

    @pytest.mark.parametrize("name,low,high", BANDS)
    def test_btb_mispred_in_band(self, name, low, high, all_small_traces):
        from repro.predictors import EngineConfig, simulate

        stats = simulate(all_small_traces[name], EngineConfig())
        assert low <= stats.indirect_mispred_rate <= high

    def test_ordering_matches_paper(self, all_small_traces):
        """perl and gcc worst; vortex/ijpeg/compress best (Table 1)."""
        from repro.predictors import EngineConfig, simulate

        rates = {
            name: simulate(trace, EngineConfig()).indirect_mispred_rate
            for name, trace in all_small_traces.items()
        }
        worst = sorted(rates, key=rates.get, reverse=True)[:3]
        best = sorted(rates, key=rates.get)[:3]
        assert "perl" in worst and "gcc" in worst
        assert set(best) <= {"vortex", "ijpeg", "compress", "xlisp"}

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_indirect_density_below_seven_percent(self, name,
                                                  all_small_traces):
        mix = branch_mix(all_small_traces[name])
        assert mix.indirect_fraction < 0.07
