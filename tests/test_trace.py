"""Unit tests for the Trace container."""

import numpy as np
import pytest

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import INSTRUCTION_BYTES, BranchKind, InstrClass
from repro.guest.vm import run_program
from repro.trace.trace import Trace, TraceRecord


def _small_trace():
    b = ProgramBuilder()
    b.li(1, 2)
    b.label("loop")
    b.addi(1, 1, -1)
    b.bne(1, 0, "loop")
    b.halt()
    return Trace.from_raw(run_program(b.build()))


class TestConstruction:
    def test_from_raw_roundtrip(self):
        trace = _small_trace()
        assert len(trace) == 5  # li + 2x(addi, bne)
        assert trace.pc.dtype == np.uint64

    def test_empty(self):
        trace = Trace.empty()
        assert len(trace) == 0
        trace.validate()  # no-op on empty

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="mismatched"):
            Trace(pc=[0, 4], instr_class=[0], branch_kind=[0], taken=[0],
                  target=[0], src1=[0], src2=[0], dst=[0], mem_addr=[0])


class TestAccessors:
    def test_record_materialisation(self):
        trace = _small_trace()
        record = trace.record(2)
        assert isinstance(record, TraceRecord)
        assert record.branch_kind is BranchKind.COND_DIRECT
        assert record.taken is True
        assert record.next_pc == record.target

    def test_record_not_taken_next_pc_is_fallthrough(self):
        trace = _small_trace()
        last_branch = trace.record(4)
        assert last_branch.branch_kind is BranchKind.COND_DIRECT
        assert not last_branch.taken
        assert last_branch.next_pc == last_branch.fallthrough

    def test_iteration_yields_records(self):
        trace = _small_trace()
        records = list(trace)
        assert len(records) == len(trace)
        assert all(isinstance(r, TraceRecord) for r in records)

    def test_slicing_returns_trace_view(self):
        trace = _small_trace()
        head = trace[:2]
        assert isinstance(head, Trace)
        assert len(head) == 2

    def test_boolean_mask_indexing(self):
        trace = _small_trace()
        branches = trace[np.flatnonzero(trace.is_branch)]
        assert len(branches) == 2

    def test_branches_view(self):
        trace = _small_trace()
        assert len(trace.branches()) == int(trace.is_branch.sum())

    def test_equality(self):
        a = _small_trace()
        b = _small_trace()
        assert a == b
        assert a != a[:3]


class TestMasks:
    def test_indirect_mask_excludes_returns(self):
        b = ProgramBuilder()
        b.jmp("main")
        b.label("fn")
        b.ret()
        b.label("dest")
        b.halt()
        b.label("main")
        b.call("fn")
        b.li(1, "dest")
        b.jr(1)
        trace = Trace.from_raw(run_program(b.build(entry="main")))
        assert int(trace.is_indirect_jump.sum()) == 1  # the jr only
        assert int(trace.is_return.sum()) == 1

    def test_next_pc_array_matches_execution_order(self):
        trace = _small_trace()
        next_pcs = trace.next_pc_array()
        assert np.array_equal(next_pcs[:-1], trace.pc[1:])


class TestValidate:
    def test_valid_trace_passes(self):
        _small_trace().validate()

    def test_discontinuity_detected(self):
        trace = _small_trace()
        broken = Trace(
            pc=trace.pc.copy(), instr_class=trace.instr_class,
            branch_kind=trace.branch_kind, taken=trace.taken,
            target=trace.target, src1=trace.src1, src2=trace.src2,
            dst=trace.dst, mem_addr=trace.mem_addr,
        )
        broken.pc[1] = 0xDEAD0
        with pytest.raises(ValueError, match="discontinuity"):
            broken.validate()

    def test_non_branch_taken_detected(self):
        trace = _small_trace()
        taken = trace.taken.copy()
        taken[0] = True  # the li is not a branch
        broken = Trace(
            pc=trace.pc, instr_class=trace.instr_class,
            branch_kind=trace.branch_kind, taken=taken, target=trace.target,
            src1=trace.src1, src2=trace.src2, dst=trace.dst,
            mem_addr=trace.mem_addr,
        )
        with pytest.raises(ValueError, match="non-branch"):
            broken.validate()

    def test_misaligned_target_detected(self):
        b = ProgramBuilder()
        b.li(1, INSTRUCTION_BYTES * 2 + 1)
        b.halt()
        trace = Trace.from_raw(run_program(b.build()))
        broken = Trace(
            pc=[0], instr_class=[int(InstrClass.BRANCH)],
            branch_kind=[int(BranchKind.UNCOND_DIRECT)], taken=[True],
            target=[6], src1=[-1], src2=[-1], dst=[-1], mem_addr=[0],
        )
        with pytest.raises(ValueError, match="misaligned"):
            broken.validate()
        del trace  # silence linters


class TestWorkloadTraceValidity:
    def test_every_workload_trace_validates(self, all_small_traces):
        for name, trace in all_small_traces.items():
            trace.validate()
            assert len(trace) == 25_000, name
