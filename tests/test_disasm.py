"""Unit tests for the guest disassembler."""


from repro.guest.builder import ProgramBuilder
from repro.guest.disasm import (
    disassemble_program,
    format_instruction,
    format_trace_window,
)
from repro.guest.isa import Instruction, Op
from repro.guest.vm import run_program
from repro.trace.trace import Trace
from repro.workloads import build_program


class TestFormatInstruction:
    def test_three_register(self):
        assert format_instruction(
            Instruction(op=Op.ADD, rd=1, rs1=2, rs2=3)
        ) == "add    r1, r2, r3"

    def test_immediate_forms(self):
        assert format_instruction(
            Instruction(op=Op.ADDI, rd=1, rs1=2, imm=-4)
        ) == "addi   r1, r2, -4"
        assert format_instruction(
            Instruction(op=Op.LI, rd=5, imm=100)
        ) == "li     r5, 100"

    def test_memory_forms(self):
        assert format_instruction(
            Instruction(op=Op.LOAD, rd=1, rs1=2, imm=8)
        ) == "load   r1, [r2+8]"
        assert format_instruction(
            Instruction(op=Op.STORE, rs1=2, rs2=3, imm=0)
        ) == "store  r3, [r2+0]"

    def test_branch_with_label(self):
        rendered = format_instruction(
            Instruction(op=Op.BEQ, rs1=1, rs2=2, imm=0x40),
            labels={0x40: "loop"},
        )
        assert rendered == "beq    r1, r2, loop"

    def test_branch_without_label_shows_hex(self):
        rendered = format_instruction(
            Instruction(op=Op.JMP, imm=0x80)
        )
        assert rendered == "jmp    0x80"

    def test_indirect_and_control(self):
        assert format_instruction(Instruction(op=Op.JR, rs1=7)) == "jr     r7"
        assert format_instruction(Instruction(op=Op.CALLR, rs1=7)) == "callr  r7"
        assert format_instruction(Instruction(op=Op.RET)) == "ret"
        assert format_instruction(Instruction(op=Op.HALT)) == "halt"

    def test_every_opcode_renders(self):
        for op in Op:
            text = format_instruction(Instruction(op=op, rd=1, rs1=2, rs2=3,
                                                  imm=4))
            assert isinstance(text, str) and text


class TestDisassembleProgram:
    def test_labels_annotate_addresses(self):
        b = ProgramBuilder()
        b.jmp("main")
        b.label("main")
        b.li(1, 1)
        b.halt()
        listing = disassemble_program(b.build(entry="main"))
        assert "main:" in listing
        assert "jmp    main" in listing

    def test_count_limits_output(self):
        b = ProgramBuilder()
        for i in range(10):
            b.li(1, i)
        b.halt()
        listing = disassemble_program(b.build(), count=3)
        assert len(listing.splitlines()) == 3

    def test_every_workload_disassembles_fully(self):
        for name in ("perl", "gcc", "richards", "deltablue"):
            program = build_program(name)
            listing = disassemble_program(program)
            assert len(listing.splitlines()) >= program.num_instructions


class TestTraceWindow:
    def test_annotates_branches(self):
        b = ProgramBuilder()
        b.li(1, 1)
        b.label("loop")
        b.addi(1, 1, -1)
        b.bne(1, 0, "loop")
        b.halt()
        trace = Trace.from_raw(run_program(b.build()))
        window = format_trace_window(trace, 0, 10)
        assert "cond_direct" in window
        assert "not-taken" in window

    def test_window_bounds(self):
        b = ProgramBuilder()
        b.li(1, 1)
        b.halt()
        trace = Trace.from_raw(run_program(b.build()))
        assert len(format_trace_window(trace, 0, 100).splitlines()) == 1
