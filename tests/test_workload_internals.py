"""Tests for the host-side generators inside the workload modules."""

import random

import pytest

from repro.workloads.deltablue_like import N_KINDS, DeltablueParams
from repro.workloads.gcc_like import (
    _BINARY_KINDS,
    _LEAF_KINDS,
    _UNARY_KINDS,
    _TreeGen,
    GccParams,
)
from repro.workloads.m88ksim_like import (
    N_TOY_OPS,
    T_BEQZ,
    T_BNEZ,
    T_JMP,
    _enc,
    _toy_program,
)
from repro.workloads.perl_like import PerlParams
from repro.workloads.xlisp_like import TAG_CONS, TAG_FIXNUM, _HeapGen, XlispParams


class TestGccTreeGen:
    def _tree(self, seed=0, max_depth=5, target=9):
        gen = _TreeGen(random.Random(seed), max_depth, target)
        gen.generate()
        return gen.nodes

    def test_root_is_first_node(self):
        nodes = self._tree()
        assert nodes[0][0] in _BINARY_KINDS

    def test_child_indices_in_range(self):
        nodes = self._tree(seed=3)
        for kind, _value, nkids, kid0, kid1 in nodes:
            if nkids >= 1:
                assert 0 <= kid0 < len(nodes)
            if nkids == 2:
                assert 0 <= kid1 < len(nodes)

    def test_arity_matches_kind(self):
        nodes = self._tree(seed=5, target=30)
        for kind, _value, nkids, _k0, _k1 in nodes:
            if kind in _LEAF_KINDS:
                assert nkids == 0
            elif kind in _UNARY_KINDS:
                assert nkids == 1
            else:
                assert nkids == 2

    def test_value_embeds_kind_signature(self):
        nodes = self._tree(seed=7, target=20)
        for kind, value, *_ in nodes:
            assert value & 0xFF == (kind * 37 + 11) & 0xFF

    def test_tree_is_acyclic_and_connected(self):
        nodes = self._tree(seed=11, target=25)
        seen = set()

        def walk(index):
            assert index not in seen, "cycle detected"
            seen.add(index)
            kind, _v, nkids, kid0, kid1 = nodes[index]
            if nkids >= 1:
                walk(kid0)
            if nkids == 2:
                walk(kid1)

        walk(0)
        assert seen == set(range(len(nodes)))

    def test_params_defaults_sane(self):
        params = GccParams()
        assert params.n_templates > 1
        assert params.n_statements > params.n_templates


class TestM88ksimToyProgram:
    def test_encoding_roundtrip(self):
        word = _enc(5, rd=3, rs=7, imm=0x42)
        assert (word >> 24) & 0xFF == 5
        assert (word >> 16) & 0xFF == 3
        assert (word >> 8) & 0xFF == 7
        assert word & 0xFF == 0x42

    def test_program_opcodes_in_range(self):
        program = _toy_program(random.Random(0), 16)
        for word in program:
            assert 0 <= (word >> 24) & 0xFF < N_TOY_OPS

    def test_branch_targets_in_range(self):
        program = _toy_program(random.Random(0), 16)
        for word in program:
            op = (word >> 24) & 0xFF
            if op in (T_BEQZ, T_BNEZ, T_JMP):
                assert 0 <= (word & 0xFF) < len(program)

    def test_program_ends_in_jump(self):
        program = _toy_program(random.Random(0), 16)
        assert (program[-1] >> 24) & 0xFF == T_JMP

    def test_opcode_runs_exist(self):
        """The run structure calibrates the BTB rate; freeze it."""
        program = _toy_program(random.Random(0), 16)
        opcodes = [(w >> 24) & 0xFF for w in program]
        repeats = sum(1 for a, b in zip(opcodes, opcodes[1:]) if a == b)
        assert repeats / (len(opcodes) - 1) > 0.35


class TestXlispHeapGen:
    def _gen(self, seed=0):
        return _HeapGen(random.Random(seed), XlispParams(seed=seed))

    def test_expression_returns_valid_cell(self):
        gen = self._gen()
        root = gen.expression()
        assert 0 <= root < len(gen.cells)

    def test_cons_children_precede_parent(self):
        gen = self._gen(seed=2)
        root = gen.expression()
        for index, (tag, a, b_field, _c) in enumerate(gen.cells):
            if tag == TAG_CONS:
                assert a < index and b_field < index

    def test_fixnum_bias_respected(self):
        gen = _HeapGen(random.Random(3), XlispParams(fixnum_bias=1.0))
        for _ in range(50):
            cell = gen.atom()
            assert gen.cells[cell][0] == TAG_FIXNUM

    def test_builtin_ids_in_range(self):
        gen = self._gen(seed=4)
        for _ in range(20):
            gen.expression()
        for tag, _a, _b, c in gen.cells:
            if tag == TAG_CONS:
                assert 0 <= c < 8


class TestParamsDataclasses:
    def test_perl_params_frozen(self):
        params = PerlParams()
        with pytest.raises(Exception):
            params.seed = 1  # type: ignore[misc]

    def test_deltablue_kind_count_matches_methods(self):
        assert N_KINDS == 6
        assert DeltablueParams().plan_length > 0
