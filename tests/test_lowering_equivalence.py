"""Lowering-equivalence harness: one dispatch construct, many shapes.

Every migrated workload must produce the *same architectural execution*
under all registered lowerings — the lowering changes only the control-flow
shape of dispatch, never what the program computes.  The harness runs each
workload to a common synchronization point (the Nth arrival at a
workload-level loop label, via the VM's ``stop_pc``) and compares:

* final data-memory state (delta against the initial data segment);
* final workload registers (r5..r31; r1-r4 are dispatch scratch);
* the handler-visit sequence (perl, where handler names are known).

It also asserts what must *differ*: the static branch-site mix (``if_tree``
has no ``jr``-dispatch sites where ``jump_table`` has many), the dynamic
conditional-branch count, and the runner cell keys (no cache aliasing).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import pytest

from repro.guest.isa import GuestProgram, Op
from repro.guest.lowering import lowering_names
from repro.guest.vm import VM, RawTrace
from repro.predictors import EngineConfig
from repro.runner.keys import cell_key
from repro.workloads import build_program

#: (workload, sync label, arrivals to run).  The sync label is a loop head
#: owned by the workload (never emitted by a lowering), so the Nth arrival
#: is the same architectural point under every lowering.
SYNC_POINTS = [
    ("perl", "loop", 150),
    ("gcc", "outer", 2),
    ("xlisp", "expr_loop", 40),
    ("m88ksim", "fetch", 150),
    ("vortex", "obj_loop", 60),
    ("webserver_like", "req_loop", 40),
    ("compress", "byte_loop", 120),
    ("go", "scan_loop", 60),
    ("ijpeg", "row_loop", 30),
]

#: Workloads whose only indirect branches come from switch sites; under
#: ``if_tree`` their code must contain no indirect jumps or calls at all.
FULLY_STRUCTURED = {
    "perl", "gcc", "xlisp", "m88ksim", "vortex", "compress", "go", "ijpeg",
}

MAX_INSTRUCTIONS = 400_000


def _run_to_sync(name: str, lowering: Optional[str], label: str,
                 visits: int) -> Tuple[GuestProgram, VM, RawTrace]:
    program = build_program(name, lowering=lowering)
    vm = VM(program, max_instructions=MAX_INSTRUCTIONS,
            stop_pc=program.address_of(label), stop_visits=visits)
    trace = vm.run()
    assert not trace.halted, f"{name}@{lowering}: unexpected HALT"
    assert vm.retired < MAX_INSTRUCTIONS, (
        f"{name}@{lowering}: never reached {label} x{visits}"
    )
    return program, vm, trace


def _memory_delta(program: GuestProgram, vm: VM) -> Dict[int, float]:
    initial: Dict[int, float] = dict(program.data)
    return {
        addr: value
        for addr, value in vm.memory.items()
        if initial.get(addr) != value
    }


def _indirect_count(program: GuestProgram) -> int:
    return sum(1 for ins in program.code if ins.op in (Op.JR, Op.CALLR))


@pytest.mark.parametrize("name,label,visits", SYNC_POINTS)
def test_lowerings_architecturally_equivalent(name: str, label: str,
                                              visits: int) -> None:
    results = {}
    for lowering in lowering_names():
        program, vm, trace = _run_to_sync(name, lowering, label, visits)
        results[lowering] = (program, vm, trace)

    baseline_name = "jump_table"
    base_program, base_vm, base_trace = results[baseline_name]
    base_delta = _memory_delta(base_program, base_vm)
    base_regs = base_vm.registers[5:]

    for lowering, (program, vm, trace) in results.items():
        if lowering == baseline_name:
            continue
        # Same data layout: switch tables are allocated at the same program
        # points regardless of lowering.  (Values may differ — table words
        # hold label addresses, and code addresses shift with the lowering.)
        assert program.data.keys() == base_program.data.keys(), (
            f"{name}@{lowering}: data segment layout diverged"
        )
        assert _memory_delta(program, vm) == base_delta, (
            f"{name}@{lowering}: memory state diverged at sync point"
        )
        assert vm.registers[5:] == base_regs, (
            f"{name}@{lowering}: workload registers diverged at sync point"
        )
        assert len(vm.call_stack) == len(base_vm.call_stack), (
            f"{name}@{lowering}: call depth diverged at sync point"
        )


@pytest.mark.parametrize("name,label,visits", SYNC_POINTS)
def test_static_branch_site_mix_differs(name: str, label: str,
                                        visits: int) -> None:
    del label, visits
    programs = {
        lowering: build_program(name, lowering=lowering)
        for lowering in lowering_names()
    }
    jt = _indirect_count(programs["jump_table"])
    tree = _indirect_count(programs["if_tree"])
    assert jt > tree, f"{name}: if_tree must remove indirect dispatch sites"
    if name in FULLY_STRUCTURED:
        assert tree == 0, f"{name}: if_tree left {tree} indirect sites"
    # clustered keeps at least one table dispatch per hot run — its static
    # site count may even exceed jump_table's (one site can split into
    # several table pieces); "in between" is a *dynamic* property.  Tiny
    # switches (compress: 3 cases, below the minimum run length) legally
    # degenerate to the pure tree.
    clustered = _indirect_count(programs["clustered"])
    assert clustered >= tree
    if name != "compress":
        assert clustered > tree, f"{name}: clustered kept no table pieces"


def test_perl_handler_visit_sequence_identical() -> None:
    """The strongest equivalence check: the exact order of handler entries."""
    k = 22  # PerlParams default token_types
    handler_names = (
        [f"tok_{i}" for i in range(k)] + ["tok_jz"]
        + [f"binop_{i}" for i in range(5)]
    )
    sequences = {}
    for lowering in lowering_names():
        program, _, trace = _run_to_sync("perl", lowering, "loop", 200)
        by_address = {program.address_of(h): h for h in handler_names}
        sequences[lowering] = [
            by_address[pc] for pc in trace.pc if pc in by_address
        ]
    reference = sequences["jump_table"]
    assert len(reference) > 150  # the window really exercises dispatch
    for lowering, sequence in sequences.items():
        assert sequence == reference, f"perl@{lowering}: visit order diverged"


def test_if_tree_trades_indirect_for_conditional() -> None:
    """Dynamic mix: if_tree removes indirect jumps, inflates conditionals."""
    counts: Dict[str, Tuple[int, int]] = {}
    for lowering in ("jump_table", "if_tree", "clustered"):
        _, _, trace = _run_to_sync("perl", lowering, "loop", 150)
        indirect = sum(1 for kind in trace.branch_kind if kind in (4, 6))
        conditional = sum(1 for kind in trace.branch_kind if kind == 1)
        counts[lowering] = (indirect, conditional)
    assert counts["jump_table"][0] > 0
    assert counts["if_tree"][0] == 0
    assert counts["if_tree"][1] > counts["jump_table"][1]
    # clustered keeps some table dispatch but fewer dynamic indirects than
    # the pure table only when cold cases actually execute; at minimum it
    # must not exceed the pure table's count.
    assert counts["clustered"][0] <= counts["jump_table"][0]
    assert counts["clustered"][1] >= counts["jump_table"][1]


def test_cell_keys_never_alias_across_lowerings() -> None:
    config = EngineConfig()
    keys = {
        cell_key(f"perl@{lowering}" if lowering != "jump_table" else "perl",
                 config, 60_000, 1997)
        for lowering in lowering_names()
    }
    assert len(keys) == len(lowering_names())


def test_vm_stop_pc_sync() -> None:
    """stop_pc halts before the Nth arrival, exactly."""
    program = build_program("perl")
    loop = program.address_of("loop")
    vm1 = VM(program, max_instructions=50_000, stop_pc=loop, stop_visits=1)
    trace1 = vm1.run()
    assert vm1.pc == loop
    assert loop not in trace1.pc  # stopped *before* executing the loop head
    vm2 = VM(program, max_instructions=50_000, stop_pc=loop, stop_visits=3)
    vm2.run()
    assert vm2.pc == loop
    assert vm2.retired > vm1.retired
