"""Unit tests for the pipeline timing models and the data cache."""

import numpy as np
import pytest

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import InstrClass
from repro.guest.vm import run_program
from repro.pipeline import (
    DataCache,
    DataCacheConfig,
    MachineConfig,
    memory_penalties,
    run_cycle_core,
    run_timing,
)
from repro.predictors import EngineConfig, TargetCacheConfig, simulate
from repro.trace.trace import Trace


def _trace(build_body, n=10_000, entry=0):
    b = ProgramBuilder()
    build_body(b)
    return Trace.from_raw(run_program(b.build(entry=entry), max_instructions=n))


class TestDataCache:
    def test_first_access_misses_then_hits(self):
        cache = DataCache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True

    def test_same_line_hits(self):
        cache = DataCache(DataCacheConfig(line_bytes=32))
        cache.access(0x1000)
        assert cache.access(0x101C) is True   # same 32B line
        assert cache.access(0x1020) is False  # next line

    def test_lru_eviction_within_set(self):
        config = DataCacheConfig(size_bytes=4 * 32, assoc=2, line_bytes=32)
        cache = DataCache(config)  # 2 sets x 2 ways
        stride = config.line_bytes * cache.n_sets
        cache.access(0 * stride)
        cache.access(1 * stride)
        cache.access(2 * stride)  # evicts line 0
        assert cache.access(0) is False

    def test_miss_rate(self):
        cache = DataCache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == 0.5

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            DataCacheConfig(size_bytes=1000, assoc=3, line_bytes=32).n_sets


class TestMemoryPenalties:
    def test_only_memory_rows_penalised(self):
        def body(b):
            b.li(1, 0x10000)
            b.load(2, 1)       # cold miss
            b.load(3, 1)       # hit (same line)
            b.halt()
        trace = _trace(body)
        machine = MachineConfig()
        penalties = memory_penalties(trace, machine)
        assert penalties[0] == 0
        assert penalties[1] == machine.memory_latency
        assert penalties[2] == 0

    def test_streaming_misses_every_line(self):
        def body(b):
            b.li(1, 0x10000)
            b.li(2, 0)
            b.li(3, 2048)
            b.label("loop")
            b.load(4, 1)
            b.addi(1, 1, 32)   # one access per line
            b.addi(2, 2, 1)
            b.blt(2, 3, "loop")
            b.halt()
        trace = _trace(body, n=20_000)
        penalties = memory_penalties(trace, MachineConfig())
        loads = trace.instr_class == int(InstrClass.LOAD)
        assert np.all(penalties[loads] == MachineConfig().memory_latency)


class TestOnePassTiming:
    def test_empty_trace(self):
        result = run_timing(Trace.empty(), MachineConfig())
        assert result.cycles == 0

    def test_serial_dependency_chain_costs_latency_each(self):
        def body(b):
            b.li(1, 1)
            for _ in range(50):
                b.mul(1, 1, 1)  # true dependence chain of MULs
            b.halt()
        trace = _trace(body)
        machine = MachineConfig()
        result = run_timing(trace, machine)
        mul_latency = machine.latency_of(int(InstrClass.MUL))
        assert result.cycles >= 50 * mul_latency

    def test_independent_work_bounded_by_width(self):
        def body(b):
            for i in range(1, 25):
                b.li(i % 28 + 1, i)
            b.halt()
        trace = _trace(body)
        machine = MachineConfig()
        result = run_timing(trace, machine)
        # 24 independent instructions at width 4: ~6 cycles + pipe fill
        assert result.cycles <= 6 + machine.frontend_depth + 4
        assert result.ipc >= 2.0

    def test_mispredictions_cost_cycles(self, perl_trace):
        machine = MachineConfig()
        penalties = memory_penalties(perl_trace, machine)
        base = simulate(perl_trace, EngineConfig(), collect_mask=True)
        perfect = run_timing(perl_trace, machine, None, penalties)
        predicted = run_timing(perl_trace, machine, base.mispredict_mask,
                               penalties)
        assert predicted.cycles > perfect.cycles
        assert predicted.mispredict_stall_cycles > 0

    def test_fewer_mispredictions_never_slower(self, perl_trace):
        """Removing mispredict events can only reduce the cycle count."""
        machine = MachineConfig()
        penalties = memory_penalties(perl_trace, machine)
        stats = simulate(perl_trace, EngineConfig(), collect_mask=True)
        full_mask = stats.mispredict_mask
        reduced_mask = full_mask.copy()
        rows = np.flatnonzero(reduced_mask)
        reduced_mask[rows[::2]] = False
        full = run_timing(perl_trace, machine, full_mask, penalties)
        reduced = run_timing(perl_trace, machine, reduced_mask, penalties)
        assert reduced.cycles <= full.cycles

    def test_memory_latency_visible(self):
        def body(b):
            b.li(1, 0x10000)
            b.li(2, 0)
            b.li(3, 400)
            b.label("loop")
            b.load(4, 1)
            b.add(5, 4, 4)     # depends on the load
            b.addi(1, 1, 32)
            b.addi(2, 2, 1)
            b.blt(2, 3, "loop")
            b.halt()
        trace = _trace(body, n=10_000)
        fast = MachineConfig(memory_latency=2)
        slow = MachineConfig(memory_latency=40)
        assert (run_timing(trace, slow).cycles
                > run_timing(trace, fast).cycles * 1.5)

    def test_store_to_load_forwarding_dependency(self):
        def body(b):
            b.li(1, 0x10000)
            b.li(2, 7)
            for _ in range(30):
                b.mul(2, 2, 2)      # long chain delays the store's data
            b.store(2, 1)
            b.load(3, 1)            # must wait for the store
            b.halt()
        trace = _trace(body)
        result = run_timing(trace, MachineConfig())
        # load's completion is pinned behind the 30-mul chain
        assert result.cycles >= 30 * 3


class TestCycleCore:
    def test_agrees_with_one_pass_on_simple_loop(self):
        def body(b):
            b.li(1, 0)
            b.li(2, 500)
            b.label("loop")
            b.addi(1, 1, 1)
            b.mul(3, 1, 1)
            b.blt(1, 2, "loop")
            b.halt()
        trace = _trace(body, n=5_000)
        machine = MachineConfig()
        one_pass = run_timing(trace, machine).cycles
        stepped = run_cycle_core(trace, machine)
        assert abs(stepped - one_pass) / one_pass < 0.25

    def test_cross_validation_on_workload(self, perl_trace):
        """The fast model tracks the cycle-stepped model within 25% and
        preserves the base-vs-target-cache ordering."""
        trace = perl_trace[:15_000]
        machine = MachineConfig()
        penalties = memory_penalties(trace, machine)
        base = simulate(trace, EngineConfig(), collect_mask=True)
        tc = simulate(trace, EngineConfig(
            target_cache=TargetCacheConfig(kind="oracle"),
        ), collect_mask=True)

        fast_base = run_timing(trace, machine, base.mispredict_mask, penalties)
        fast_tc = run_timing(trace, machine, tc.mispredict_mask, penalties)
        step_base = run_cycle_core(trace, machine, base.mispredict_mask,
                                   penalties)
        step_tc = run_cycle_core(trace, machine, tc.mispredict_mask, penalties)

        assert abs(step_base - fast_base.cycles) / step_base < 0.25
        assert fast_tc.cycles < fast_base.cycles
        assert step_tc < step_base

    def test_mispredict_stall_visible_in_cycle_core(self):
        def body(b):
            b.li(1, 0)
            b.label("loop")
            b.addi(1, 1, 1)
            b.jmp("loop")
        trace = _trace(body, n=2_000)
        machine = MachineConfig()
        mask = np.zeros(len(trace), dtype=bool)
        clean = run_cycle_core(trace, machine, mask.copy())
        mask[np.flatnonzero(trace.is_branch)] = True  # every branch wrong
        dirty = run_cycle_core(trace, machine, mask)
        assert dirty > clean * 2
