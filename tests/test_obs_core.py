"""Core obs primitives: null objects, spans, and the sink lifecycle."""

import pytest

from repro.obs import (
    NULL_SINK,
    NULL_SPAN,
    NullSink,
    NullSpan,
    Sink,
    Span,
    bootstrap,
    get_sink,
    install,
    shutdown,
)


@pytest.fixture(autouse=True)
def _restore_sink():
    """Every test leaves the process-global sink as it found it."""
    previous = get_sink()
    yield
    install(previous)


class _Recorder(Sink):
    """Captures record_span/incr/gauge/event calls for assertions."""

    enabled = True

    def __init__(self):
        self.spans = []
        self.counters = {}
        self.gauges = []
        self.events = []

    def span(self, name, **meta):
        return Span(self, name, meta or None)

    def record_span(self, name, duration, meta):
        self.spans.append((name, duration, meta))

    def incr(self, name, value=1):
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name, value):
        self.gauges.append((name, value))

    def event(self, name, **meta):
        self.events.append((name, meta))


class TestNullObjects:
    def test_disabled_sink_hands_out_the_shared_null_span(self):
        assert NULL_SINK.span("anything", benchmark="perl") is NULL_SPAN
        assert Sink().span("x") is NULL_SPAN

    def test_null_span_is_a_working_context_manager(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN

    def test_null_span_allocates_no_per_instance_state(self):
        assert NullSpan.__slots__ == ()

    def test_disabled_operations_are_noops(self):
        sink = NullSink()
        sink.incr("c")
        sink.gauge("g", 3.0)
        sink.event("e", detail="x")
        sink.flush()
        sink.close()
        assert not sink.enabled
        assert sink.ledger_path is None

    def test_recording_span_is_a_null_span_subtype(self):
        # call sites treat the return of span() uniformly; the recording
        # span must be substitutable for the null one
        assert issubclass(Span, NullSpan)


class TestSpan:
    def test_span_reports_duration_and_meta_on_exit(self):
        sink = _Recorder()
        with sink.span("cell", benchmark="perl", kernel="stream"):
            pass
        [(name, duration, meta)] = sink.spans
        assert name == "cell"
        assert duration >= 0.0
        assert meta == {"benchmark": "perl", "kernel": "stream"}

    def test_span_without_meta_reports_none(self):
        sink = _Recorder()
        with sink.span("phase"):
            pass
        assert sink.spans[0][2] is None

    def test_nested_spans_each_record(self):
        sink = _Recorder()
        with sink.span("outer"):
            with sink.span("inner"):
                pass
        names = [name for name, _, _ in sink.spans]
        assert names == ["inner", "outer"]  # inner exits first

    def test_span_records_even_when_the_body_raises(self):
        sink = _Recorder()
        with pytest.raises(RuntimeError):
            with sink.span("failing"):
                raise RuntimeError("boom")
        assert [name for name, _, _ in sink.spans] == ["failing"]


class TestLifecycle:
    def test_default_sink_is_the_null_sink(self):
        install(NULL_SINK)
        assert get_sink() is NULL_SINK

    def test_install_returns_the_previous_sink(self):
        install(NULL_SINK)
        mine = _Recorder()
        assert install(mine) is NULL_SINK
        assert get_sink() is mine

    def test_shutdown_restores_the_null_sink_before_closing(self):
        closed = []

        class _Closing(_Recorder):
            def close(self):
                # by the time close runs, the global must already be the
                # null sink, so telemetry during close cannot recurse
                closed.append(get_sink())

        install(_Closing())
        shutdown()
        assert get_sink() is NULL_SINK
        assert closed == [NULL_SINK]


class TestBootstrap:
    def test_unset_environment_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert bootstrap() is NULL_SINK

    @pytest.mark.parametrize("value", ["", "0", "off", "no", "false", "OFF"])
    def test_off_values_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_OBS", value)
        assert bootstrap() is NULL_SINK

    @pytest.mark.parametrize("value", ["1", "on", "true", "yes", "ON"])
    def test_on_values_enable_the_default_ledger(self, monkeypatch,
                                                 tmp_path, value):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_OBS", value)
        sink = bootstrap()
        try:
            assert sink.enabled
            assert sink.ledger_path == "repro_ledger.jsonl"
        finally:
            shutdown()

    def test_other_values_are_the_ledger_path(self, monkeypatch, tmp_path):
        target = tmp_path / "custom.jsonl"
        monkeypatch.setenv("REPRO_OBS", str(target))
        sink = bootstrap()
        try:
            assert sink.ledger_path == str(target)
        finally:
            shutdown()

    def test_disable_flag_wins_over_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        assert bootstrap(disable=True) is NULL_SINK

    def test_explicit_ledger_wins_over_the_environment(self, monkeypatch,
                                                       tmp_path):
        monkeypatch.setenv("REPRO_OBS", "0")
        target = tmp_path / "forced.jsonl"
        sink = bootstrap(ledger=target)
        try:
            assert sink.enabled
            assert sink.ledger_path == str(target)
        finally:
            shutdown()
