"""The analysis core: suppressions, project loading, registry, CLI."""

import json

import pytest

from repro.analysis import CHECKERS, Project, describe_checkers, run_lint
from repro.analysis.base import Finding, SourceFile, _parse_suppressions
from repro.analysis.report import LintReport
from repro.cli import main


class _StubChecker:
    name = "stub"
    description = "emits one fixed finding"

    def __init__(self, findings):
        self._findings = findings

    def run(self, project):
        return list(self._findings)


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_rule_specific(self):
        text = "x = 1  # repro-lint: ignore[det-env-read]\n"
        suppressions = _parse_suppressions(text)
        assert suppressions == {1: frozenset({"det-env-read"})}

    def test_bare_ignore_suppresses_everything(self):
        source = SourceFile.from_text("m.py", "x = 1  # repro-lint: ignore\n")
        assert source.suppressed(1, "any-rule-at-all")
        assert not source.suppressed(2, "any-rule-at-all")

    def test_multiple_rules_one_comment(self):
        source = SourceFile.from_text(
            "m.py", "x = 1  # repro-lint: ignore[rule-a, rule-b]\n"
        )
        assert source.suppressed(1, "rule-a")
        assert source.suppressed(1, "rule-b")
        assert not source.suppressed(1, "rule-c")

    def test_hash_inside_string_is_not_a_comment(self):
        text = 's = "# repro-lint: ignore[rule-a]"\n'
        assert _parse_suppressions(text) == {}

    def test_run_lint_applies_suppression_centrally(self):
        project = Project(
            root=None,
            files=[
                SourceFile.from_text(
                    "m.py", "x = 1  # repro-lint: ignore[stub-rule]\n"
                )
            ],
        )
        checker = _StubChecker([Finding("stub-rule", "m.py", 1, "boom")])
        report = run_lint(project=project, checkers=[checker])
        assert report.clean
        assert report.suppressed == 1

    def test_unsuppressed_finding_survives(self):
        project = Project(root=None, files=[SourceFile.from_text("m.py", "x = 1\n")])
        checker = _StubChecker([Finding("stub-rule", "m.py", 1, "boom")])
        report = run_lint(project=project, checkers=[checker])
        assert [f.rule for f in report.findings] == ["stub-rule"]


# ----------------------------------------------------------------------
# Project loading
# ----------------------------------------------------------------------
class TestProject:
    def test_load_finds_the_installed_package(self):
        project = Project.load()
        assert project.file("predictors/engine.py") is not None
        assert project.file("analysis/base.py") is not None

    def test_files_under_prefix(self):
        project = Project.load()
        relpaths = [f.relpath for f in project.files_under("predictors/")]
        assert "predictors/engine.py" in relpaths
        assert all(p.startswith("predictors/") for p in relpaths)


# ----------------------------------------------------------------------
# Registry and report
# ----------------------------------------------------------------------
class TestRegistryAndReport:
    def test_registry_names_are_unique(self):
        names = [checker.name for checker in CHECKERS]
        assert len(names) == len(set(names))
        assert set(names) == {"determinism", "cache-keys", "registry",
                              "lowering-registry", "bitwidth", "hotloop",
                              "obs", "vector-hygiene", "worker-safety",
                              "transitive-purity", "trait-contract",
                              "stale-suppression"}

    def test_only_filters_checkers(self):
        report = run_lint(only=["hotloop"])
        assert report.checkers == ["hotloop"]

    def test_only_rejects_unknown_checker(self):
        with pytest.raises(ValueError, match="no-such-checker"):
            run_lint(only=["no-such-checker"])

    def test_only_error_lists_valid_names(self):
        with pytest.raises(ValueError, match="valid:.*determinism"):
            run_lint(only=["no-such-checker"])

    def test_only_accepts_multiple_names(self):
        report = run_lint(only=["hotloop", "bitwidth"])
        assert set(report.checkers) == {"hotloop", "bitwidth"}

    def test_describe_checkers_lists_every_name(self):
        text = describe_checkers(CHECKERS)
        for checker in CHECKERS:
            assert checker.name in text

    def test_text_report_orders_and_summarises(self):
        report = LintReport(
            findings=[Finding("r", "b.py", 3, "msg-b"),
                      Finding("r", "a.py", 1, "msg-a")],
            checkers=["stub"],
        )
        text = report.to_text()
        assert "b.py:3: [r] msg-b" in text
        assert text.endswith("2 finding(s) from 1 checker(s)")

    def test_json_report_round_trips(self):
        report = LintReport(
            findings=[Finding("r", "a.py", 1, "msg")], checkers=["stub"],
            suppressed=2,
        )
        payload = json.loads(report.to_json())
        assert payload["clean"] is False
        assert payload["suppressed"] == 2
        assert payload["findings"][0] == {
            "rule": "r", "path": "a.py", "line": 1, "message": "msg",
        }

    def test_json_findings_are_sorted_canonically(self):
        report = LintReport(
            findings=[Finding("z", "b.py", 9, "late"),
                      Finding("a", "b.py", 9, "tie"),
                      Finding("r", "a.py", 1, "first")],
            checkers=["stub"],
        )
        payload = json.loads(report.to_json())
        assert [(f["path"], f["line"], f["rule"])
                for f in payload["findings"]] == [
            ("a.py", 1, "r"), ("b.py", 9, "a"), ("b.py", 9, "z"),
        ]

    def test_sarif_report_shape(self):
        report = LintReport(
            findings=[Finding("rule-b", "m.py", 3, "msg-b"),
                      Finding("rule-a", "m.py", 2, "msg-a")],
            checkers=["stub"],
        )
        payload = json.loads(report.to_sarif())
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
            "rule-a", "rule-b",
        ]
        results = run["results"]
        assert [r["ruleId"] for r in results] == ["rule-a", "rule-b"]
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/m.py"
        assert location["region"]["startLine"] == 2
        assert results[0]["level"] == "error"
        # rule indices point back into the driver rules array
        for result in results:
            rule = run["tool"]["driver"]["rules"][result["ruleIndex"]]
            assert rule["id"] == result["ruleId"]

    def test_render_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            LintReport().render("yaml")


# ----------------------------------------------------------------------
# The shipped tree and the CLI
# ----------------------------------------------------------------------
class TestShippedTree:
    def test_shipped_tree_is_clean(self):
        report = run_lint()
        assert report.clean, report.to_text()

    def test_cli_lint_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_cli_lint_json_parses(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True

    def test_cli_lint_list_checks(self, capsys):
        assert main(["lint", "--list-checks"]) == 0
        out = capsys.readouterr().out
        assert "determinism" in out and "bitwidth" in out

    def test_cli_lint_unknown_only_is_usage_error(self, capsys):
        assert main(["lint", "--only", "nope"]) == 2
        err = capsys.readouterr().err
        assert "nope" in err and "valid:" in err

    def test_cli_lint_only_comma_separated(self, capsys):
        assert main(["lint", "--only", "hotloop,bitwidth",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["checkers"]) == {"hotloop", "bitwidth"}

    def test_cli_lint_sarif_parses(self, capsys):
        assert main(["lint", "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"] == []

    def test_cli_lint_findings_exit_nonzero(self, capsys, monkeypatch):
        import repro.analysis as analysis

        bad = _StubChecker([Finding("stub-rule", "m.py", 1, "boom")])
        monkeypatch.setattr(analysis, "CHECKERS", [bad])
        assert main(["lint"]) == 1
        assert "stub-rule" in capsys.readouterr().out
